//! Recursive-descent parser for ABDL requests.

use super::lexer::{Lexer, Token, TokenKind};
use crate::error::{Error, Result};
use crate::query::{Predicate, Query, RelOp};
use crate::record::Record;
use crate::request::{Aggregate, Modifier, Request, Target, TargetList, Transaction};
use crate::value::Value;

/// Parse a single ABDL request; trailing input is an error.
pub fn parse_request(src: &str) -> Result<Request> {
    let mut p = Parser::new(src)?;
    let req = p.request()?;
    p.eat_semis();
    p.expect_eof()?;
    Ok(req)
}

/// Parse a transaction: one or more requests separated by optional `;`
/// or newlines.
pub fn parse_transaction(src: &str) -> Result<Transaction> {
    let mut p = Parser::new(src)?;
    let mut requests = Vec::new();
    p.eat_semis();
    while !p.at_eof() {
        requests.push(p.request()?);
        p.eat_semis();
    }
    Ok(Transaction::new(requests))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        Ok(Parser { tokens: Lexer::new(src).tokenize()?, pos: 0 })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn eat_semis(&mut self) {
        while self.peek().kind == TokenKind::Semi {
            self.bump();
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse { msg: msg.into(), offset: self.peek().offset }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek().kind)))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Consume an identifier if it matches `kw` case-insensitively.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn request(&mut self) -> Result<Request> {
        let name = self.ident("request operation")?;
        match name.to_ascii_uppercase().as_str() {
            "INSERT" => self.insert(),
            "DELETE" => Ok(Request::Delete { query: self.query()? }),
            "UPDATE" => {
                let query = self.query()?;
                let modifier = self.modifier()?;
                Ok(Request::Update { query, modifier })
            }
            "RETRIEVE" => {
                let query = self.query()?;
                let target = self.target_list()?;
                let by = if self.eat_kw("BY") { Some(self.ident("by-attribute")?) } else { None };
                Ok(Request::Retrieve { query, target, by })
            }
            "RETRIEVE-COMMON" => {
                let left = self.query()?;
                self.expect(&TokenKind::LParen, "`(`")?;
                let left_attr = self.ident("join attribute")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                if !self.eat_kw("COMMON") {
                    return Err(self.err("expected `COMMON`"));
                }
                let right = self.query()?;
                self.expect(&TokenKind::LParen, "`(`")?;
                let right_attr = self.ident("join attribute")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                let target = self.target_list()?;
                Ok(Request::RetrieveCommon { left, left_attr, right, right_attr, target })
            }
            other => Err(self.err(format!("unknown ABDL operation `{other}`"))),
        }
    }

    fn insert(&mut self) -> Result<Request> {
        self.expect(&TokenKind::LParen, "`(` opening keyword list")?;
        let mut record = Record::new();
        loop {
            match self.peek().kind.clone() {
                TokenKind::Lt => {
                    self.bump();
                    let attr = self.ident("attribute name")?;
                    self.expect(&TokenKind::Comma, "`,` in keyword")?;
                    let value = self.value()?;
                    self.expect(&TokenKind::Gt, "`>` closing keyword")?;
                    record.set(attr, value);
                }
                TokenKind::Body(text) => {
                    self.bump();
                    record.body = Some(text);
                }
                other => {
                    return Err(self.err(format!("expected `<attr, value>` keyword, found {other:?}")))
                }
            }
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)` closing keyword list")?;
        Ok(Request::Insert { record })
    }

    fn modifier(&mut self) -> Result<Modifier> {
        self.expect(&TokenKind::LParen, "`(` opening modifier")?;
        let attr = self.ident("modifier attribute")?;
        self.expect(&TokenKind::Eq, "`=` in modifier")?;
        let value = self.value()?;
        self.expect(&TokenKind::RParen, "`)` closing modifier")?;
        Ok(Modifier { attr, value })
    }

    fn target_list(&mut self) -> Result<TargetList> {
        self.expect(&TokenKind::LParen, "`(` opening target list")?;
        if self.peek().kind == TokenKind::Star {
            self.bump();
            self.expect(&TokenKind::RParen, "`)` closing target list")?;
            return Ok(TargetList::all());
        }
        let mut targets = Vec::new();
        loop {
            let name = self.ident("target attribute")?;
            let agg = match name.to_ascii_uppercase().as_str() {
                "COUNT" => Some(Aggregate::Count),
                "SUM" => Some(Aggregate::Sum),
                "AVG" => Some(Aggregate::Avg),
                "MIN" => Some(Aggregate::Min),
                "MAX" => Some(Aggregate::Max),
                _ => None,
            };
            match (agg, &self.peek().kind) {
                (Some(op), TokenKind::LParen) => {
                    self.bump();
                    let attr = self.ident("aggregated attribute")?;
                    self.expect(&TokenKind::RParen, "`)` closing aggregate")?;
                    targets.push(Target::Agg(op, attr));
                }
                _ => targets.push(Target::Attr(name)),
            }
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)` closing target list")?;
        Ok(TargetList { targets })
    }

    /// Queries: the grammar is permissive about parenthesization; we
    /// parse a parenthesized boolean expression over predicates with
    /// `and` binding tighter than `or`, then flatten to DNF. Inputs are
    /// already in DNF per the model definition, so flattening never
    /// needs distribution — a conjunction containing a disjunction is
    /// rejected.
    fn query(&mut self) -> Result<Query> {
        let expr = self.or_expr()?;
        expr.into_dnf().map_err(|msg| self.err(msg))
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_kw("or") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 { terms.pop().expect("one term") } else { Expr::Or(terms) })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.primary()?];
        while self.eat_kw("and") {
            terms.push(self.primary()?);
        }
        Ok(if terms.len() == 1 { terms.pop().expect("one term") } else { Expr::And(terms) })
    }

    /// A primary is `(expr)` or `(attr relop value)`; the lookahead after
    /// `(` distinguishes a nested expression from a predicate: a
    /// predicate is IDENT RELOP.
    fn primary(&mut self) -> Result<Expr> {
        self.expect(&TokenKind::LParen, "`(` in query")?;
        let expr = match (&self.peek().kind, self.peek2()) {
            (TokenKind::Ident(_), k) if is_relop(k) => {
                let attr = self.ident("predicate attribute")?;
                let op = self.relop()?;
                let value = self.value()?;
                Expr::Pred(Predicate { attr, op, value })
            }
            (TokenKind::Ident(s), TokenKind::RParen) if s.eq_ignore_ascii_case("TRUE") => {
                self.bump();
                Expr::And(vec![])
            }
            (TokenKind::Ident(s), TokenKind::RParen) if s.eq_ignore_ascii_case("FALSE") => {
                self.bump();
                Expr::Or(vec![])
            }
            _ => self.or_expr()?,
        };
        self.expect(&TokenKind::RParen, "`)` in query")?;
        Ok(expr)
    }

    fn relop(&mut self) -> Result<RelOp> {
        let op = match self.peek().kind {
            TokenKind::Eq => RelOp::Eq,
            TokenKind::Ne => RelOp::Ne,
            TokenKind::Lt => RelOp::Lt,
            TokenKind::Le => RelOp::Le,
            TokenKind::Gt => RelOp::Gt,
            TokenKind::Ge => RelOp::Ge,
            _ => return Err(self.err("expected relational operator")),
        };
        self.bump();
        Ok(op)
    }

    fn value(&mut self) -> Result<Value> {
        let v = match self.peek().kind.clone() {
            TokenKind::Int(i) => Value::Int(i),
            TokenKind::Float(f) => Value::Float(f),
            TokenKind::Str(s) => Value::Str(s),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => Value::Null,
            // Barewords are string values (the thesis writes unquoted
            // values like `course` in `(FILE = course)`).
            TokenKind::Ident(s) => Value::Str(s),
            other => return Err(self.err(format!("expected value, found {other:?}"))),
        };
        self.bump();
        Ok(v)
    }
}

fn is_relop(kind: &TokenKind) -> bool {
    matches!(
        kind,
        TokenKind::Eq | TokenKind::Ne | TokenKind::Lt | TokenKind::Le | TokenKind::Gt | TokenKind::Ge
    )
}

/// Intermediate boolean expression flattened into DNF after parsing.
enum Expr {
    Pred(Predicate),
    And(Vec<Expr>),
    Or(Vec<Expr>),
}

impl Expr {
    fn into_dnf(self) -> std::result::Result<Query, String> {
        match self {
            Expr::Pred(p) => Ok(Query::conjunction(vec![p])),
            Expr::Or(terms) => {
                let mut disjuncts = Vec::new();
                for t in terms {
                    disjuncts.extend(t.into_dnf()?.disjuncts);
                }
                Ok(Query::new(disjuncts))
            }
            Expr::And(terms) => {
                let mut predicates = Vec::new();
                for t in terms {
                    match t {
                        Expr::Pred(p) => predicates.push(p),
                        Expr::And(inner) => {
                            for i in inner {
                                match i.into_dnf()?.disjuncts.as_slice() {
                                    [single] => predicates.extend(single.predicates.clone()),
                                    _ => {
                                        return Err(
                                            "query is not in disjunctive normal form".to_owned()
                                        )
                                    }
                                }
                            }
                        }
                        Expr::Or(_) => {
                            return Err(
                                "query is not in disjunctive normal form (OR inside AND)"
                                    .to_owned(),
                            )
                        }
                    }
                }
                Ok(Query::conjunction(predicates))
            }
        }
    }
}
