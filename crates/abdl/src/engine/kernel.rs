//! The kernel database system (KDS) interface.
//!
//! Language interfaces talk to "the kernel" — which is either a
//! single-site [`Store`](super::Store) or the multi-backend system's
//! controller (`mlds-mbds`). The trait covers exactly what the
//! interfaces need: schema installation, globally-unique key
//! reservation, and request execution.

use super::response::Response;
use super::stats::ExecTotals;
use super::store::Store;
use crate::error::Result;
use crate::record::DbKey;
use crate::request::{Request, Transaction};

/// Liveness and completeness summary of a kernel.
///
/// A single-site store is always healthy; the MBDS controller reports
/// its backend health board here so sessions can distinguish a complete
/// answer from a partial one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelHealth {
    /// Total backends (1 for a single-site store).
    pub backends: usize,
    /// Indexes of backends currently unavailable.
    pub unavailable: Vec<usize>,
    /// True when some stored record has no live replica — answers may
    /// be incomplete until the missing backends are restarted.
    pub degraded: bool,
}

impl KernelHealth {
    /// Number of live backends.
    pub fn alive(&self) -> usize {
        self.backends - self.unavailable.len()
    }
}

/// A kernel database system executing ABDL.
pub trait Kernel {
    /// Declare a kernel file (idempotent).
    fn create_file(&mut self, name: &str);

    /// Register a `DUPLICATES ARE NOT ALLOWED` group on a file.
    fn add_unique_constraint(&mut self, file: &str, attrs: Vec<String>);

    /// Reserve a database key that is unique across the whole kernel
    /// (all backends). Used by the language interfaces as the source of
    /// artificial entity keys.
    fn reserve_key(&mut self) -> DbKey;

    /// Execute one request.
    fn execute(&mut self, request: &Request) -> Result<Response>;

    /// Execute a transaction (sequential requests, first error stops).
    fn execute_transaction(&mut self, txn: &Transaction) -> Result<Vec<Response>> {
        txn.requests.iter().map(|r| self.execute(r)).collect()
    }

    /// Execute a batch of *independent* requests admitted together —
    /// typically one request from each of several concurrent sessions.
    /// Unlike a transaction, one request's failure does not stop the
    /// rest: every admitted request gets its own result, in admission
    /// order. The default executes sequentially; the multi-backend
    /// controller overrides this with a conflict-scheduled, pipelined
    /// path that group-commits the whole batch's WAL appends.
    fn execute_batch(&mut self, requests: &[Request]) -> Vec<Result<Response>> {
        requests.iter().map(|r| self.execute(r)).collect()
    }

    /// Liveness summary. A single-site kernel is always healthy; the
    /// multi-backend controller overrides this with its health board.
    fn health(&self) -> KernelHealth {
        KernelHealth { backends: 1, ..Default::default() }
    }

    /// Cumulative execution counters since the kernel was built (see
    /// [`ExecTotals`]). The default is all-zero for kernels that do not
    /// keep them.
    fn exec_totals(&self) -> ExecTotals {
        ExecTotals::default()
    }
}

impl Kernel for Store {
    fn create_file(&mut self, name: &str) {
        Store::create_file(self, name);
    }

    fn add_unique_constraint(&mut self, file: &str, attrs: Vec<String>) {
        Store::add_unique_constraint(self, file, attrs);
    }

    fn reserve_key(&mut self) -> DbKey {
        Store::reserve_key(self)
    }

    fn execute(&mut self, request: &Request) -> Result<Response> {
        Store::execute(self, request)
    }

    fn exec_totals(&self) -> ExecTotals {
        Store::exec_totals(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, Query};
    use crate::record::Record;
    use crate::value::Value;

    fn through_kernel<K: Kernel>(k: &mut K) -> usize {
        k.create_file("f");
        let key = k.reserve_key();
        k.execute(&Request::Insert {
            record: Record::from_pairs([("FILE", Value::str("f"))])
                .with("f", Value::Int(key.0 as i64)),
        })
        .unwrap();
        k.execute(&Request::retrieve_all(Query::conjunction(vec![Predicate::eq(
            "FILE", "f",
        )])))
        .unwrap()
        .records()
        .len()
    }

    #[test]
    fn store_implements_kernel() {
        let mut store = Store::new();
        assert_eq!(through_kernel(&mut store), 1);
    }
}
