//! Kernel responses: what KC receives back from KDS.

use super::stats::ExecStats;
use crate::record::{DbKey, Record};
use crate::value::Value;
use std::fmt;

/// One row of an aggregated / grouped RETRIEVE result.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// The by-clause group value (`None` when there is no by-clause).
    pub group: Option<Value>,
    /// Aggregate results, in target-list order.
    pub values: Vec<Value>,
}

/// The result of executing one ABDL request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Response {
    records: Vec<(DbKey, Record)>,
    /// Aggregated rows, present only for aggregate RETRIEVEs.
    pub groups: Option<Vec<GroupRow>>,
    /// Records inserted / updated / deleted by a mutation request.
    pub affected: usize,
    /// Cost accounting for this request.
    pub stats: ExecStats,
    /// True when the answering kernel could not reach every partition
    /// holding relevant data: the result may be incomplete. Always
    /// `false` from a single-site store; set by the MBDS controller
    /// when every replica of some stored record is down.
    pub degraded: bool,
    /// Backends that were unavailable while this request executed
    /// (empty for a single-site store or a fully healthy cluster).
    pub unavailable_backends: Vec<usize>,
    /// Messages the kernel sent to backends to answer this request
    /// (0 for a single-site store; set by the MBDS controller so scoped
    /// routing's smaller fan-out is observable).
    pub messages_sent: u64,
}

impl Response {
    /// A response carrying result records.
    pub fn with_records(records: Vec<(DbKey, Record)>, stats: ExecStats) -> Self {
        Response { records, stats, ..Default::default() }
    }

    /// A mutation acknowledgement.
    pub fn with_affected(affected: usize, stats: ExecStats) -> Self {
        Response { affected, stats, ..Default::default() }
    }

    /// The result records (projected), with their database keys.
    pub fn records(&self) -> &[(DbKey, Record)] {
        &self.records
    }

    /// Consume the response, returning its records.
    pub fn into_records(self) -> Vec<(DbKey, Record)> {
        self.records
    }

    /// First record, if any (the thesis's requests are frequently
    /// "satisfied by returning the first record").
    pub fn first(&self) -> Option<&(DbKey, Record)> {
        self.records.first()
    }

    /// True when no records, groups or mutations were produced.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
            && self.groups.as_ref().is_none_or(|g| g.is_empty())
            && self.affected == 0
    }

    /// Merge another backend's partial response into this one (used by
    /// the MBDS controller). Records are kept sorted by database key so
    /// the merged response is deterministic regardless of backend count.
    pub fn merge(&mut self, other: Response) {
        self.records.extend(other.records);
        self.records.sort_by_key(|(k, _)| *k);
        self.affected += other.affected;
        match (&mut self.groups, other.groups) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs),
            _ => {}
        }
        self.stats += other.stats;
        self.messages_sent += other.messages_sent;
        self.degraded |= other.degraded;
        for b in other.unavailable_backends {
            if !self.unavailable_backends.contains(&b) {
                self.unavailable_backends.push(b);
            }
        }
        self.unavailable_backends.sort_unstable();
    }

    /// Collapse replicated copies: keep one record per database key.
    /// Records must already be key-sorted (as [`merge`](Self::merge)
    /// leaves them); replicas of a record share its key, so the merged
    /// result of a k-way replicated cluster becomes byte-identical to a
    /// single store's answer.
    pub fn dedup_by_key(&mut self) {
        self.records.dedup_by_key(|(k, _)| *k);
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(groups) = &self.groups {
            for row in groups {
                match &row.group {
                    Some(g) => write!(f, "[{g}]")?,
                    None => write!(f, "[*]")?,
                }
                for v in &row.values {
                    write!(f, " {v}")?;
                }
                writeln!(f)?;
            }
            return Ok(());
        }
        if !self.records.is_empty() {
            for (key, rec) in &self.records {
                writeln!(f, "{key} {rec}")?;
            }
            return Ok(());
        }
        writeln!(f, "{} record(s) affected", self.affected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_key_order() {
        let mut a = Response::with_records(
            vec![(DbKey(5), Record::new()), (DbKey(1), Record::new())],
            ExecStats::default(),
        );
        let b = Response::with_records(vec![(DbKey(3), Record::new())], ExecStats::default());
        a.merge(b);
        let keys: Vec<u64> = a.records().iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn empty_detection() {
        assert!(Response::default().is_empty());
        assert!(!Response::with_affected(1, ExecStats::default()).is_empty());
    }
}
