//! Per-request execution cost accounting.
//!
//! The Multi-Backend Database System's two performance claims (Chapter
//! I.B.2 of the thesis) are about response-time *shape* as records and
//! backends scale; the deterministic simulator in `mlds-mbds` derives a
//! backend's simulated disk time from these counters, so they are
//! maintained by every execution path of the kernel.

use std::ops::AddAssign;

/// Counters accumulated while executing one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Records whose keywords were examined against a conjunction.
    pub records_examined: u64,
    /// Records that satisfied the qualification.
    pub records_matched: u64,
    /// Records returned to the caller (after projection/grouping).
    pub records_returned: u64,
    /// Records written (inserted, updated or deleted).
    pub records_written: u64,
    /// Directory (index) probes performed.
    pub index_probes: u64,
    /// Estimated data blocks touched (records examined + written,
    /// divided by the blocking factor; at least one block per file
    /// touched). Used as the simulated disk-I/O unit.
    pub blocks_touched: u64,
}

/// Cumulative execution counters over every request a kernel has run
/// since construction — the lifetime view of [`ExecStats`], surfaced
/// through [`Kernel::exec_totals`](super::Kernel::exec_totals) so the
/// shell and experiments can show how much work (and, on the MBDS
/// controller, how much backend fan-out) a workload cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecTotals {
    /// Requests executed.
    pub requests: u64,
    /// Records examined, summed over all requests.
    pub records_examined: u64,
    /// Messages sent to backends (always 0 on a single-site kernel).
    pub messages_sent: u64,
    /// WAL records appended (0 on a non-durable kernel).
    pub wal_appends: u64,
    /// WAL group-commit batches flushed.
    pub wal_batches: u64,
    /// WAL sync operations (one per unbatched append or flushed batch).
    pub wal_syncs: u64,
    /// WAL snapshots installed (log truncations).
    pub wal_snapshots: u64,
    /// Reply windows that expired without an answer (0 on a single-site
    /// kernel; on the MBDS controller each expiry demotes the backend
    /// one health step).
    pub reply_timeouts: u64,
    /// Requests retransmitted after a lost frame or expired wait (only
    /// the socket transport retransmits; the in-process channel bus is
    /// lossless).
    pub retries: u64,
    /// Total milliseconds spent in retry backoff waits — the visible
    /// cost of degraded links, so slow networks are observable rather
    /// than silent.
    pub backoff_ms: u64,
    /// Requests admitted through a cross-session batch
    /// (`Kernel::execute_batch`) rather than one at a time.
    pub batched_requests: u64,
    /// Conflict-free flights the batch scheduler formed: each flight's
    /// requests were staged to the backends together (in-flight
    /// concurrently) instead of round-tripping one by one.
    pub sched_flights: u64,
    /// Of those, flights consisting solely of reads (retrieves staged
    /// in parallel; broadcast reads may ride along since read pairs
    /// always commute).
    pub sched_read_flights: u64,
    /// Of those, flights mixing reads and inserts — key-/file-disjoint
    /// footprints let both kinds share the backend bus.
    pub sched_mixed_flights: u64,
    /// Key-scoped point reads sent as a *single-backend* probe instead
    /// of a replica-group round (the flight scheduler's fast path; a
    /// probe that dies mid-flight fails over to the next replica).
    pub read_probes: u64,
    /// Probe failovers: a probed backend died mid-flight and a replica
    /// answered instead.
    pub read_probe_failovers: u64,
    /// Largest flight formed — the peak number of requests in flight
    /// on the backend bus at once.
    pub sched_max_flight: u64,
    /// Flight boundaries forced by a footprint conflict (same file
    /// same key, write overlap, or a broadcast-footprint request):
    /// the conflicting request stalled until the flight ahead of it
    /// drained.
    pub conflict_stalls: u64,
    /// Largest cross-session WAL group-commit batch flushed — appends
    /// paid for by a single sync (0 on a non-durable kernel).
    pub wal_max_batch: u64,
    /// Replica groups moved by the online rebalancer (backend
    /// add/drain); each move is WAL-bracketed and atomic to readers.
    pub groups_moved: u64,
    /// Canonical-text bytes of record data copied by group moves — the
    /// data volume the rebalancer shipped between backends.
    pub move_bytes: u64,
    /// Requests that lost their flight slot to an in-progress rebalance
    /// (an in-flight group move is a write conflict, so batches execute
    /// solo until the move queue drains).
    pub rebalance_stalls: u64,
}

/// Records per simulated disk block.
///
/// The MBDS literature describes track-sized block accesses; the exact
/// figure only scales the simulated time axis, not the response-time
/// shape, so a typical 1980s blocking factor is used.
pub const BLOCKING_FACTOR: u64 = 16;

impl ExecStats {
    /// Account for examining `n` records.
    pub fn examined(&mut self, n: u64) {
        self.records_examined += n;
    }

    /// Finalize the block estimate from the record counters.
    pub(crate) fn finish(&mut self, files_touched: u64) {
        let recs = self.records_examined + self.records_written;
        self.blocks_touched = recs.div_ceil(BLOCKING_FACTOR).max(files_touched);
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: Self) {
        self.records_examined += rhs.records_examined;
        self.records_matched += rhs.records_matched;
        self.records_returned += rhs.records_returned;
        self.records_written += rhs.records_written;
        self.index_probes += rhs.index_probes;
        self.blocks_touched += rhs.blocks_touched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_estimate_rounds_up_and_floors_at_files_touched() {
        let mut s = ExecStats { records_examined: 17, ..Default::default() };
        s.finish(1);
        assert_eq!(s.blocks_touched, 2);
        let mut s = ExecStats::default();
        s.finish(3);
        assert_eq!(s.blocks_touched, 3);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = ExecStats { records_examined: 1, index_probes: 2, ..Default::default() };
        a += ExecStats { records_examined: 3, records_returned: 4, ..Default::default() };
        assert_eq!(a.records_examined, 4);
        assert_eq!(a.index_probes, 2);
        assert_eq!(a.records_returned, 4);
    }
}
