//! Kernel snapshots as ABDL text.
//!
//! ABDL is self-sufficient as a persistence format: a database's state
//! is exactly the transaction of INSERTs that recreates it. Dumps are
//! therefore human-readable, diffable, and restorable by any ABDL
//! engine — including this one. File declarations and uniqueness
//! constraints are carried in `--!` directive comments so a dump
//! restores the schema-level state too.

use super::store::Store;
use crate::error::{Error, Result};
use crate::parse::parse_request;
use crate::record::DbKey;
use crate::request::Request;
use std::fmt::Write as _;

/// The dump-format header.
pub const DUMP_HEADER: &str = "--! abdl-dump v1";

/// Serialize the store as restorable ABDL text.
///
/// Layout: header, one `--! file <name>` directive per kernel file, one
/// `--! unique <file> <attr>…` directive per constraint, then one
/// INSERT per record prefixed by a `--! key <n>` directive so database
/// keys survive the round trip.
pub fn dump(store: &Store) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{DUMP_HEADER}");
    for file in store.file_names() {
        let _ = writeln!(out, "--! file {file}");
    }
    for (file, groups) in store.unique_constraints() {
        for group in groups {
            let _ = writeln!(out, "--! unique {file} {}", group.join(" "));
        }
    }
    for (key, record) in store.iter_records() {
        let _ = writeln!(out, "--! key {}", key.0);
        let _ = writeln!(out, "INSERT {record}");
    }
    out
}

/// Restore a store from [`dump`] output.
pub fn restore(text: &str) -> Result<Store> {
    let mut lines = text.lines().peekable();
    match lines.next() {
        Some(line) if line.trim() == DUMP_HEADER => {}
        other => {
            return Err(Error::Parse {
                msg: format!("not an ABDL dump (expected `{DUMP_HEADER}`, found {other:?})"),
                offset: 0,
            })
        }
    }
    let mut store = Store::new();
    let mut pending_key: Option<DbKey> = None;
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(directive) = line.strip_prefix("--!") {
            let mut words = directive.split_whitespace();
            match words.next() {
                Some("file") => {
                    let name = words.next().ok_or_else(|| Error::Parse {
                        msg: "file directive needs a name".into(),
                        offset: lineno,
                    })?;
                    store.create_file(name);
                }
                Some("unique") => {
                    let file = words.next().ok_or_else(|| Error::Parse {
                        msg: "unique directive needs a file".into(),
                        offset: lineno,
                    })?;
                    let attrs: Vec<String> = words.map(str::to_owned).collect();
                    if attrs.is_empty() {
                        return Err(Error::Parse {
                            msg: "unique directive needs attributes".into(),
                            offset: lineno,
                        });
                    }
                    store.add_unique_constraint(file, attrs);
                }
                Some("key") => {
                    let key = words
                        .next()
                        .and_then(|w| w.parse::<u64>().ok())
                        .ok_or_else(|| Error::Parse {
                            msg: "key directive needs an integer".into(),
                            offset: lineno,
                        })?;
                    pending_key = Some(DbKey(key));
                }
                other => {
                    return Err(Error::Parse {
                        msg: format!("unknown dump directive {other:?}"),
                        offset: lineno,
                    })
                }
            }
            continue;
        }
        match parse_request(line)? {
            Request::Insert { record } => match pending_key.take() {
                // Bypass uniqueness checks: the dump is already
                // consistent and restore must be exact.
                Some(key) => store.insert_with_key(key, record)?,
                None => {
                    let key = store.reserve_key();
                    store.insert_with_key(key, record)?;
                }
            },
            other => {
                return Err(Error::Parse {
                    msg: format!("dumps contain only INSERTs, found {}", other.op_name()),
                    offset: lineno,
                })
            }
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, Query};
    use crate::record::Record;
    use crate::value::Value;

    fn sample() -> Store {
        let mut s = Store::new();
        s.create_file("empty_file");
        s.add_unique_constraint("course", vec!["title".into(), "semester".into()]);
        for (i, title) in ["Advanced Database", "O'Brien's Seminar"].iter().enumerate() {
            s.execute(&Request::Insert {
                record: Record::from_pairs([("FILE", Value::str("course"))])
                    .with("course", Value::Int(i as i64 + 1))
                    .with("title", Value::str(*title))
                    .with("semester", Value::str("F87"))
                    .with("gpa", Value::Float(3.5)),
            })
            .unwrap();
        }
        s
    }

    #[test]
    fn dump_restore_is_identity() {
        let original = sample();
        let text = dump(&original);
        let restored = restore(&text).unwrap();
        // Same files (including the empty one).
        assert_eq!(
            original.file_names().collect::<Vec<_>>(),
            restored.file_names().collect::<Vec<_>>()
        );
        // Same records under the same keys.
        let a: Vec<_> = original.iter_records().collect();
        let b: Vec<_> = restored.iter_records().collect();
        assert_eq!(a, b);
        // Dumping again is stable.
        assert_eq!(text, dump(&restored));
    }

    #[test]
    fn restored_constraints_are_live() {
        let restored = restore(&dump(&sample())).unwrap();
        let mut restored = restored;
        let err = restored
            .execute(&Request::Insert {
                record: Record::from_pairs([("FILE", Value::str("course"))])
                    .with("course", Value::Int(9))
                    .with("title", Value::str("Advanced Database"))
                    .with("semester", Value::str("F87")),
            })
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
    }

    #[test]
    fn restored_store_continues_key_sequence() {
        let mut restored = restore(&dump(&sample())).unwrap();
        let next = restored.reserve_key();
        // Must not collide with any restored key.
        assert!(restore(&dump(&sample()))
            .unwrap()
            .iter_records()
            .all(|(k, _)| k < next));
    }

    #[test]
    fn restored_store_answers_queries() {
        let mut restored = restore(&dump(&sample())).unwrap();
        let resp = restored
            .execute(&Request::retrieve_all(Query::conjunction(vec![
                Predicate::eq("FILE", "course"),
                Predicate::eq("title", "O'Brien's Seminar"),
            ])))
            .unwrap();
        assert_eq!(resp.records().len(), 1);
        assert_eq!(resp.records()[0].1.get("gpa"), Some(&Value::Float(3.5)));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(restore("not a dump").is_err());
        assert!(restore(&format!("{DUMP_HEADER}\nDELETE (FILE = f)")).is_err());
        assert!(restore(&format!("{DUMP_HEADER}\n--! bogus directive")).is_err());
        assert!(restore(&format!("{DUMP_HEADER}\n--! unique f")).is_err());
    }
}
