//! The kernel store: files, directory indexes, and the request executor.

use super::response::{GroupRow, Response};
use super::stats::{ExecStats, ExecTotals};
use crate::error::{Error, Result};
use crate::query::{Conjunction, Predicate, Query, RelOp};
use crate::record::{DbKey, Record};
use crate::request::{Aggregate, Request, Target, TargetList, Transaction};
use crate::value::Value;
use crate::FILE_ATTR;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;

/// One kernel file: a set of records plus its directory indexes.
#[derive(Debug, Default, Clone)]
struct FileData {
    /// Records keyed by database key (ordered: insertion order is key
    /// order, which makes FIND FIRST/NEXT navigation deterministic).
    records: BTreeMap<DbKey, Record>,
    /// Directory: per-attribute value index.
    indexes: HashMap<String, BTreeMap<Value, BTreeSet<DbKey>>>,
    /// `DUPLICATES ARE NOT ALLOWED` attribute groups.
    unique_groups: Vec<Vec<String>>,
}

impl FileData {
    fn index_insert(&mut self, key: DbKey, record: &Record) {
        for kw in record.keywords() {
            self.indexes
                .entry(kw.attr.clone())
                .or_default()
                .entry(kw.value.clone())
                .or_default()
                .insert(key);
        }
    }

    fn index_remove(&mut self, key: DbKey, record: &Record) {
        for kw in record.keywords() {
            if let Some(by_value) = self.indexes.get_mut(&kw.attr) {
                if let Some(set) = by_value.get_mut(&kw.value) {
                    set.remove(&key);
                    if set.is_empty() {
                        by_value.remove(&kw.value);
                    }
                }
            }
        }
    }
}

/// A single-site kernel database: the KDS of a one-backend MLDS, or one
/// backend's partition of the Multi-Backend Database System.
#[derive(Debug, Default, Clone)]
pub struct Store {
    files: BTreeMap<String, FileData>,
    /// Which file each stored key lives in, so point lookups by key
    /// need not scan every file.
    key_files: HashMap<DbKey, String>,
    next_key: u64,
    indexing: bool,
    /// Lifetime execution counters (see [`ExecTotals`]).
    totals: ExecTotals,
}

impl Store {
    /// An empty store with directory indexing enabled.
    pub fn new() -> Self {
        Store {
            files: BTreeMap::new(),
            key_files: HashMap::new(),
            next_key: 1,
            indexing: true,
            totals: ExecTotals::default(),
        }
    }

    /// An empty store with indexing configurable — `false` forces full
    /// file scans (the directory-ablation mode of experiment E-dir).
    pub fn with_indexing(indexing: bool) -> Self {
        Store { indexing, ..Store::new() }
    }

    /// Declare a kernel file (idempotent). Files are also auto-created
    /// on first INSERT; explicit creation lets empty files be RETRIEVEd
    /// without an [`Error::UnknownFile`].
    pub fn create_file(&mut self, name: impl Into<String>) {
        self.files.entry(name.into()).or_default();
    }

    /// Register a `DUPLICATES ARE NOT ALLOWED` constraint on a file.
    /// INSERTs whose values for *all* attributes of the group duplicate
    /// an existing record's are rejected.
    pub fn add_unique_constraint(&mut self, file: impl Into<String>, attrs: Vec<String>) {
        let groups = &mut self.files.entry(file.into()).or_default().unique_groups;
        // Idempotent: re-registering an existing group (a reloaded
        // schema, a repeated `.spawn` seed) must not double-check it.
        if !groups.contains(&attrs) {
            groups.push(attrs);
        }
    }

    /// Names of all files, in sorted order.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Number of records in `file` (0 when absent).
    pub fn file_len(&self, file: &str) -> usize {
        self.files.get(file).map_or(0, |f| f.records.len())
    }

    /// Total records across all files.
    pub fn len(&self) -> usize {
        self.files.values().map(|f| f.records.len()).sum()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look a record up by database key. Goes through the key→file map
    /// rather than scanning every file.
    pub fn get(&self, key: DbKey) -> Option<&Record> {
        self.files.get(self.key_files.get(&key)?)?.records.get(&key)
    }

    /// Iterate every record in the store, in (file, key) order — the
    /// snapshot/dump traversal.
    pub fn iter_records(&self) -> impl Iterator<Item = (DbKey, &Record)> {
        self.files.values().flat_map(|f| f.records.iter().map(|(k, r)| (*k, r)))
    }

    /// The registered `DUPLICATES ARE NOT ALLOWED` groups, per file.
    pub fn unique_constraints(&self) -> impl Iterator<Item = (&str, &[Vec<String>])> {
        self.files.iter().filter_map(|(name, f)| {
            (!f.unique_groups.is_empty())
                .then_some((name.as_str(), f.unique_groups.as_slice()))
        })
    }

    /// Reserve the next database key without inserting (the MBDS
    /// controller assigns keys centrally so that keys are unique across
    /// backends).
    pub fn reserve_key(&mut self) -> DbKey {
        let key = DbKey(self.next_key);
        self.next_key += 1;
        key
    }

    /// Raw insert with a caller-provided key (MBDS partition loading).
    /// Uniqueness constraints are *not* checked here — the controller
    /// checks them globally.
    pub fn insert_with_key(&mut self, key: DbKey, record: Record) -> Result<()> {
        let file = record.file().ok_or(Error::MissingFileKeyword)?.to_owned();
        self.next_key = self.next_key.max(key.0 + 1);
        self.key_files.insert(key, file.clone());
        let data = self.files.entry(file).or_default();
        if self.indexing {
            data.index_insert(key, &record);
        }
        data.records.insert(key, record);
        Ok(())
    }

    /// Raw lookup by database key (MBDS chunked group moves: the
    /// controller fetches exactly the keys of one move chunk instead of
    /// scanning whole files). Returns `None` when the key is not stored
    /// here.
    pub fn record_by_key(&self, key: DbKey) -> Option<&Record> {
        let file = self.key_files.get(&key)?;
        self.files.get(file)?.records.get(&key)
    }

    /// Raw removal by database key (MBDS group moves: a record whose
    /// replica group migrated away is physically deleted from its old
    /// home so broadcast reads cannot resurrect it). Index maintenance
    /// included; uniqueness bookkeeping stays with the controller, as
    /// with [`Store::insert_with_key`]. Returns the removed record, or
    /// `None` when the key was not stored here.
    pub fn remove_by_key(&mut self, key: DbKey) -> Option<Record> {
        let file = self.key_files.remove(&key)?;
        let data = self.files.get_mut(&file)?;
        let record = data.records.remove(&key)?;
        if self.indexing {
            data.index_remove(key, &record);
        }
        Some(record)
    }

    /// Cumulative execution counters since the store was built.
    pub fn exec_totals(&self) -> ExecTotals {
        self.totals
    }

    /// Execute a single request.
    pub fn execute(&mut self, request: &Request) -> Result<Response> {
        self.totals.requests += 1;
        let resp = match request {
            Request::Insert { record } => self.exec_insert(record.clone()),
            Request::Delete { query } => self.exec_delete(query),
            Request::Update { query, modifier } => {
                self.exec_update(query, &modifier.attr, &modifier.value)
            }
            Request::Retrieve { query, target, by } => {
                self.exec_retrieve(query, target, by.as_deref())
            }
            Request::RetrieveCommon { left, left_attr, right, right_attr, target } => {
                self.exec_retrieve_common(left, left_attr, right, right_attr, target)
            }
        };
        if let Ok(resp) = &resp {
            self.totals.records_examined += resp.stats.records_examined;
        }
        resp
    }

    /// Execute requests sequentially; stops at the first error.
    pub fn execute_transaction(&mut self, txn: &Transaction) -> Result<Vec<Response>> {
        txn.requests.iter().map(|r| self.execute(r)).collect()
    }

    // ----- INSERT ---------------------------------------------------

    fn exec_insert(&mut self, record: Record) -> Result<Response> {
        let file_name = record.file().ok_or(Error::MissingFileKeyword)?.to_owned();
        let mut stats = ExecStats::default();
        // Uniqueness check against registered groups.
        if let Some(data) = self.files.get(&file_name) {
            for group in &data.unique_groups {
                if group.iter().all(|a| record.get(a).is_some()) {
                    let probe = Query::conjunction(
                        group
                            .iter()
                            .map(|a| {
                                Predicate::eq(
                                    a.clone(),
                                    record.get(a).expect("checked present").clone(),
                                )
                            })
                            .collect(),
                    );
                    let (hits, s) = self.eval_query_in_file(&file_name, &probe);
                    stats += s;
                    if !hits.is_empty() {
                        return Err(Error::DuplicateKey { file: file_name, attrs: group.clone() });
                    }
                }
            }
        }
        let key = self.reserve_key();
        self.key_files.insert(key, file_name.clone());
        let data = self.files.entry(file_name).or_default();
        if self.indexing {
            data.index_insert(key, &record);
        }
        data.records.insert(key, record);
        stats.records_written += 1;
        stats.finish(1);
        Ok(Response::with_affected(1, stats))
    }

    // ----- DELETE ---------------------------------------------------

    fn exec_delete(&mut self, query: &Query) -> Result<Response> {
        let (matches, mut stats) = self.eval_query(query)?;
        let mut affected = 0usize;
        for (file, key) in matches {
            let data = self.files.get_mut(&file).expect("matched file exists");
            if let Some(record) = data.records.remove(&key) {
                if self.indexing {
                    data.index_remove(key, &record);
                }
                self.key_files.remove(&key);
                affected += 1;
            }
        }
        stats.records_written += affected as u64;
        stats.finish(1);
        Ok(Response::with_affected(affected, stats))
    }

    // ----- UPDATE ---------------------------------------------------

    fn exec_update(&mut self, query: &Query, attr: &str, value: &Value) -> Result<Response> {
        let (matches, mut stats) = self.eval_query(query)?;
        let mut affected = 0usize;
        for (file, key) in matches {
            let data = self.files.get_mut(&file).expect("matched file exists");
            let Some(record) = data.records.get(&key).cloned() else { continue };
            let mut updated = record.clone();
            updated.set(attr.to_owned(), value.clone());
            if self.indexing {
                data.index_remove(key, &record);
                data.index_insert(key, &updated);
            }
            data.records.insert(key, updated);
            affected += 1;
        }
        stats.records_written += affected as u64;
        stats.finish(1);
        Ok(Response::with_affected(affected, stats))
    }

    // ----- RETRIEVE -------------------------------------------------

    fn exec_retrieve(
        &mut self,
        query: &Query,
        target: &TargetList,
        by: Option<&str>,
    ) -> Result<Response> {
        let (matches, mut stats) = self.eval_query(query)?;
        let mut records: Vec<(DbKey, Record)> = matches
            .into_iter()
            .map(|(file, key)| {
                let rec = self.files[&file].records[&key].clone();
                (key, rec)
            })
            .collect();
        records.sort_by_key(|(k, _)| *k);

        if target.has_aggregates() {
            let groups = aggregate(&records, target, by)?;
            stats.records_returned = groups.len() as u64;
            stats.finish(1);
            let mut resp = Response::with_records(Vec::new(), stats);
            resp.groups = Some(groups);
            return Ok(resp);
        }

        // Plain retrieval: optional by-clause groups (sorts) the output.
        if let Some(by_attr) = by {
            records.sort_by(|(ka, a), (kb, b)| {
                a.get_or_null(by_attr).cmp(b.get_or_null(by_attr)).then(ka.cmp(kb))
            });
        }
        let projected: Vec<(DbKey, Record)> = if target.is_all() {
            records
        } else {
            let attrs: Vec<&str> = target
                .targets
                .iter()
                .map(|t| match t {
                    Target::Attr(a) => a.as_str(),
                    Target::Agg(..) => unreachable!("aggregates handled above"),
                })
                .collect();
            records
                .into_iter()
                .map(|(k, r)| {
                    let p = r.project(attrs.iter().copied());
                    (k, p)
                })
                .collect()
        };
        stats.records_returned = projected.len() as u64;
        stats.finish(1);
        Ok(Response::with_records(projected, stats))
    }

    // ----- RETRIEVE-COMMON ------------------------------------------

    fn exec_retrieve_common(
        &mut self,
        left: &Query,
        left_attr: &str,
        right: &Query,
        right_attr: &str,
        target: &TargetList,
    ) -> Result<Response> {
        let (left_matches, mut stats) = self.eval_query(left)?;
        let (right_matches, rstats) = self.eval_query(right)?;
        stats += rstats;

        // Hash join on the common attribute pair.
        let mut by_value: HashMap<Value, Vec<(DbKey, Record)>> = HashMap::new();
        for (file, key) in right_matches {
            let rec = self.files[&file].records[&key].clone();
            let v = rec.get_or_null(right_attr).clone();
            if !v.is_null() {
                by_value.entry(v).or_default().push((key, rec));
            }
        }
        let mut out = Vec::new();
        for (file, key) in left_matches {
            let lrec = &self.files[&file].records[&key];
            let v = lrec.get_or_null(left_attr);
            if let Some(partners) = by_value.get(v) {
                for (rkey, rrec) in partners {
                    // Merge: left keywords then right keywords that do
                    // not collide.
                    let mut merged = lrec.clone();
                    for kw in rrec.keywords() {
                        if merged.get(&kw.attr).is_none() {
                            merged.set(kw.attr.clone(), kw.value.clone());
                        }
                    }
                    let projected = if target.is_all() {
                        merged
                    } else {
                        let attrs: Vec<&str> = target
                            .targets
                            .iter()
                            .filter_map(|t| match t {
                                Target::Attr(a) => Some(a.as_str()),
                                Target::Agg(..) => None,
                            })
                            .collect();
                        merged.project(attrs)
                    };
                    out.push((key.min(*rkey), projected));
                }
            }
        }
        out.sort_by_key(|(k, _)| *k);
        stats.records_returned = out.len() as u64;
        stats.finish(2);
        Ok(Response::with_records(out, stats))
    }

    // ----- query evaluation -----------------------------------------

    /// Evaluate a query to a set of (file, key) matches.
    fn eval_query(&self, query: &Query) -> Result<(Vec<(String, DbKey)>, ExecStats)> {
        let mut stats = ExecStats::default();
        let mut seen: BTreeSet<(String, DbKey)> = BTreeSet::new();
        for conj in &query.disjuncts {
            match conj.file() {
                Some(file) => {
                    let (keys, s) = self.eval_conjunction_in_file(file, conj);
                    stats += s;
                    seen.extend(keys.into_iter().map(|k| (file.to_owned(), k)));
                }
                None => {
                    // No FILE predicate: scan every file.
                    for (name, _) in self.files.iter() {
                        let (keys, s) = self.eval_conjunction_in_file(name, conj);
                        stats += s;
                        seen.extend(keys.into_iter().map(|k| (name.clone(), k)));
                    }
                }
            }
        }
        stats.records_matched = seen.len() as u64;
        Ok((seen.into_iter().collect(), stats))
    }

    fn eval_query_in_file(&self, file: &str, query: &Query) -> (Vec<DbKey>, ExecStats) {
        let mut stats = ExecStats::default();
        let mut seen = BTreeSet::new();
        for conj in &query.disjuncts {
            let (keys, s) = self.eval_conjunction_in_file(file, conj);
            stats += s;
            seen.extend(keys);
        }
        (seen.into_iter().collect(), stats)
    }

    /// Evaluate one conjunction inside one file, using the directory
    /// index of the most selective usable predicate when enabled.
    fn eval_conjunction_in_file(&self, file: &str, conj: &Conjunction) -> (Vec<DbKey>, ExecStats) {
        let mut stats = ExecStats::default();
        let Some(data) = self.files.get(file) else {
            return (Vec::new(), stats);
        };
        // Predicates other than the FILE-routing one.
        let rest: Vec<&Predicate> =
            conj.predicates.iter().filter(|p| p.attr != FILE_ATTR).collect();

        let candidates: Vec<DbKey> = if self.indexing {
            match best_index_probe(data, &rest) {
                Some((probe_idx, keys)) => {
                    stats.index_probes += 1;
                    // Verify remaining predicates on each candidate.
                    let others: Vec<&Predicate> = rest
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != probe_idx)
                        .map(|(_, p)| *p)
                        .collect();
                    keys.into_iter()
                        .filter(|k| {
                            let rec = &data.records[k];
                            stats.examined(1);
                            others.iter().all(|p| p.matches(rec))
                        })
                        .collect()
                }
                None => self.scan_file(data, &rest, &mut stats),
            }
        } else {
            self.scan_file(data, &rest, &mut stats)
        };
        // Re-verify the FILE predicates (a conjunction could say
        // FILE != x; routing only used FILE = x).
        let file_preds: Vec<&Predicate> =
            conj.predicates.iter().filter(|p| p.attr == FILE_ATTR).collect();
        let out = if file_preds.is_empty() {
            candidates
        } else {
            let fval = Value::str(file);
            if file_preds.iter().all(|p| p.op.eval(&fval, &p.value)) {
                candidates
            } else {
                Vec::new()
            }
        };
        (out, stats)
    }

    fn scan_file(
        &self,
        data: &FileData,
        predicates: &[&Predicate],
        stats: &mut ExecStats,
    ) -> Vec<DbKey> {
        data.records
            .iter()
            .filter(|(_, rec)| {
                stats.examined(1);
                predicates.iter().all(|p| p.matches(rec))
            })
            .map(|(k, _)| *k)
            .collect()
    }
}

/// Choose the most selective index-usable predicate of a conjunction:
/// equality probes first (smallest posting list wins), then range
/// probes. Returns the predicate's position in `rest` and candidate keys.
fn best_index_probe(data: &FileData, rest: &[&Predicate]) -> Option<(usize, Vec<DbKey>)> {
    let mut best: Option<(usize, Vec<DbKey>)> = None;
    for (i, p) in rest.iter().enumerate() {
        let Some(by_value) = data.indexes.get(&p.attr) else { continue };
        let keys: Vec<DbKey> = match p.op {
            RelOp::Eq => {
                by_value.get(&p.value).map(|s| s.iter().copied().collect()).unwrap_or_default()
            }
            RelOp::Lt => range_keys(by_value, Bound::Unbounded, Bound::Excluded(&p.value)),
            RelOp::Le => range_keys(by_value, Bound::Unbounded, Bound::Included(&p.value)),
            RelOp::Gt => range_keys(by_value, Bound::Excluded(&p.value), Bound::Unbounded),
            RelOp::Ge => range_keys(by_value, Bound::Included(&p.value), Bound::Unbounded),
            RelOp::Ne => continue, // not index-friendly
        };
        // NULL-comparison predicates have subtle missing-attribute
        // semantics (a record without the keyword matches `= NULL` but
        // is absent from the index); fall back to scanning for them.
        if p.value.is_null() {
            continue;
        }
        match &best {
            Some((_, cur)) if cur.len() <= keys.len() => {}
            _ => best = Some((i, keys)),
        }
    }
    best
}

fn range_keys(
    by_value: &BTreeMap<Value, BTreeSet<DbKey>>,
    lo: Bound<&Value>,
    hi: Bound<&Value>,
) -> Vec<DbKey> {
    by_value
        .range::<Value, _>((lo, hi))
        .filter(|(v, _)| !v.is_null())
        .flat_map(|(_, s)| s.iter().copied())
        .collect()
}

/// Compute aggregate rows for a RETRIEVE with aggregates.
///
/// Public so the multi-backend controller can re-aggregate globally
/// after merging per-backend partial retrievals (per-backend aggregates
/// cannot be merged for AVG).
pub fn aggregate(
    records: &[(DbKey, Record)],
    target: &TargetList,
    by: Option<&str>,
) -> Result<Vec<GroupRow>> {
    // Group records.
    let mut groups: BTreeMap<Option<Value>, Vec<&Record>> = BTreeMap::new();
    match by {
        Some(attr) => {
            for (_, r) in records {
                groups.entry(Some(r.get_or_null(attr).clone())).or_default().push(r);
            }
        }
        None => {
            groups.insert(None, records.iter().map(|(_, r)| r).collect());
        }
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (group, members) in groups {
        let mut values = Vec::with_capacity(target.targets.len());
        for t in &target.targets {
            match t {
                Target::Attr(a) => {
                    // A plain attribute inside an aggregate target list
                    // reports the group's first value (useful alongside
                    // the by-clause).
                    values.push(
                        members.first().map(|r| r.get_or_null(a).clone()).unwrap_or(Value::Null),
                    );
                }
                Target::Agg(op, attr) => values.push(eval_aggregate(*op, attr, &members)?),
            }
        }
        rows.push(GroupRow { group, values });
    }
    Ok(rows)
}

fn eval_aggregate(op: Aggregate, attr: &str, members: &[&Record]) -> Result<Value> {
    let present: Vec<&Value> =
        members.iter().map(|r| r.get_or_null(attr)).filter(|v| !v.is_null()).collect();
    if op == Aggregate::Count {
        return Ok(Value::Int(present.len() as i64));
    }
    if present.is_empty() {
        return Ok(Value::Null);
    }
    match op {
        Aggregate::Min => Ok((*present.iter().min().expect("non-empty")).clone()),
        Aggregate::Max => Ok((*present.iter().max().expect("non-empty")).clone()),
        Aggregate::Sum | Aggregate::Avg => {
            let mut sum = 0.0f64;
            let mut all_int = true;
            for v in &present {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        sum += *f;
                    }
                    _ => {
                        return Err(Error::NonNumericAggregate { attr: attr.to_owned() });
                    }
                }
            }
            if op == Aggregate::Sum {
                if all_int {
                    Ok(Value::Int(sum as i64))
                } else {
                    Ok(Value::Float(sum))
                }
            } else {
                Ok(Value::Float(sum / present.len() as f64))
            }
        }
        Aggregate::Count => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_request;

    fn store_with_courses() -> Store {
        let mut s = Store::new();
        for (i, (title, dept, credits)) in [
            ("Advanced Database", "CS", 4i64),
            ("Operating Systems", "CS", 4),
            ("Linear Algebra", "Math", 3),
            ("Databases I", "CS", 3),
        ]
        .iter()
        .enumerate()
        {
            s.execute(&Request::Insert {
                record: Record::from_pairs([
                    ("FILE", Value::str("course")),
                    ("course", Value::Int(i as i64 + 1)),
                    ("title", Value::str(*title)),
                    ("dept", Value::str(*dept)),
                    ("credits", Value::Int(*credits)),
                ]),
            })
            .unwrap();
        }
        s
    }

    fn run(s: &mut Store, text: &str) -> Response {
        s.execute(&parse_request(text).unwrap()).unwrap()
    }

    #[test]
    fn insert_then_retrieve_by_equality() {
        let mut s = store_with_courses();
        let r = run(&mut s, "RETRIEVE ((FILE = course) and (title = 'Advanced Database')) (*)");
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].1.get("credits"), Some(&Value::Int(4)));
    }

    #[test]
    fn retrieve_range_predicates() {
        let mut s = store_with_courses();
        let r = run(&mut s, "RETRIEVE ((FILE = course) and (credits >= 4)) (title)");
        assert_eq!(r.records().len(), 2);
        let r = run(&mut s, "RETRIEVE ((FILE = course) and (credits < 4)) (title)");
        assert_eq!(r.records().len(), 2);
    }

    #[test]
    fn retrieve_disjunction_unions_matches() {
        let mut s = store_with_courses();
        let r = run(
            &mut s,
            "RETRIEVE (((FILE = course) and (dept = 'Math')) or ((FILE = course) and (credits = 4))) (*)",
        );
        assert_eq!(r.records().len(), 3);
    }

    #[test]
    fn update_modifies_matching_records() {
        let mut s = store_with_courses();
        let r = run(&mut s, "UPDATE ((FILE = course) and (dept = 'CS')) (credits = 5)");
        assert_eq!(r.affected, 3);
        let r = run(&mut s, "RETRIEVE ((FILE = course) and (credits = 5)) (*)");
        assert_eq!(r.records().len(), 3);
        // Index must have been maintained.
        let r = run(&mut s, "RETRIEVE ((FILE = course) and (credits = 4)) (*)");
        assert_eq!(r.records().len(), 0);
    }

    #[test]
    fn delete_removes_and_cleans_index() {
        let mut s = store_with_courses();
        let r = run(&mut s, "DELETE ((FILE = course) and (dept = 'CS'))");
        assert_eq!(r.affected, 3);
        assert_eq!(s.file_len("course"), 1);
        let r = run(&mut s, "RETRIEVE ((FILE = course) and (dept = 'CS')) (*)");
        assert!(r.records().is_empty());
    }

    #[test]
    fn duplicates_not_allowed_rejects_insert() {
        let mut s = store_with_courses();
        s.add_unique_constraint("course", vec!["title".into(), "dept".into()]);
        let err = s
            .execute(&parse_request(
                "INSERT (<FILE, course>, <course, 9>, <title, 'Advanced Database'>, <dept, 'CS'>)",
            ).unwrap())
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
        // Different dept is fine (group is composite).
        s.execute(&parse_request(
            "INSERT (<FILE, course>, <course, 9>, <title, 'Advanced Database'>, <dept, 'EE'>)",
        ).unwrap())
        .unwrap();
    }

    #[test]
    fn insert_without_file_keyword_fails() {
        let mut s = Store::new();
        let err = s.execute(&parse_request("INSERT (<a, 1>)").unwrap()).unwrap_err();
        assert_eq!(err, Error::MissingFileKeyword);
    }

    #[test]
    fn null_equality_matches_missing_attribute() {
        let mut s = Store::new();
        run(&mut s, "INSERT (<FILE, f>, <f, 1>, <x, 10>)");
        run(&mut s, "INSERT (<FILE, f>, <f, 2>)");
        let r = run(&mut s, "RETRIEVE ((FILE = f) and (x = NULL)) (*)");
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].1.get("f"), Some(&Value::Int(2)));
        let r = run(&mut s, "RETRIEVE ((FILE = f) and (x != NULL)) (*)");
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].1.get("f"), Some(&Value::Int(1)));
    }

    #[test]
    fn aggregates_with_by_clause() {
        let mut s = store_with_courses();
        let r = run(&mut s, "RETRIEVE (FILE = course) (COUNT(title), AVG(credits)) BY dept");
        let groups = r.groups.unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].group, Some(Value::str("CS")));
        assert_eq!(groups[0].values[0], Value::Int(3));
        let avg = groups[0].values[1].as_f64().unwrap();
        assert!((avg - 11.0 / 3.0).abs() < 1e-9);
        assert_eq!(groups[1].group, Some(Value::str("Math")));
    }

    #[test]
    fn aggregate_on_strings_is_error_for_sum() {
        let mut s = store_with_courses();
        let err =
            s.execute(&parse_request("RETRIEVE (FILE = course) (SUM(title))").unwrap()).unwrap_err();
        assert!(matches!(err, Error::NonNumericAggregate { .. }));
    }

    #[test]
    fn min_max_work_on_strings() {
        let mut s = store_with_courses();
        let r = run(&mut s, "RETRIEVE (FILE = course) (MIN(title), MAX(title))");
        let g = r.groups.unwrap();
        assert_eq!(g[0].values[0], Value::str("Advanced Database"));
        assert_eq!(g[0].values[1], Value::str("Operating Systems"));
    }

    #[test]
    fn by_clause_orders_plain_retrieval() {
        let mut s = store_with_courses();
        let r = run(&mut s, "RETRIEVE (FILE = course) (title) BY title");
        let titles: Vec<&str> = r
            .records()
            .iter()
            .map(|(_, rec)| rec.get("title").unwrap().as_str().unwrap())
            .collect();
        let mut sorted = titles.clone();
        sorted.sort();
        assert_eq!(titles, sorted);
    }

    #[test]
    fn retrieve_common_joins_on_attribute_pair() {
        let mut s = Store::new();
        run(&mut s, "INSERT (<FILE, faculty>, <faculty, 1>, <name, 'Hsiao'>, <dept, 'CS'>)");
        run(&mut s, "INSERT (<FILE, department>, <department, 1>, <dname, 'CS'>, <building, 'Sp'>)");
        run(&mut s, "INSERT (<FILE, department>, <department, 2>, <dname, 'EE'>, <building, 'Bu'>)");
        let r = run(
            &mut s,
            "RETRIEVE-COMMON ((FILE = faculty)) (dept) COMMON ((FILE = department)) (dname) (name, building)",
        );
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].1.get("building"), Some(&Value::str("Sp")));
    }

    #[test]
    fn scan_mode_matches_indexed_mode() {
        let mk = |indexing| {
            let mut s = Store::with_indexing(indexing);
            for i in 0..100i64 {
                s.execute(&Request::Insert {
                    record: Record::from_pairs([
                        ("FILE", Value::str("f")),
                        ("f", Value::Int(i)),
                        ("bucket", Value::Int(i % 7)),
                    ]),
                })
                .unwrap();
            }
            s
        };
        let mut indexed = mk(true);
        let mut scanned = mk(false);
        for text in [
            "RETRIEVE ((FILE = f) and (bucket = 3)) (*)",
            "RETRIEVE ((FILE = f) and (bucket >= 5)) (*)",
            "RETRIEVE ((FILE = f) and (bucket != 2)) (f)",
        ] {
            let a = run(&mut indexed, text);
            let b = run(&mut scanned, text);
            assert_eq!(a.records(), b.records(), "divergence for {text}");
            assert!(a.stats.records_examined <= b.stats.records_examined);
        }
    }

    #[test]
    fn query_without_file_scans_all_files() {
        let mut s = Store::new();
        run(&mut s, "INSERT (<FILE, a>, <a, 1>, <x, 7>)");
        run(&mut s, "INSERT (<FILE, b>, <b, 1>, <x, 7>)");
        let r = run(&mut s, "RETRIEVE (x = 7) (*)");
        assert_eq!(r.records().len(), 2);
    }

    #[test]
    fn retrieve_unknown_file_is_empty_not_error() {
        let mut s = Store::new();
        let r = run(&mut s, "RETRIEVE (FILE = ghost) (*)");
        assert!(r.records().is_empty());
    }
}
