//! The single-site kernel execution engine.
//!
//! A [`Store`] is one backend's worth of kernel database: files of
//! records, per-attribute *directory* indexes, uniqueness ("duplicates
//! are not allowed") constraints, and an executor for the five ABDL
//! operations. The multi-backend kernel (`mlds-mbds`) composes many
//! `Store`s behind a controller.

mod dump;
mod kernel;
mod response;
mod stats;
mod store;

pub use dump::{dump, restore, DUMP_HEADER};
pub use kernel::{Kernel, KernelHealth};
pub use response::{GroupRow, Response};
pub use stats::{ExecStats, ExecTotals};
pub use store::{aggregate, Store};
