//! Error type shared by the parser and the kernel engine.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by ABDL parsing and kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A syntax error at a byte offset of the request text.
    Parse {
        /// What went wrong.
        msg: String,
        /// Byte offset into the source text.
        offset: usize,
    },
    /// The request referenced a kernel file that does not exist.
    UnknownFile(String),
    /// An INSERT violated a `DUPLICATES ARE NOT ALLOWED` constraint
    /// registered on the target file.
    DuplicateKey {
        /// File whose constraint was violated.
        file: String,
        /// Attributes forming the violated uniqueness group.
        attrs: Vec<String>,
    },
    /// An INSERT did not carry the mandatory `<FILE, f>` keyword first.
    MissingFileKeyword,
    /// An aggregate was applied to a non-numeric attribute value.
    NonNumericAggregate {
        /// The aggregated attribute.
        attr: String,
    },
    /// No live backend could serve the request: the whole cluster is
    /// down, or every replica of some required partition is dead.
    Unavailable(String),
    /// Execution-level invariant violation (kernel bug surface).
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, offset } => {
                write!(f, "ABDL syntax error at byte {offset}: {msg}")
            }
            Error::UnknownFile(name) => write!(f, "unknown kernel file `{name}`"),
            Error::DuplicateKey { file, attrs } => write!(
                f,
                "duplicate values for ({}) in file `{file}` where duplicates are not allowed",
                attrs.join(", ")
            ),
            Error::MissingFileKeyword => {
                write!(f, "INSERT must carry `<FILE, file-name>` as its first keyword")
            }
            Error::NonNumericAggregate { attr } => {
                write!(f, "aggregate applied to non-numeric attribute `{attr}`")
            }
            Error::Unavailable(msg) => write!(f, "kernel unavailable: {msg}"),
            Error::Internal(msg) => write!(f, "kernel internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
