#![warn(missing_docs)]

//! # The CODASYL-DML → ABDL translation (Chapter VI)
//!
//! "The DML translation takes place in the Kernel Mapping System (KMS)
//! … The two functions of KMS are: (1) parse the user's CODASYL-DML
//! request to validate the syntax, and (2) map the request to an
//! equivalent ABDL request." Parsing lives in `mlds-codasyl`; this crate
//! is the mapping.
//!
//! A [`Translator`] is built over a network schema and a target mode:
//!
//! * [`TargetMode::AbNetwork`] — the Emdi baseline: the schema is a
//!   native network schema and statements operate on the `AB(network)`
//!   store layout;
//! * [`TargetMode::AbFunctional`] — the thesis's contribution: the
//!   schema was produced by the functional→network transformer
//!   (`mlds-transform`) and statements operate on the `AB(functional)`
//!   layout, with the Chapter-VI modifications: subtype STOREs share
//!   the supertype's entity key through the automatic ISA set, overlap
//!   constraints are verified against the overlap table, repeated
//!   records of scalar multi-valued functions are addressed as a group
//!   through the entity key, ERASE performs the Daplex reference
//!   checks, and ERASE ALL is rejected ("the constraints imposed by
//!   CODASYL-DML clash with those imposed by Daplex").
//!
//! Per-user state lives in a [`RunUnit`]: the Currency Indicator Table,
//! the User Work Area, and the result buffers (RB) that hold the
//! auxiliary-retrieve results FIND navigation consumes.
//!
//! Every executed statement reports the ABDL requests it generated
//! ([`StepOutput::requests`]) — the observable of the thesis's
//! statement-by-statement mapping and of the fan-out experiment (E10).

//! ## Example
//!
//! ```
//! use translator::{RunUnit, Translator};
//!
//! let (_, mut store, _) = daplex::university::sample_database().unwrap();
//! let net = transform::transform(&daplex::university::schema()).unwrap();
//! let t = Translator::for_functional(net);
//! let mut ru = RunUnit::new();
//! let stmts = codasyl::dml::parse_statements(
//!     "MOVE 'Advanced Database' TO title IN course\n\
//!      FIND ANY course USING title IN course",
//! ).unwrap();
//! for s in &stmts {
//!     t.execute(&mut ru, &mut store, s).unwrap();
//! }
//! assert_eq!(ru.cit.run_unit().unwrap().record, "course");
//! ```

mod error;
mod run_unit;
mod translate;

pub use error::{Error, Result};
pub use run_unit::{Rb, RunUnit};
pub use translate::{StepOutput, TargetMode, Translator};

#[cfg(test)]
mod tests;
