//! Translation and execution errors.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while translating or executing CODASYL-DML statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A required currency is not established (no current of run-unit,
    /// record type, or set occurrence).
    NoCurrency {
        /// What currency was needed, e.g. "run-unit" or "set advisor".
        what: String,
    },
    /// FIND NEXT ran off the end (or FIND PRIOR off the start) of the
    /// set occurrence, or a FIND located no record. Hosts use this as
    /// their loop-termination status.
    EndOfSet {
        /// The set (or "record search") that was exhausted.
        set: String,
    },
    /// The statement names a record type that is not a member of the
    /// named set.
    NotMember {
        /// The record type.
        record: String,
        /// The set.
        set: String,
    },
    /// CONNECT on a set whose insertion mode is AUTOMATIC ("sets with
    /// an insertion clause of automatic cannot be used in CONNECT
    /// statements").
    InsertionNotManual {
        /// The set.
        set: String,
    },
    /// DISCONNECT on a set whose retention is FIXED.
    RetentionFixed {
        /// The set.
        set: String,
    },
    /// ERASE on a record owning a non-empty set occurrence.
    EraseOwnerNotEmpty {
        /// The occupied set.
        set: String,
    },
    /// ERASE ALL against an `AB(functional)` target ("the statement is
    /// not translated in this implementation").
    EraseAllUnsupported,
    /// STORE would violate an overlap constraint.
    OverlapViolation {
        /// Subtype record being stored.
        subtype: String,
        /// Conflicting subtype the entity already belongs to.
        conflicting: String,
    },
    /// STORE would violate a `DUPLICATES ARE NOT ALLOWED` constraint.
    DuplicateViolation {
        /// The record type.
        record: String,
        /// The constrained items.
        items: Vec<String>,
    },
    /// The current of the run-unit is not of the required record type.
    WrongRunUnitType {
        /// Expected record type.
        expected: String,
        /// Actual record type.
        actual: String,
    },
    /// An operation addressed a set owned by SYSTEM where a record
    /// owner is required (e.g. FIND OWNER).
    SystemOwned {
        /// The set.
        set: String,
    },
    /// Schema-level failure (unknown record/set/item, type mismatch).
    Schema(codasyl::Error),
    /// Kernel-level failure.
    Kernel(abdl::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoCurrency { what } => write!(f, "no currency established for {what}"),
            Error::EndOfSet { set } => write!(f, "end of set `{set}`"),
            Error::NotMember { record, set } => {
                write!(f, "record type `{record}` is not a member of set `{set}`")
            }
            Error::InsertionNotManual { set } => write!(
                f,
                "set `{set}` has AUTOMATIC insertion and cannot be used in CONNECT/DISCONNECT"
            ),
            Error::RetentionFixed { set } => {
                write!(f, "set `{set}` has FIXED retention; members cannot be disconnected")
            }
            Error::EraseOwnerNotEmpty { set } => {
                write!(f, "ERASE aborted: record owns a non-empty occurrence of set `{set}`")
            }
            Error::EraseAllUnsupported => write!(
                f,
                "ERASE ALL is not translated for functional targets (CODASYL and Daplex \
                 constraints clash); use repeated ERASE statements"
            ),
            Error::OverlapViolation { subtype, conflicting } => write!(
                f,
                "STORE aborted: entity already belongs to `{conflicting}`, which is disjoint \
                 from `{subtype}` (no OVERLAP declared)"
            ),
            Error::DuplicateViolation { record, items } => write!(
                f,
                "STORE aborted: duplicates are not allowed for ({}) in `{record}`",
                items.join(", ")
            ),
            Error::WrongRunUnitType { expected, actual } => write!(
                f,
                "current of run-unit is a `{actual}` record, statement requires `{expected}`"
            ),
            Error::SystemOwned { set } => {
                write!(f, "set `{set}` is owned by SYSTEM; it has no owner record")
            }
            Error::Schema(e) => write!(f, "{e}"),
            Error::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<codasyl::Error> for Error {
    fn from(e: codasyl::Error) -> Self {
        Error::Schema(e)
    }
}

impl From<abdl::Error> for Error {
    fn from(e: abdl::Error) -> Self {
        Error::Kernel(e)
    }
}
