//! Statement-level tests of the Chapter-VI translation, in both target
//! modes, including the thesis's worked examples.

use crate::{Error, RunUnit, StepOutput, Translator};
use abdl::{Store, Value};
use codasyl::dml::parse_statements;
use daplex::university;

/// Functional-mode fixture: populated University database + its
/// transformed network schema.
fn functional_fixture() -> (Translator, RunUnit, Store) {
    let (_, store, _) = university::sample_database().unwrap();
    let net = transform::transform(&university::schema()).unwrap();
    (Translator::for_functional(net), RunUnit::new(), store)
}

/// Run a script, panicking on the first error.
fn run_script(t: &Translator, ru: &mut RunUnit, store: &mut Store, src: &str) -> Vec<StepOutput> {
    parse_statements(src)
        .unwrap()
        .iter()
        .map(|s| {
            t.execute(ru, store, s)
                .unwrap_or_else(|e| panic!("statement `{s}` failed: {e}"))
        })
        .collect()
}

/// Run a script, returning per-statement results.
fn try_script(
    t: &Translator,
    ru: &mut RunUnit,
    store: &mut Store,
    src: &str,
) -> Vec<crate::Result<StepOutput>> {
    parse_statements(src).unwrap().iter().map(|s| t.execute(ru, store, s)).collect()
}

// ===== the thesis's worked examples (functional target) ==============

#[test]
fn find_any_advanced_database_example() {
    // "MOVE 'Advanced Database' TO title IN course
    //  FIND ANY course USING title IN course"
    let (t, mut ru, mut store) = functional_fixture();
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Advanced Database' TO title IN course\n\
         FIND ANY course USING title IN course\n\
         GET course",
    );
    // MOVE generates no ABDL; FIND ANY generates exactly one RETRIEVE.
    assert!(out[0].requests.is_empty());
    assert_eq!(out[1].requests.len(), 1);
    let retrieve = out[1].requests[0].to_string();
    assert!(
        retrieve.starts_with("RETRIEVE ((FILE = 'course') and (title = 'Advanced Database'))"),
        "unexpected translation: {retrieve}"
    );
    let (rt, _, rec) = out[2].found.as_ref().unwrap();
    assert_eq!(rt, "course");
    assert_eq!(rec.get("credits"), Some(&Value::Int(4)));
    // GET loaded the UWA.
    assert_eq!(ru.uwa.get("course", "semester"), Value::str("F87"));
}

#[test]
fn find_first_next_iterates_a_system_set() {
    let (t, mut ru, mut store) = functional_fixture();
    let mut titles = Vec::new();
    let stmts = parse_statements(
        "FIND FIRST course WITHIN system_course\n\
         FIND NEXT course WITHIN system_course\n\
         FIND NEXT course WITHIN system_course\n\
         FIND NEXT course WITHIN system_course",
    )
    .unwrap();
    for s in &stmts {
        let out = t.execute(&mut ru, &mut store, s).unwrap();
        let (_, _, rec) = out.found.unwrap();
        titles.push(rec.get("title").unwrap().as_str().unwrap().to_owned());
    }
    assert_eq!(titles.len(), 4);
    assert!(titles.contains(&"Advanced Database".to_owned()));
    // The fifth NEXT runs off the end.
    let next = parse_statements("FIND NEXT course WITHIN system_course").unwrap();
    let err = t.execute(&mut ru, &mut store, &next[0]).unwrap_err();
    assert!(matches!(err, Error::EndOfSet { .. }));
    // PRIOR walks back from the last record.
    let prior = parse_statements("FIND PRIOR course WITHIN system_course").unwrap();
    let out = t.execute(&mut ru, &mut store, &prior[0]).unwrap();
    assert_eq!(
        out.found.unwrap().2.get("title").unwrap().as_str().unwrap(),
        titles[2].as_str()
    );
}

#[test]
fn isa_navigation_via_find_owner() {
    // Find a CS student, then reach its person part through the ISA
    // set — the functional model's value inheritance, seen through
    // CODASYL eyes.
    let (t, mut ru, mut store) = functional_fixture();
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Mathematics' TO major IN student\n\
         FIND ANY student USING major IN student\n\
         FIND OWNER WITHIN person_student",
    );
    let (rt, key, rec) = out[2].found.as_ref().unwrap();
    assert_eq!(rt, "person");
    assert_eq!(rec.get("name"), Some(&Value::str("Emdi")));
    // Supertype and subtype share the entity key.
    assert_eq!(*key, out[1].found.as_ref().unwrap().1);
}

#[test]
fn students_majoring_in_cs_example() {
    // The thesis's FIND FIRST/NEXT loop: students advised by Hsiao,
    // reached through the advisor function set.
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Hsiao' TO ename IN employee\n\
         FIND ANY employee USING ename IN employee\n\
         FIND FIRST faculty WITHIN employee_faculty",
    );
    // Hsiao's faculty record is current → advisor occurrence is his.
    let mut advised = Vec::new();
    let first = parse_statements("FIND FIRST student WITHIN advisor").unwrap();
    let next = parse_statements("FIND NEXT student WITHIN advisor").unwrap();
    let mut res = t.execute(&mut ru, &mut store, &first[0]);
    loop {
        match res {
            Ok(out) => {
                advised.push(out.found.unwrap().1);
                res = t.execute(&mut ru, &mut store, &next[0]);
            }
            Err(Error::EndOfSet { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(advised.len(), 2, "Coker and Zawis are advised by Hsiao");
}

#[test]
fn many_to_many_navigation_through_link_records() {
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Hsiao' TO ename IN employee\n\
         FIND ANY employee USING ename IN employee\n\
         FIND FIRST faculty WITHIN employee_faculty",
    );
    // Iterate Hsiao's teaching set: LINK_1 members, then each link's
    // taught_by owner is the course.
    let mut courses = Vec::new();
    let first = parse_statements("FIND FIRST LINK_1 WITHIN teaching").unwrap();
    let next = parse_statements("FIND NEXT LINK_1 WITHIN teaching").unwrap();
    let owner = parse_statements("FIND OWNER WITHIN taught_by").unwrap();
    let mut res = t.execute(&mut ru, &mut store, &first[0]);
    loop {
        match res {
            Ok(_) => {
                let c = t.execute(&mut ru, &mut store, &owner[0]).unwrap();
                let (_, _, rec) = c.found.unwrap();
                courses.push(rec.get("title").unwrap().as_str().unwrap().to_owned());
                res = t.execute(&mut ru, &mut store, &next[0]);
            }
            Err(Error::EndOfSet { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    courses.sort();
    assert_eq!(courses, vec!["Advanced Database".to_owned(), "Database Design".to_owned()]);
}

#[test]
fn scalar_multi_valued_entities_navigate_once() {
    // Hsiao's faculty part is two repeated kernel records (two
    // degrees); set navigation must see him once.
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Computer Science' TO dname IN department\n\
         FIND ANY department USING dname IN department",
    );
    // CS department owns the dept set: Hsiao and Lum.
    let mut seen = Vec::new();
    let first = parse_statements("FIND FIRST faculty WITHIN dept").unwrap();
    let next = parse_statements("FIND NEXT faculty WITHIN dept").unwrap();
    let mut res = t.execute(&mut ru, &mut store, &first[0]);
    loop {
        match res {
            Ok(out) => {
                seen.push(out.found.unwrap().1);
                res = t.execute(&mut ru, &mut store, &next[0]);
            }
            Err(Error::EndOfSet { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(seen.len(), 2, "two faculty entities, not three kernel records");
}

#[test]
fn find_current_updates_only_the_run_unit() {
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Computer Science' TO major IN student\n\
         FIND ANY student USING major IN student\n\
         MOVE 'F87' TO semester IN course\n\
         FIND ANY course USING semester IN course",
    );
    // Run-unit is now a course; FIND CURRENT flips it back to the
    // student member of person_student — with zero kernel requests.
    let stmts = parse_statements("FIND CURRENT student WITHIN person_student").unwrap();
    let out = t.execute(&mut ru, &mut store, &stmts[0]).unwrap();
    assert!(out.requests.is_empty(), "FIND CURRENT has no direct ABDL mapping");
    assert_eq!(ru.cit.run_unit().unwrap().record, "student");
}

#[test]
fn find_within_current_and_duplicate() {
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Hsiao' TO ename IN employee\n\
         FIND ANY employee USING ename IN employee\n\
         FIND FIRST faculty WITHIN employee_faculty",
    );
    // Students advised by Hsiao with a specific major, via FIND WITHIN
    // CURRENT.
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Computer Science' TO major IN student\n\
         FIND student WITHIN advisor CURRENT USING major IN student",
    );
    let (_, first_key, _) = out[1].found.as_ref().unwrap();
    // FIND DUPLICATE: the next student in the occurrence with the same
    // major as the current one.
    let dup = parse_statements("FIND DUPLICATE WITHIN advisor USING major IN student").unwrap();
    let out2 = t.execute(&mut ru, &mut store, &dup[0]).unwrap();
    let (_, second_key, rec) = out2.found.unwrap();
    assert_ne!(*first_key, second_key);
    assert_eq!(rec.get("major"), Some(&Value::str("Computer Science")));
    // No further duplicate.
    let err = t.execute(&mut ru, &mut store, &dup[0]).unwrap_err();
    assert!(matches!(err, Error::EndOfSet { .. }));
}

// ===== STORE ==========================================================

#[test]
fn store_entity_then_subtype_shares_the_key() {
    let (t, mut ru, mut store) = functional_fixture();
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Newman' TO name IN person\n\
         MOVE 30 TO age IN person\n\
         STORE person\n\
         MOVE 'Physics' TO major IN student\n\
         MOVE 3.0 TO gpa IN student\n\
         STORE student",
    );
    let person_key = out[2].stored_key.unwrap();
    let student_key = out[5].stored_key.unwrap();
    assert_eq!(person_key, student_key, "ISA subtype shares the supertype's entity key");
    // The ISA link attribute carries the shared key.
    let resp = store
        .execute(&abdl::parse::parse_request(&format!(
            "RETRIEVE ((FILE = student) and (student = {student_key})) (*)"
        )).unwrap())
        .unwrap();
    assert_eq!(resp.records().len(), 1);
    assert_eq!(resp.records()[0].1.get("person_student"), Some(&Value::Int(person_key)));
    assert_eq!(resp.records()[0].1.get("major"), Some(&Value::str("Physics")));
}

#[test]
fn store_subtype_without_supertype_currency_fails() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(&t, &mut ru, &mut store, "MOVE 'X' TO major IN student\nSTORE student");
    assert!(matches!(res[1], Err(Error::NoCurrency { .. })));
}

#[test]
fn store_duplicate_course_is_rejected_by_arr() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Advanced Database' TO title IN course\n\
         MOVE 'F87' TO semester IN course\n\
         MOVE 4 TO credits IN course\n\
         STORE course",
    );
    match &res[3] {
        Err(Error::DuplicateViolation { record, items }) => {
            assert_eq!(record, "course");
            assert_eq!(items, &vec!["title".to_owned(), "semester".to_owned()]);
        }
        other => panic!("expected DuplicateViolation, got {other:?}"),
    }
    // A different semester stores fine and the dup-check ARR precedes
    // the INSERT (2 requests).
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'W88' TO semester IN course\nSTORE course",
    );
    assert_eq!(out[1].requests.len(), 2, "one ARR + one INSERT");
    assert!(matches!(out[1].requests[0], abdl::Request::Retrieve { .. }));
    assert!(matches!(out[1].requests[1], abdl::Request::Insert { .. }));
}

#[test]
fn store_respects_overlap_table() {
    // The University schema declares OVERLAP faculty WITH support_staff,
    // so an employee may be stored as both.
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Moonlighter' TO ename IN employee\n\
         MOVE 30000.0 TO salary IN employee\n\
         STORE employee\n\
         MOVE 'instructor' TO rank IN faculty\n\
         STORE faculty\n\
         MOVE 20 TO hours IN support_staff\n\
         STORE support_staff",
    );
    // Without the overlap constraint the same sequence must abort.
    let mut fun_schema = university::schema();
    fun_schema.overlaps.clear();
    let net = transform::transform(&fun_schema).unwrap();
    let t2 = Translator::for_functional(net);
    let mut ru2 = RunUnit::new();
    let mut store2 = Store::new();
    daplex::ab_map::install(&fun_schema, &mut store2);
    let res = try_script(
        &t2,
        &mut ru2,
        &mut store2,
        "MOVE 'Moonlighter' TO ename IN employee\n\
         STORE employee\n\
         STORE faculty\n\
         MOVE 20 TO hours IN support_staff\n\
         STORE support_staff",
    );
    assert!(
        matches!(res[4], Err(Error::OverlapViolation { .. })),
        "expected overlap violation, got {:?}",
        res[4]
    );
}

#[test]
fn store_same_subtype_twice_is_rejected() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Solo' TO name IN person\n\
         STORE person\n\
         MOVE 'Art' TO major IN student\n\
         STORE student\n\
         STORE student",
    );
    assert!(res[3].is_ok());
    assert!(matches!(res[4], Err(Error::DuplicateViolation { .. })));
}

// ===== CONNECT / DISCONNECT ==========================================

#[test]
fn connect_and_disconnect_advisor() {
    // Reconnecting Emdi from Marshall to Hsiao requires the canonical
    // CODASYL currency dance: find the member, disconnect, establish
    // the *new* owner as the set's current occurrence, restore the
    // member as current of run-unit (FIND CURRENT touches nothing
    // else), then CONNECT.
    let (t, mut ru, mut store) = functional_fixture();
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Mathematics' TO major IN student\n\
         FIND ANY student USING major IN student\n\
         DISCONNECT student FROM advisor\n\
         MOVE 'Hsiao' TO ename IN employee\n\
         FIND ANY employee USING ename IN employee\n\
         FIND FIRST faculty WITHIN employee_faculty\n\
         FIND CURRENT student WITHIN person_student\n\
         CONNECT student TO advisor",
    );
    let hsiao = out[5].found.as_ref().unwrap().1;
    // DISCONNECT is one UPDATE nulling the attribute; CONNECT one
    // UPDATE setting it.
    assert_eq!(out[2].requests.len(), 1);
    assert_eq!(out[7].requests.len(), 1);
    let emdi = out[1].found.as_ref().unwrap().1;
    let resp = store
        .execute(&abdl::parse::parse_request(&format!(
            "RETRIEVE ((FILE = student) and (student = {emdi})) (advisor)"
        )).unwrap())
        .unwrap();
    assert_eq!(resp.records()[0].1.get("advisor"), Some(&Value::Int(hsiao)));
}

#[test]
fn connect_to_automatic_isa_set_is_rejected() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Computer Science' TO major IN student\n\
         FIND ANY student USING major IN student\n\
         CONNECT student TO person_student",
    );
    assert!(matches!(res[2], Err(Error::InsertionNotManual { .. })));
}

#[test]
fn disconnect_fixed_retention_is_rejected() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Computer Science' TO major IN student\n\
         FIND ANY student USING major IN student\n\
         DISCONNECT student FROM person_student",
    );
    assert!(matches!(res[2], Err(Error::RetentionFixed { .. })));
}

#[test]
fn connect_updates_every_repeated_record() {
    // Hsiao's faculty part has two repeated kernel records (degrees);
    // reconnecting his dept must update both.
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Mathematics' TO dname IN department\n\
         FIND ANY department USING dname IN department\n\
         MOVE 'Hsiao' TO ename IN employee\n\
         FIND ANY employee USING ename IN employee\n\
         FIND FIRST faculty WITHIN employee_faculty",
    );
    let out = run_script(&t, &mut ru, &mut store, "DISCONNECT faculty FROM dept\nCONNECT faculty TO dept");
    assert_eq!(out[1].affected, 2, "both repeated records updated");
}

// ===== MODIFY =========================================================

#[test]
fn modify_items_generates_one_update_per_item() {
    let (t, mut ru, mut store) = functional_fixture();
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Linear Algebra' TO title IN course\n\
         FIND ANY course USING title IN course\n\
         MOVE 4 TO credits IN course\n\
         MOVE 'W88' TO semester IN course\n\
         MODIFY credits, semester IN course",
    );
    assert_eq!(out[4].requests.len(), 2, "one UPDATE per modified item");
    let key = out[1].found.as_ref().unwrap().1;
    let resp = store
        .execute(&abdl::parse::parse_request(&format!(
            "RETRIEVE ((FILE = course) and (course = {key})) (credits, semester)"
        )).unwrap())
        .unwrap();
    assert_eq!(resp.records()[0].1.get("credits"), Some(&Value::Int(4)));
    assert_eq!(resp.records()[0].1.get("semester"), Some(&Value::str("W88")));
}

#[test]
fn modify_without_currency_fails() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(&t, &mut ru, &mut store, "MODIFY course");
    assert!(matches!(res[0], Err(Error::NoCurrency { .. })));
}

// ===== ERASE ==========================================================

#[test]
fn erase_member_then_owner() {
    let (t, mut ru, mut store) = functional_fixture();
    // Zawis: erase the student part, then the person part.
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 3.2 TO gpa IN student\nFIND ANY student USING gpa IN student",
    );
    let key = ru.cit.run_unit().unwrap().key;
    run_script(&t, &mut ru, &mut store, "ERASE student");
    assert_eq!(store.file_len("student"), 3);
    // The person part survives; now find and erase it.
    let out = run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Zawis' TO name IN person\nFIND ANY person USING name IN person\nERASE person",
    );
    assert_eq!(out[1].found.as_ref().unwrap().1, key);
    assert_eq!(store.file_len("person"), 3);
}

#[test]
fn erase_owner_of_nonempty_set_is_aborted() {
    let (t, mut ru, mut store) = functional_fixture();
    // Hsiao's faculty record owns advisor/teaching occurrences.
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Hsiao' TO ename IN employee\n\
         FIND ANY employee USING ename IN employee\n\
         FIND FIRST faculty WITHIN employee_faculty\n\
         ERASE faculty",
    );
    assert!(
        matches!(res[3], Err(Error::EraseOwnerNotEmpty { .. })),
        "expected abort, got {:?}",
        res[3]
    );
    // The constraint ARRs ran before anything was deleted.
    assert_eq!(store.file_len("faculty"), 4);
}

#[test]
fn erase_all_is_rejected_on_functional_targets() {
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Linear Algebra' TO title IN course\nFIND ANY course USING title IN course",
    );
    let res = try_script(&t, &mut ru, &mut store, "ERASE ALL course");
    assert!(matches!(res[0], Err(Error::EraseAllUnsupported)));
}

// ===== the AB(network) baseline ======================================

const COMPANY_DDL: &str = "
SCHEMA NAME IS company.

RECORD NAME IS department.
  02 dname TYPE IS CHARACTER 20.
  DUPLICATES ARE NOT ALLOWED FOR dname.

RECORD NAME IS employee.
  02 ename TYPE IS CHARACTER 20.
  02 salary TYPE IS FIXED.

SET NAME IS system_department.
  OWNER IS SYSTEM.
  MEMBER IS department.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS system_employee.
  OWNER IS SYSTEM.
  MEMBER IS employee.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS works_in.
  OWNER IS department.
  MEMBER IS employee.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.
";

fn network_fixture() -> (Translator, RunUnit, Store) {
    let schema = codasyl::ddl::parse_schema(COMPANY_DDL).unwrap();
    let mut store = Store::new();
    codasyl::ab_map::install(&schema, &mut store);
    (Translator::for_network(schema), RunUnit::new(), Store::clone(&store))
}

#[test]
fn network_store_find_connect_lifecycle() {
    let (t, mut ru, mut store) = network_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Research' TO dname IN department\n\
         STORE department\n\
         MOVE 'Jones' TO ename IN employee\n\
         MOVE 50000 TO salary IN employee\n\
         STORE employee\n\
         CONNECT employee TO works_in\n\
         MOVE 'Smith' TO ename IN employee\n\
         MOVE 45000 TO salary IN employee\n\
         STORE employee\n\
         CONNECT employee TO works_in",
    );
    // Iterate the works_in occurrence.
    let mut names = Vec::new();
    let first = parse_statements("FIND FIRST employee WITHIN works_in").unwrap();
    let next = parse_statements("FIND NEXT employee WITHIN works_in").unwrap();
    let mut res = t.execute(&mut ru, &mut store, &first[0]);
    loop {
        match res {
            Ok(out) => {
                names.push(
                    out.found.unwrap().2.get("ename").unwrap().as_str().unwrap().to_owned(),
                );
                res = t.execute(&mut ru, &mut store, &next[0]);
            }
            Err(Error::EndOfSet { .. }) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    names.sort();
    assert_eq!(names, vec!["Jones".to_owned(), "Smith".to_owned()]);
}

#[test]
fn network_duplicate_dname_rejected() {
    let (t, mut ru, mut store) = network_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Research' TO dname IN department\n\
         STORE department\n\
         STORE department",
    );
    assert!(matches!(res[2], Err(Error::DuplicateViolation { .. })));
}

#[test]
fn network_erase_all_cascades() {
    let (t, mut ru, mut store) = network_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Research' TO dname IN department\n\
         STORE department\n\
         MOVE 'Jones' TO ename IN employee\n\
         STORE employee\n\
         CONNECT employee TO works_in\n\
         MOVE 'Smith' TO ename IN employee\n\
         STORE employee\n\
         CONNECT employee TO works_in\n\
         FIND FIRST department WITHIN system_department",
    );
    // Plain ERASE is aborted (the department owns two employees)…
    let res = try_script(&t, &mut ru, &mut store, "ERASE department");
    assert!(matches!(res[0], Err(Error::EraseOwnerNotEmpty { .. })));
    // …but ERASE ALL cascades in the network baseline.
    run_script(&t, &mut ru, &mut store, "FIND FIRST department WITHIN system_department");
    let out = run_script(&t, &mut ru, &mut store, "ERASE ALL department");
    assert_eq!(out[0].affected, 3, "department + 2 employees");
    assert_eq!(store.file_len("department"), 0);
    assert_eq!(store.file_len("employee"), 0);
}

#[test]
fn network_erase_all_requires_currency_type_match() {
    let (t, mut ru, mut store) = network_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Jones' TO ename IN employee\nSTORE employee",
    );
    let res = try_script(&t, &mut ru, &mut store, "ERASE department");
    assert!(matches!(res[0], Err(Error::WrongRunUnitType { .. })));
}

// ===== request fan-out (the E10 observable) ===========================

#[test]
fn request_fanout_matches_chapter_vi() {
    let (t, mut ru, mut store) = functional_fixture();
    let script = "MOVE 'Advanced Database' TO title IN course\n\
                  FIND ANY course USING title IN course\n\
                  GET course\n\
                  FIND FIRST course WITHIN system_course\n\
                  FIND NEXT course WITHIN system_course\n\
                  FIND CURRENT course WITHIN system_course";
    let outs = run_script(&t, &mut ru, &mut store, script);
    let fanout: Vec<usize> = outs.iter().map(|o| o.requests.len()).collect();
    // MOVE: 0 — host-language only.
    // FIND ANY: 1 RETRIEVE.
    // GET: 1 RETRIEVE (through KC).
    // FIND FIRST: 1 RETRIEVE (fills RB).
    // FIND NEXT: 0 — satisfied from RB.
    // FIND CURRENT: 0 — CIT update only.
    assert_eq!(fanout, vec![0, 1, 1, 1, 0, 0]);
}

// ===== additional edge cases ==========================================

#[test]
fn find_position_requires_current_occurrence_for_record_owned_sets() {
    let (t, mut ru, mut store) = functional_fixture();
    // No faculty currency established → the advisor occurrence is
    // undefined.
    let res = try_script(&t, &mut ru, &mut store, "FIND FIRST student WITHIN advisor");
    assert!(matches!(res[0], Err(Error::NoCurrency { .. })));
}

#[test]
fn find_last_and_prior_navigation() {
    let (t, mut ru, mut store) = functional_fixture();
    let out = run_script(&t, &mut ru, &mut store, "FIND LAST course WITHIN system_course");
    let last_key = out[0].found.as_ref().unwrap().1;
    let out = run_script(&t, &mut ru, &mut store, "FIND PRIOR course WITHIN system_course");
    assert!(out[0].found.as_ref().unwrap().1 < last_key);
    // Walking PRIOR past the first record ends the set.
    let prior = parse_statements("FIND PRIOR course WITHIN system_course").unwrap();
    let mut hits = 1; // we are at len-2 already
    loop {
        match t.execute(&mut ru, &mut store, &prior[0]) {
            Ok(_) => hits += 1,
            Err(Error::EndOfSet { .. }) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(hits, 3, "4 courses: LAST, then 3 PRIORs before end-of-set");
}

#[test]
fn get_record_type_mismatch_is_rejected() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'F87' TO semester IN course\n\
         FIND ANY course USING semester IN course\n\
         GET student",
    );
    assert!(matches!(res[2], Err(Error::WrongRunUnitType { .. })));
}

#[test]
fn get_items_loads_only_requested_items() {
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'F87' TO semester IN course\n\
         FIND ANY course USING semester IN course\n\
         GET title IN course",
    );
    assert!(!ru.uwa.get("course", "title").is_null());
    // credits was not requested and was never MOVEd: stays NULL.
    assert!(ru.uwa.get("course", "credits").is_null());
}

#[test]
fn find_any_with_no_match_is_end_of_set() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Ghost Course' TO title IN course\nFIND ANY course USING title IN course",
    );
    assert!(matches!(res[1], Err(Error::EndOfSet { .. })));
    // Currency is untouched by the failed FIND.
    assert!(ru.cit.run_unit().is_none());
}

#[test]
fn modify_after_erase_fails_cleanly() {
    let (t, mut ru, mut store) = functional_fixture();
    // A freshly stored course owns no occupied occurrences, so ERASE
    // goes through.
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Ephemeral' TO title IN course\n\
         MOVE 'S89' TO semester IN course\n\
         MOVE 1 TO credits IN course\n\
         STORE course\n\
         ERASE course",
    );
    // ERASE forgot the currency.
    let res = try_script(&t, &mut ru, &mut store, "MODIFY credits IN course");
    assert!(matches!(res[0], Err(Error::NoCurrency { .. })));
}

#[test]
fn network_store_automatic_record_owned_set_uses_current_occurrence() {
    // A native schema where an automatic record-owned set connects the
    // stored member to the current occurrence.
    let ddl = "
SCHEMA NAME IS shop.
RECORD NAME IS invoice.
  02 num TYPE IS FIXED.
RECORD NAME IS line.
  02 qty TYPE IS FIXED.
SET NAME IS system_invoice.
  OWNER IS SYSTEM.
  MEMBER IS invoice.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.
SET NAME IS lines.
  OWNER IS invoice.
  MEMBER IS line.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.
";
    let schema = codasyl::ddl::parse_schema(ddl).unwrap();
    let mut store = Store::new();
    codasyl::ab_map::install(&schema, &mut store);
    let t = Translator::for_network(schema);
    let mut ru = RunUnit::new();
    // Without an invoice currency, STORE line has no occurrence.
    let res = try_script(&t, &mut ru, &mut store, "MOVE 1 TO qty IN line\nSTORE line");
    assert!(matches!(res[1], Err(Error::NoCurrency { .. })));
    // After storing an invoice, lines connect to it automatically.
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 7 TO num IN invoice\nSTORE invoice\nMOVE 2 TO qty IN line\nSTORE line",
    );
    let out = run_script(&t, &mut ru, &mut store, "FIND FIRST line WITHIN lines");
    assert_eq!(out[0].found.as_ref().unwrap().2.get("qty"), Some(&Value::Int(2)));
}

#[test]
fn connect_requires_set_membership_of_the_record_type() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'F87' TO semester IN course\n\
         FIND ANY course USING semester IN course\n\
         CONNECT course TO advisor",
    );
    assert!(matches!(res[2], Err(Error::NotMember { .. })));
}

#[test]
fn wrong_member_type_in_positional_find_is_rejected() {
    let (t, mut ru, mut store) = functional_fixture();
    let res = try_script(&t, &mut ru, &mut store, "FIND FIRST faculty WITHIN advisor");
    assert!(matches!(res[0], Err(Error::NotMember { .. })));
}

#[test]
fn buffers_invalidate_after_store_into_the_swept_set() {
    // Sweep the system_course set, STORE a new course mid-sweep, and
    // confirm navigation picks the fresh occurrence up (the RB is
    // re-retrieved rather than served stale).
    let (t, mut ru, mut store) = functional_fixture();
    run_script(&t, &mut ru, &mut store, "FIND FIRST course WITHIN system_course");
    run_script(
        &t,
        &mut ru,
        &mut store,
        "MOVE 'Fresh Course' TO title IN course\n\
         MOVE 'S89' TO semester IN course\n\
         MOVE 2 TO credits IN course\n\
         STORE course",
    );
    // After STORE, the new course is the current of system_course; a
    // FIND FIRST sweep sees five courses now.
    let first = parse_statements("FIND FIRST course WITHIN system_course").unwrap();
    let next = parse_statements("FIND NEXT course WITHIN system_course").unwrap();
    let mut n = 0;
    let mut res = t.execute(&mut ru, &mut store, &first[0]);
    loop {
        match res {
            Ok(_) => {
                n += 1;
                res = t.execute(&mut ru, &mut store, &next[0]);
            }
            Err(Error::EndOfSet { .. }) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(n, 5, "four original courses plus the stored one");
}

#[test]
fn modify_of_swept_attribute_is_visible_to_restarted_navigation() {
    let (t, mut ru, mut store) = functional_fixture();
    run_script(
        &t,
        &mut ru,
        &mut store,
        "FIND FIRST course WITHIN system_course\n\
         MOVE 1 TO credits IN course\n\
         MODIFY credits IN course",
    );
    // Restart the sweep: the first course now reports credits = 1.
    let out = run_script(&t, &mut ru, &mut store, "FIND FIRST course WITHIN system_course");
    assert_eq!(out[0].found.as_ref().unwrap().2.get("credits"), Some(&Value::Int(1)));
}
