//! Statement-by-statement translation (the KMS mapping of Chapter VI).

use crate::error::{Error, Result};
use crate::run_unit::{Rb, RunUnit};
use abdl::{Kernel, Modifier, Predicate, Query, Record, Request, Response, Value, FILE_ATTR};
use codasyl::ab_map::{coerce, key_attr, SYSTEM_OWNER_KEY};
use codasyl::dml::{GetSpec, Position, Statement};
use codasyl::schema::{Insertion, NetworkSchema, Owner, Retention, SetOrigin, SetType};

/// Which kernel layout the translation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetMode {
    /// A native network database in the `AB(network)` layout (the Emdi
    /// baseline translation).
    AbNetwork,
    /// A functional database in the `AB(functional)` layout, accessed
    /// through its transformed network schema (the thesis's modified
    /// translation).
    AbFunctional,
}

/// What one executed statement produced.
#[derive(Debug, Clone, Default)]
pub struct StepOutput {
    /// The ABDL requests generated (auxiliary retrievals included), in
    /// execution order.
    pub requests: Vec<Request>,
    /// The record located (FIND) or delivered (GET): record type,
    /// entity key, and its kernel representative.
    pub found: Option<(String, i64, Record)>,
    /// Records affected by a mutation (STORE/CONNECT/DISCONNECT/
    /// MODIFY/ERASE).
    pub affected: usize,
    /// The entity key assigned by a STORE.
    pub stored_key: Option<i64>,
}

/// The KMS: translates CODASYL-DML statements into ABDL requests and
/// executes them against a kernel.
#[derive(Debug, Clone)]
pub struct Translator {
    schema: NetworkSchema,
    mode: TargetMode,
}

impl Translator {
    /// A translator for a native network database.
    pub fn for_network(schema: NetworkSchema) -> Self {
        Translator { schema, mode: TargetMode::AbNetwork }
    }

    /// A translator for a transformed functional database.
    pub fn for_functional(schema: NetworkSchema) -> Self {
        Translator { schema, mode: TargetMode::AbFunctional }
    }

    /// Choose the mode from the schema's provenance metadata.
    pub fn auto(schema: NetworkSchema) -> Self {
        let mode = if schema.is_transformed() {
            TargetMode::AbFunctional
        } else {
            TargetMode::AbNetwork
        };
        Translator { schema, mode }
    }

    /// The network schema the translator operates over.
    pub fn schema(&self) -> &NetworkSchema {
        &self.schema
    }

    /// The target mode.
    pub fn mode(&self) -> TargetMode {
        self.mode
    }

    /// Execute one statement on behalf of a run-unit.
    pub fn execute<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        stmt: &Statement,
    ) -> Result<StepOutput> {
        match stmt {
            Statement::Move { value, item, record } => self.exec_move(ru, record, item, value),
            Statement::FindAny { record, items } => self.find_any(ru, kernel, record, items),
            Statement::FindCurrent { record, set } => self.find_current(ru, record, set),
            Statement::FindDuplicate { set, items, record } => {
                self.find_duplicate(ru, set, items, record)
            }
            Statement::FindPosition { pos, record, set } => {
                self.find_position(ru, kernel, *pos, record, set)
            }
            Statement::FindOwner { set } => self.find_owner(ru, kernel, set),
            Statement::FindWithinCurrent { record, set, items } => {
                self.find_within_current(ru, kernel, record, set, items)
            }
            Statement::Get { spec } => self.get(ru, kernel, spec),
            Statement::Store { record } => self.store(ru, kernel, record),
            Statement::Connect { record, sets } => self.connect(ru, kernel, record, sets),
            Statement::Disconnect { record, sets } => self.disconnect(ru, kernel, record, sets),
            Statement::ModifyRecord { record } => self.modify(ru, kernel, record, None),
            Statement::ModifyItems { items, record } => {
                self.modify(ru, kernel, record, Some(items))
            }
            Statement::Erase { record, all } => self.erase(ru, kernel, record, *all),
        }
    }

    // ----- helpers ----------------------------------------------------

    fn run<K: Kernel>(
        &self,
        kernel: &mut K,
        out: &mut StepOutput,
        req: Request,
    ) -> Result<Response> {
        let resp = kernel.execute(&req)?;
        out.requests.push(req);
        Ok(resp)
    }

    /// Deduplicate a retrieval into (key, representative record) rows.
    /// In `AB(functional)` an entity with scalar multi-valued functions
    /// is several kernel records under one entity key; navigation and
    /// currency address the entity, not the copies.
    fn rows(&self, record_type: &str, resp: &Response) -> Vec<(i64, Record)> {
        let mut rows: Vec<(i64, Record)> = Vec::new();
        for (_, rec) in resp.records() {
            let Some(key) = rec.get(key_attr(record_type)).and_then(Value::as_int) else {
                continue;
            };
            if rows.iter().all(|(k, _)| *k != key) {
                rows.push((key, rec.clone()));
            }
        }
        rows.sort_by_key(|(k, _)| *k);
        rows
    }

    /// The current of the run-unit, checked to be of `record_type`.
    fn run_unit_of(&self, ru: &RunUnit, record_type: &str) -> Result<i64> {
        let cur = ru
            .cit
            .run_unit()
            .ok_or_else(|| Error::NoCurrency { what: "run-unit".to_owned() })?;
        if cur.record != record_type {
            return Err(Error::WrongRunUnitType {
                expected: record_type.to_owned(),
                actual: cur.record.clone(),
            });
        }
        Ok(cur.key)
    }

    /// Query addressing all kernel records of an entity.
    fn entity_query(&self, record_type: &str, key: i64) -> Query {
        Query::conjunction(vec![
            Predicate::eq(FILE_ATTR, Value::str(record_type)),
            Predicate::eq(key_attr(record_type).to_owned(), Value::Int(key)),
        ])
    }

    /// Update every currency a freshly found record establishes.
    fn establish_currency(&self, ru: &mut RunUnit, record_type: &str, key: i64, rec: &Record) {
        ru.cit.make_current(record_type, key);
        for set in self.schema.sets_with_member(record_type) {
            if let Some(owner) = rec.get(&set.name).and_then(Value::as_int) {
                ru.cit.set_member(&set.name, owner, record_type, key);
            }
        }
        for set in self.schema.sets_with_owner(record_type) {
            ru.cit.set_owner(&set.name, key);
        }
    }

    /// The current occurrence owner key of a set (SYSTEM sets own the
    /// single occurrence `SYSTEM_OWNER_KEY`).
    fn occurrence_owner(&self, ru: &RunUnit, set: &SetType) -> Result<i64> {
        match &set.owner {
            Owner::System => Ok(SYSTEM_OWNER_KEY),
            Owner::Record(_) => ru
                .cit
                .set(&set.name)
                .and_then(|sc| sc.owner_key)
                .ok_or_else(|| Error::NoCurrency { what: format!("set {}", set.name) }),
        }
    }

    /// Retrieve the member rows of a set occurrence.
    fn retrieve_occurrence<K: Kernel>(
        &self,
        kernel: &mut K,
        out: &mut StepOutput,
        set: &SetType,
        owner_key: i64,
    ) -> Result<Vec<(i64, Record)>> {
        let query = Query::conjunction(vec![
            Predicate::eq(FILE_ATTR, Value::str(set.member.clone())),
            Predicate::eq(set.name.clone(), Value::Int(owner_key)),
        ]);
        let resp = self.run(kernel, out, Request::retrieve_all(query))?;
        Ok(self.rows(&set.member, &resp))
    }

    // ----- MOVE ---------------------------------------------------------

    fn exec_move(
        &self,
        ru: &mut RunUnit,
        record: &str,
        item: &str,
        value: &Value,
    ) -> Result<StepOutput> {
        let rt = self.schema.require_record(record)?;
        rt.require_attr(item)?;
        ru.uwa.set(record, item, value.clone());
        Ok(StepOutput::default())
    }

    // ----- FIND ANY (§VI.B.1) --------------------------------------------

    fn find_any<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        record: &str,
        items: &[String],
    ) -> Result<StepOutput> {
        let rt = self.schema.require_record(record)?;
        let mut predicates = vec![Predicate::eq(FILE_ATTR, Value::str(record))];
        for item in items {
            rt.require_attr(item)?;
            predicates.push(Predicate::eq(item.clone(), ru.uwa.get(record, item)));
        }
        let mut out = StepOutput::default();
        let resp =
            self.run(kernel, &mut out, Request::retrieve_all(Query::conjunction(predicates)))?;
        let rows = self.rows(record, &resp);
        if rows.is_empty() {
            return Err(Error::EndOfSet { set: format!("FIND ANY {record}") });
        }
        let (key, rec) = rows[0].clone();
        ru.rb_record.insert(record.to_owned(), Rb { rows, pos: Some(0) });
        self.establish_currency(ru, record, key, &rec);
        out.found = Some((record.to_owned(), key, rec));
        Ok(out)
    }

    // ----- FIND CURRENT (§VI.B.2) ------------------------------------------

    fn find_current(&self, ru: &mut RunUnit, record: &str, set: &str) -> Result<StepOutput> {
        let s = self.schema.require_set(set)?;
        if s.member != record {
            return Err(Error::NotMember { record: record.to_owned(), set: set.to_owned() });
        }
        let member = ru
            .cit
            .set(set)
            .and_then(|sc| sc.member.clone())
            .ok_or_else(|| Error::NoCurrency { what: format!("set {set}") })?;
        // "The only function of this statement is to update CIT."
        ru.cit.set_run_unit(&member.record, member.key);
        Ok(StepOutput::default())
    }

    // ----- FIND DUPLICATE WITHIN (§VI.B.3) -----------------------------------

    fn find_duplicate(
        &self,
        ru: &mut RunUnit,
        set: &str,
        items: &[String],
        record: &str,
    ) -> Result<StepOutput> {
        let s = self.schema.require_set(set)?;
        if s.member != record {
            return Err(Error::NotMember { record: record.to_owned(), set: set.to_owned() });
        }
        let rt = self.schema.require_record(record)?;
        for item in items {
            rt.require_attr(item)?;
        }
        // "A basic assumption is that the requested records have
        // previously been located by another FIND and are therefore
        // already resident in RB."
        let rb = ru
            .rb_set
            .get(set)
            .ok_or_else(|| Error::NoCurrency { what: format!("set {set} (no RB)") })?;
        let Some(pos) = rb.pos else {
            return Err(Error::NoCurrency { what: format!("set {set} (no current member)") });
        };
        let current = rb.rows[pos].1.clone();
        let next = rb.rows.iter().enumerate().skip(pos + 1).find(|(_, (_, rec))| {
            items.iter().all(|i| rec.get_or_null(i) == current.get_or_null(i))
        });
        let Some((new_pos, (key, rec))) = next else {
            return Err(Error::EndOfSet { set: set.to_owned() });
        };
        let (key, rec) = (*key, rec.clone());
        let owner = self.occurrence_owner(ru, s)?;
        ru.rb_set.get_mut(set).expect("checked above").pos = Some(new_pos);
        self.establish_currency(ru, record, key, &rec);
        ru.cit.set_member(set, owner, record, key);
        Ok(StepOutput {
            found: Some((record.to_owned(), key, rec)),
            ..StepOutput::default()
        })
    }

    // ----- FIND FIRST/LAST/NEXT/PRIOR (§VI.B.4) ------------------------------

    fn find_position<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        pos: Position,
        record: &str,
        set: &str,
    ) -> Result<StepOutput> {
        let s = self.schema.require_set(set)?.clone();
        if s.member != record {
            return Err(Error::NotMember { record: record.to_owned(), set: set.to_owned() });
        }
        let owner = self.occurrence_owner(ru, &s)?;
        let mut out = StepOutput::default();

        let refresh = matches!(pos, Position::First | Position::Last) || !ru.rb_set.contains_key(set);
        if refresh {
            let rows = self.retrieve_occurrence(kernel, &mut out, &s, owner)?;
            // Preserve the navigation position across a refresh by
            // re-locating the current member.
            let cur_key = ru.cit.set(set).and_then(|sc| sc.member.as_ref()).map(|m| m.key);
            let pos0 = cur_key.and_then(|k| rows.iter().position(|(key, _)| *key == k));
            ru.rb_set.insert(set.to_owned(), Rb { rows, pos: pos0 });
        }
        let rb = ru.rb_set.get(set).expect("inserted above");
        if rb.rows.is_empty() {
            return Err(Error::EndOfSet { set: set.to_owned() });
        }
        let new_pos = match (pos, rb.pos) {
            (Position::First, _) => 0,
            (Position::Last, _) => rb.rows.len() - 1,
            (Position::Next, None) => 0,
            (Position::Next, Some(p)) => {
                if p + 1 >= rb.rows.len() {
                    return Err(Error::EndOfSet { set: set.to_owned() });
                }
                p + 1
            }
            (Position::Prior, None) => rb.rows.len() - 1,
            (Position::Prior, Some(p)) => {
                if p == 0 {
                    return Err(Error::EndOfSet { set: set.to_owned() });
                }
                p - 1
            }
        };
        let (key, rec) = rb.rows[new_pos].clone();
        ru.rb_set.get_mut(set).expect("present").pos = Some(new_pos);
        self.establish_currency(ru, record, key, &rec);
        ru.cit.set_member(set, owner, record, key);
        out.found = Some((record.to_owned(), key, rec));
        Ok(out)
    }

    // ----- FIND OWNER (§VI.B.5) ------------------------------------------

    fn find_owner<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        set: &str,
    ) -> Result<StepOutput> {
        let s = self.schema.require_set(set)?.clone();
        let Owner::Record(owner_type) = &s.owner else {
            return Err(Error::SystemOwned { set: set.to_owned() });
        };
        let owner_key = ru
            .cit
            .set(set)
            .and_then(|sc| sc.owner_key)
            .ok_or_else(|| Error::NoCurrency { what: format!("set {set}") })?;
        let mut out = StepOutput::default();
        let resp = self.run(
            kernel,
            &mut out,
            Request::retrieve_all(self.entity_query(owner_type, owner_key)),
        )?;
        let rows = self.rows(owner_type, &resp);
        let Some((key, rec)) = rows.first().cloned() else {
            return Err(Error::EndOfSet { set: set.to_owned() });
        };
        self.establish_currency(ru, owner_type, key, &rec);
        out.found = Some((owner_type.clone(), key, rec));
        Ok(out)
    }

    // ----- FIND WITHIN CURRENT (§VI.B.6) -----------------------------------

    fn find_within_current<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        record: &str,
        set: &str,
        items: &[String],
    ) -> Result<StepOutput> {
        let s = self.schema.require_set(set)?.clone();
        if s.member != record {
            return Err(Error::NotMember { record: record.to_owned(), set: set.to_owned() });
        }
        let rt = self.schema.require_record(record)?;
        let owner = self.occurrence_owner(ru, &s)?;
        let mut predicates = vec![
            Predicate::eq(FILE_ATTR, Value::str(record)),
            Predicate::eq(set.to_owned(), Value::Int(owner)),
        ];
        for item in items {
            rt.require_attr(item)?;
            predicates.push(Predicate::eq(item.clone(), ru.uwa.get(record, item)));
        }
        let mut out = StepOutput::default();
        let resp =
            self.run(kernel, &mut out, Request::retrieve_all(Query::conjunction(predicates)))?;
        let rows = self.rows(record, &resp);
        if rows.is_empty() {
            return Err(Error::EndOfSet { set: set.to_owned() });
        }
        let (key, rec) = rows[0].clone();
        ru.rb_set.insert(set.to_owned(), Rb { rows, pos: Some(0) });
        self.establish_currency(ru, record, key, &rec);
        ru.cit.set_member(set, owner, record, key);
        out.found = Some((record.to_owned(), key, rec));
        Ok(out)
    }

    // ----- GET (§VI.C) ----------------------------------------------------

    fn get<K: Kernel>(&self, ru: &mut RunUnit, kernel: &mut K, spec: &GetSpec) -> Result<StepOutput> {
        let cur = ru
            .cit
            .run_unit()
            .ok_or_else(|| Error::NoCurrency { what: "run-unit".to_owned() })?
            .clone();
        match spec {
            GetSpec::Record(r) if *r != cur.record => {
                return Err(Error::WrongRunUnitType {
                    expected: r.clone(),
                    actual: cur.record.clone(),
                });
            }
            GetSpec::Items { record, .. } if *record != cur.record => {
                return Err(Error::WrongRunUnitType {
                    expected: record.clone(),
                    actual: cur.record.clone(),
                });
            }
            _ => {}
        }
        let mut out = StepOutput::default();
        let resp = self.run(
            kernel,
            &mut out,
            Request::retrieve_all(self.entity_query(&cur.record, cur.key)),
        )?;
        let rows = self.rows(&cur.record, &resp);
        let Some((key, rec)) = rows.first().cloned() else {
            return Err(Error::EndOfSet { set: "current of run-unit".to_owned() });
        };
        match spec {
            GetSpec::Items { items, record } => {
                let rt = self.schema.require_record(record)?;
                for item in items {
                    rt.require_attr(item)?;
                }
                ru.uwa.load_items(record, &rec, items.iter().map(String::as_str));
            }
            _ => ru.uwa.load_record(&cur.record, &rec),
        }
        out.found = Some((cur.record.clone(), key, rec));
        Ok(out)
    }

    // ----- STORE (§VI.G) ---------------------------------------------------

    fn store<K: Kernel>(&self, ru: &mut RunUnit, kernel: &mut K, record: &str) -> Result<StepOutput> {
        let rt = self.schema.require_record(record)?.clone();
        let mut out = StepOutput::default();

        // Duplicate-condition auxiliary retrievals: one per uniqueness
        // group whose items all carry UWA values.
        for group in &rt.unique_groups {
            let values: Vec<(String, Value)> =
                group.iter().map(|i| (i.clone(), ru.uwa.get(record, i))).collect();
            if values.iter().any(|(_, v)| v.is_null()) {
                continue;
            }
            let mut predicates = vec![Predicate::eq(FILE_ATTR, Value::str(record))];
            for (item, v) in &values {
                predicates.push(Predicate::eq(item.clone(), v.clone()));
            }
            let resp = self.run(
                kernel,
                &mut out,
                Request::Retrieve {
                    query: Query::conjunction(predicates),
                    target: abdl::TargetList::attrs([key_attr(record)]),
                    by: None,
                },
            )?;
            if !resp.records().is_empty() {
                return Err(Error::DuplicateViolation {
                    record: record.to_owned(),
                    items: group.clone(),
                });
            }
        }

        // Entity key assignment. In the functional target, a subtype
        // record shares its supertype's entity key through the
        // automatic ISA set; the current ISA occurrence supplies it.
        let isa_sets: Vec<&SetType> = self
            .schema
            .sets_with_member(record)
            .filter(|s| matches!(s.origin, SetOrigin::Isa { .. }))
            .collect();
        let key = if self.mode == TargetMode::AbFunctional && !isa_sets.is_empty() {
            let mut key: Option<i64> = None;
            for s in &isa_sets {
                let owner = ru
                    .cit
                    .set(&s.name)
                    .and_then(|sc| sc.owner_key)
                    .ok_or_else(|| Error::NoCurrency { what: format!("set {}", s.name) })?;
                match key {
                    None => key = Some(owner),
                    Some(k) if k != owner => {
                        return Err(Error::NoCurrency {
                            what: format!(
                                "consistent ISA occurrence for {record} (owners #{k} and #{owner} differ)"
                            ),
                        })
                    }
                    _ => {}
                }
            }
            key.expect("at least one ISA set")
        } else {
            kernel.reserve_key().0 as i64
        };

        // Overlap-table verification (functional targets, §V.E/§VI.G).
        if self.mode == TargetMode::AbFunctional && !isa_sets.is_empty() {
            for sibling in self.overlap_siblings(record) {
                let resp = self.run(
                    kernel,
                    &mut out,
                    Request::Retrieve {
                        query: self.entity_query(&sibling, key),
                        target: abdl::TargetList::attrs([key_attr(&sibling)]),
                        by: None,
                    },
                )?;
                if !resp.records().is_empty()
                    && !self.schema.overlaps.iter().any(|o| o.allows(record, &sibling))
                {
                    return Err(Error::OverlapViolation {
                        subtype: record.to_owned(),
                        conflicting: sibling,
                    });
                }
            }
            // Reject storing the same subtype part twice.
            let resp = self.run(
                kernel,
                &mut out,
                Request::Retrieve {
                    query: self.entity_query(record, key),
                    target: abdl::TargetList::attrs([key_attr(record)]),
                    by: None,
                },
            )?;
            if !resp.records().is_empty() {
                return Err(Error::DuplicateViolation {
                    record: record.to_owned(),
                    items: vec![key_attr(record).to_owned()],
                });
            }
        }

        // Assemble the kernel record: FILE, key, UWA data items and the
        // initial set links per insertion mode.
        let mut rec = Record::new();
        rec.set(FILE_ATTR, Value::str(record));
        rec.set(key_attr(record).to_owned(), Value::Int(key));
        for attr in &rt.attrs {
            let v = ru.uwa.get(record, &attr.name);
            if !v.is_null() {
                rec.set(attr.name.clone(), coerce(&rt, &attr.name, v)?);
            }
        }
        for s in self.schema.sets_with_member(record) {
            let link = match (&s.insertion, &s.owner, &s.origin) {
                (Insertion::Automatic, Owner::System, _) => Value::Int(SYSTEM_OWNER_KEY),
                (Insertion::Automatic, Owner::Record(_), SetOrigin::Isa { .. }) => Value::Int(key),
                (Insertion::Automatic, Owner::Record(_), _) => {
                    // Native automatic set: connect to the current
                    // occurrence (set selection is BY APPLICATION).
                    Value::Int(self.occurrence_owner(ru, s)?)
                }
                (Insertion::Manual, _, _) => Value::Null,
            };
            rec.set(s.name.clone(), link);
        }
        self.run(kernel, &mut out, Request::Insert { record: rec.clone() })?;
        out.affected = 1;
        out.stored_key = Some(key);
        self.establish_currency(ru, record, key, &rec);
        ru.invalidate_buffers_for(record, &self.schema);
        Ok(out)
    }

    /// Subtype record types that could conflict with `record` under the
    /// overlap rules: reachable through a shared ISA ancestor, excluding
    /// `record`'s own ancestors and descendants.
    fn overlap_siblings(&self, record: &str) -> Vec<String> {
        let ancestors = self.isa_ancestors(record);
        let descendants = self.isa_descendants(record);
        let mut family = std::collections::BTreeSet::new();
        for anc in &ancestors {
            for desc in self.isa_descendants(anc) {
                family.insert(desc);
            }
        }
        family
            .into_iter()
            .filter(|s| {
                s != record && !ancestors.contains(s) && !descendants.contains(s)
            })
            .collect()
    }

    fn isa_ancestors(&self, record: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut queue = vec![record.to_owned()];
        while let Some(next) = queue.pop() {
            for s in self.schema.sets_with_member(&next) {
                if let SetOrigin::Isa { supertype, .. } = &s.origin {
                    if !out.contains(supertype) {
                        out.push(supertype.clone());
                        queue.push(supertype.clone());
                    }
                }
            }
        }
        out
    }

    fn isa_descendants(&self, record: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut queue = vec![record.to_owned()];
        while let Some(next) = queue.pop() {
            for s in self.schema.sets_with_owner(&next) {
                if let SetOrigin::Isa { subtype, .. } = &s.origin {
                    if !out.contains(subtype) {
                        out.push(subtype.clone());
                        queue.push(subtype.clone());
                    }
                }
            }
        }
        out
    }

    // ----- CONNECT (§VI.D) ---------------------------------------------------

    fn connect<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        record: &str,
        sets: &[String],
    ) -> Result<StepOutput> {
        let key = self.run_unit_of(ru, record)?;
        let mut out = StepOutput::default();
        for set in sets {
            let s = self.schema.require_set(set)?.clone();
            if s.member != record {
                return Err(Error::NotMember { record: record.to_owned(), set: set.clone() });
            }
            // "Sets with an insertion clause of automatic cannot be
            // used in CONNECT statements" — this rejects ISA sets in
            // the functional target.
            if s.insertion != Insertion::Manual {
                return Err(Error::InsertionNotManual { set: set.clone() });
            }
            let owner = self.occurrence_owner(ru, &s)?;
            // "We will update all records whose database key is the
            // same as the database key of the current of the run-unit"
            // — the entity-key query reaches every repeated record.
            let resp = self.run(
                kernel,
                &mut out,
                Request::Update {
                    query: self.entity_query(record, key),
                    modifier: Modifier::new(set.clone(), Value::Int(owner)),
                },
            )?;
            out.affected += resp.affected;
            ru.cit.set_member(set, owner, record, key);
            ru.rb_set.remove(set);
        }
        Ok(out)
    }

    // ----- DISCONNECT (§VI.E) --------------------------------------------------

    fn disconnect<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        record: &str,
        sets: &[String],
    ) -> Result<StepOutput> {
        let key = self.run_unit_of(ru, record)?;
        let mut out = StepOutput::default();
        for set in sets {
            let s = self.schema.require_set(set)?.clone();
            if s.member != record {
                return Err(Error::NotMember { record: record.to_owned(), set: set.clone() });
            }
            if s.retention == Retention::Fixed {
                return Err(Error::RetentionFixed { set: set.clone() });
            }
            let resp = self.run(
                kernel,
                &mut out,
                Request::Update {
                    query: self.entity_query(record, key),
                    modifier: Modifier::new(set.clone(), Value::Null),
                },
            )?;
            out.affected += resp.affected;
            ru.cit.clear_set_member(set);
            ru.rb_set.remove(set);
        }
        Ok(out)
    }

    // ----- MODIFY (§VI.F) ---------------------------------------------------

    fn modify<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        record: &str,
        items: Option<&[String]>,
    ) -> Result<StepOutput> {
        let rt = self.schema.require_record(record)?.clone();
        let key = self.run_unit_of(ru, record)?;
        let mut out = StepOutput::default();
        let targets: Vec<(String, Value)> = match items {
            // MODIFY i1, …, in IN r — the listed items, verbatim from
            // the UWA (NULL permitted: it clears the value).
            Some(items) => {
                let mut t = Vec::with_capacity(items.len());
                for item in items {
                    rt.require_attr(item)?;
                    t.push((item.clone(), ru.uwa.get(record, item)));
                }
                t
            }
            // MODIFY r — every data item the user has supplied.
            None => rt
                .attrs
                .iter()
                .filter_map(|a| {
                    let v = ru.uwa.get(record, &a.name);
                    (!v.is_null()).then_some((a.name.clone(), v))
                })
                .collect(),
        };
        // "The above UPDATE request is repeated for each field of the
        // record that is to be modified."
        for (item, value) in targets {
            let value =
                if value.is_null() { Value::Null } else { coerce(&rt, &item, value)? };
            let resp = self.run(
                kernel,
                &mut out,
                Request::Update {
                    query: self.entity_query(record, key),
                    modifier: Modifier::new(item, value),
                },
            )?;
            out.affected = out.affected.max(resp.affected);
        }
        ru.invalidate_buffers_for(record, &self.schema);
        Ok(out)
    }

    // ----- ERASE (§VI.H) -----------------------------------------------------

    fn erase<K: Kernel>(
        &self,
        ru: &mut RunUnit,
        kernel: &mut K,
        record: &str,
        all: bool,
    ) -> Result<StepOutput> {
        if all && self.mode == TargetMode::AbFunctional {
            // "The constraints imposed by CODASYL-DML clash with those
            // imposed by Daplex … the statement is not translated."
            return Err(Error::EraseAllUnsupported);
        }
        let key = self.run_unit_of(ru, record)?;
        let mut out = StepOutput::default();
        if all {
            self.erase_cascade(kernel, &mut out, record, key, &mut Vec::new())?;
        } else {
            // Constraint auxiliary retrievals: the record may not own a
            // non-empty set occurrence. For functional targets this is
            // simultaneously the Daplex reference check (function sets
            // owned by the record hold the references to it) and the
            // hierarchy check (ISA sets owned by it hold its subtype
            // records).
            for s in self.schema.sets_with_owner(record) {
                let resp = self.run(
                    kernel,
                    &mut out,
                    Request::Retrieve {
                        query: Query::conjunction(vec![
                            Predicate::eq(FILE_ATTR, Value::str(s.member.clone())),
                            Predicate::eq(s.name.clone(), Value::Int(key)),
                        ]),
                        target: abdl::TargetList::attrs([s.name.clone()]),
                        by: None,
                    },
                )?;
                if !resp.records().is_empty() {
                    return Err(Error::EraseOwnerNotEmpty { set: s.name.clone() });
                }
            }
            let resp = self.run(
                kernel,
                &mut out,
                Request::Delete { query: self.entity_query(record, key) },
            )?;
            out.affected += resp.affected;
        }
        ru.cit.forget(record, key);
        ru.invalidate_buffers_for(record, &self.schema);
        Ok(out)
    }

    /// ERASE ALL cascade (network targets): delete the record and,
    /// recursively, every member of every set occurrence it owns.
    fn erase_cascade<K: Kernel>(
        &self,
        kernel: &mut K,
        out: &mut StepOutput,
        record: &str,
        key: i64,
        visiting: &mut Vec<(String, i64)>,
    ) -> Result<()> {
        if visiting.iter().any(|(r, k)| r == record && *k == key) {
            return Ok(()); // cycle guard
        }
        visiting.push((record.to_owned(), key));
        let owned: Vec<SetType> = self.schema.sets_with_owner(record).cloned().collect();
        for s in owned {
            let members = self.retrieve_occurrence(kernel, out, &s, key)?;
            for (mkey, _) in members {
                self.erase_cascade(kernel, out, &s.member, mkey, visiting)?;
            }
        }
        let resp =
            self.run(kernel, out, Request::Delete { query: self.entity_query(record, key) })?;
        out.affected += resp.affected;
        Ok(())
    }
}
