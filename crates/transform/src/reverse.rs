//! The reverse transformer: network → functional schemas.
//!
//! The thesis closes with the MMDS vision: "the goal of the Multi-Model
//! and Multi-Lingual Database System can be conceptualized by placing
//! schema transformers between all model/language pairs." This module
//! is the second transformer of that matrix: it derives a functional
//! schema from a network schema so that a *Daplex* user can access a
//! *network* database.
//!
//! The derivation is exact because of the member-side normalization
//! shared by both kernel layouts (DESIGN.md): a set's kernel attribute
//! `<set-name, owner-key>` on the member record is precisely the
//! representation of a single-valued function `set-name : member →
//! owner`. Concretely:
//!
//! * every record type becomes an entity type (or subtype, when the
//!   schema carries ISA provenance from the forward transformer);
//! * data items become scalar functions — carried `RANGE`/`VALUES`
//!   checks are reconstructed as ranged non-entity types and inline
//!   enumerations, and a cleared duplicate flag outside any uniqueness
//!   group marks a scalar multi-valued function;
//! * record-owned sets become functions: `Native` sets and
//!   `SingleValuedFn` provenance give single-valued functions on the
//!   member, `MultiValuedFn` gives `SET OF` functions on the owner,
//!   and `ManyToManyFn` pairs collapse their `LINK_X` record back into
//!   the original pair of `SET OF` functions;
//! * SYSTEM-owned sets vanish (every entity type implies one);
//! * `DUPLICATES ARE NOT ALLOWED` groups become UNIQUE constraints and
//!   the overlap table becomes OVERLAP constraints.
//!
//! For schemas produced by [`crate::transform`], the reverse is a true
//! inverse up to non-entity type naming: `transform(reverse(transform(F)))
//! == transform(F)` (property-tested).

use crate::transformer::TransformError;
use codasyl::schema::{NetAttrType, NetworkSchema, Owner, SetOrigin, ValueCheck};
use daplex::schema::{
    BaseKind, EntitySubtype, EntityType, FnRange, Function, FunctionalSchema, NonEntityClass,
    NonEntityType, OverlapConstraint, UniqueConstraint,
};
use std::collections::{BTreeMap, BTreeSet};

/// Derive a functional schema from a network schema.
pub fn reverse(net: &NetworkSchema) -> Result<FunctionalSchema, TransformError> {
    net.validate().map_err(|e| TransformError::InvalidFunctionalSchema(e.to_string()))?;

    let mut schema = FunctionalSchema::new(net.name.clone());

    // Link records of many-to-many pairs are absorbed back into their
    // function pairs; collect them first.
    let mut link_members: BTreeSet<&str> = BTreeSet::new();
    // link record → (function, domain) per side.
    let mut link_sides: BTreeMap<&str, Vec<(&str, &str)>> = BTreeMap::new();
    for s in &net.sets {
        if let SetOrigin::ManyToManyFn { function, domain, link } = &s.origin {
            link_members.insert(link.as_str());
            link_sides.entry(link.as_str()).or_default().push((function, domain));
        }
    }
    for (link, sides) in &link_sides {
        if sides.len() != 2 {
            return Err(TransformError::InvalidFunctionalSchema(format!(
                "link record `{link}` has {} many-to-many sides (expected 2)",
                sides.len()
            )));
        }
    }

    // ISA provenance: subtype → supertypes.
    let mut supertypes: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for s in &net.sets {
        if let SetOrigin::Isa { supertype, subtype } = &s.origin {
            supertypes.entry(subtype.as_str()).or_default().push(supertype.clone());
        }
    }

    // Functions per entity-like type, in a deterministic order.
    let mut functions: BTreeMap<&str, Vec<Function>> = BTreeMap::new();

    // Scalar functions from data items.
    for r in &net.records {
        if link_members.contains(r.name.as_str()) {
            continue;
        }
        let fns = functions.entry(r.name.as_str()).or_default();
        for a in &r.attrs {
            let set_valued =
                !a.dup_allowed && !r.unique_groups.iter().any(|g| g.contains(&a.name));
            let range = scalar_range(&a.typ, a.check.as_ref(), &r.name, &a.name, &mut schema);
            fns.push(Function { name: a.name.clone(), range, set_valued });
        }
    }

    // Entity-valued functions from sets.
    for s in &net.sets {
        match (&s.origin, &s.owner) {
            (_, Owner::System) | (SetOrigin::SystemOwned { .. }, _) => {}
            (SetOrigin::Isa { .. }, _) => {}
            (SetOrigin::SingleValuedFn { function, domain, range }, _) => {
                functions.entry(domain_key(net, domain)?).or_default().push(Function {
                    name: function.clone(),
                    range: FnRange::Entity(range.clone()),
                    set_valued: false,
                });
            }
            (SetOrigin::MultiValuedFn { function, domain, range }, _) => {
                functions.entry(domain_key(net, domain)?).or_default().push(Function {
                    name: function.clone(),
                    range: FnRange::Entity(range.clone()),
                    set_valued: true,
                });
            }
            (SetOrigin::ManyToManyFn { function, domain, link }, _) => {
                // The range is the *other* side's domain.
                let sides = &link_sides[link.as_str()];
                let (_, other_domain) = sides
                    .iter()
                    .find(|(f, _)| f != function)
                    .ok_or_else(|| {
                        TransformError::InvalidFunctionalSchema(format!(
                            "many-to-many pair of `{function}` not found on link `{link}`"
                        ))
                    })?;
                functions.entry(domain_key(net, domain)?).or_default().push(Function {
                    name: function.clone(),
                    range: FnRange::Entity((*other_domain).to_owned()),
                    set_valued: true,
                });
            }
            (SetOrigin::Native, Owner::Record(owner)) => {
                // A native 1:N set is exactly a single-valued function
                // from the member to the owner, named after the set.
                functions.entry(domain_key(net, &s.member)?).or_default().push(Function {
                    name: s.name.clone(),
                    range: FnRange::Entity(owner.clone()),
                    set_valued: false,
                });
            }
        }
    }

    // Assemble entities and subtypes in the network declaration order.
    for r in &net.records {
        if link_members.contains(r.name.as_str()) {
            continue;
        }
        let fns = functions.remove(r.name.as_str()).unwrap_or_default();
        match supertypes.remove(r.name.as_str()) {
            Some(sups) => schema.subtypes.push(EntitySubtype {
                name: r.name.clone(),
                supertypes: sups,
                functions: fns,
            }),
            None => {
                schema.entities.push(EntityType { name: r.name.clone(), functions: fns })
            }
        }
    }

    // Constraints.
    for r in &net.records {
        for group in &r.unique_groups {
            schema.uniques.push(UniqueConstraint {
                functions: group.clone(),
                within: r.name.clone(),
            });
        }
    }
    for o in &net.overlaps {
        schema
            .overlaps
            .push(OverlapConstraint { left: o.left.clone(), right: o.right.clone() });
    }

    schema.validate().map_err(|e| TransformError::InvalidResult(e.to_string()))?;
    Ok(schema)
}

/// Resolve a domain name to the record-key string slice owned by `net`
/// (ensuring the record exists).
fn domain_key<'a>(net: &'a NetworkSchema, name: &str) -> Result<&'a str, TransformError> {
    net.record(name)
        .map(|r| r.name.as_str())
        .ok_or_else(|| {
            TransformError::InvalidFunctionalSchema(format!("unknown record `{name}`"))
        })
}

/// Reconstruct a scalar function range from a network data item,
/// synthesizing a ranged non-entity type when a RANGE check is carried.
fn scalar_range(
    typ: &NetAttrType,
    check: Option<&ValueCheck>,
    record: &str,
    item: &str,
    schema: &mut FunctionalSchema,
) -> FnRange {
    match (typ, check) {
        (NetAttrType::Int, Some(ValueCheck::Range { lo, hi })) => {
            let name = format!("{record}_{item}_type");
            schema.non_entities.push(NonEntityType {
                name: name.clone(),
                class: NonEntityClass::Base,
                kind: BaseKind::Int,
                range: Some((*lo, *hi)),
                constant: false,
                value: None,
            });
            FnRange::NonEntity(name)
        }
        (NetAttrType::Int, _) => FnRange::Int,
        (NetAttrType::Float { .. }, _) => FnRange::Float,
        (NetAttrType::Char { .. }, Some(ValueCheck::OneOf { literals })) => {
            FnRange::Enum { literals: literals.clone() }
        }
        (NetAttrType::Char { len }, _) => FnRange::Str { len: *len },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform;
    use daplex::university;

    #[test]
    fn reverse_of_transformed_university_restores_the_structure() {
        let original = university::schema();
        let net = transform(&original).unwrap();
        let back = reverse(&net).unwrap();

        // Entities and subtypes survive (LINK_1 vanished).
        let entities: Vec<&str> = back.entities.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(entities, vec!["person", "employee", "department", "course"]);
        let subs: Vec<&str> = back.subtypes.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(subs, vec!["student", "faculty", "support_staff"]);
        assert_eq!(back.supertypes("student"), ["person".to_owned()]);

        // Entity-valued functions are reconstructed with the right
        // shape.
        let advisor = back.function("student", "advisor").unwrap();
        assert_eq!(advisor.range, FnRange::Entity("faculty".into()));
        assert!(!advisor.set_valued);
        let teaching = back.function("faculty", "teaching").unwrap();
        assert_eq!(teaching.range, FnRange::Entity("course".into()));
        assert!(teaching.set_valued);
        let taught_by = back.function("course", "taught_by").unwrap();
        assert_eq!(taught_by.range, FnRange::Entity("faculty".into()));
        assert!(taught_by.set_valued);

        // Scalar multi-valued reconstruction from the duplicate flag.
        let degrees = back.function("faculty", "degrees").unwrap();
        assert!(degrees.set_valued);
        assert_eq!(degrees.range, FnRange::Str { len: 10 });

        // Ranges and enumerations reconstructed.
        let age = back.function("person", "age").unwrap();
        let FnRange::NonEntity(t) = &age.range else { panic!("expected ranged type") };
        assert_eq!(back.non_entity(t).unwrap().range, Some((16, 99)));
        let rank = back.function("faculty", "rank").unwrap();
        assert_eq!(
            rank.range,
            FnRange::Enum {
                literals: vec![
                    "instructor".into(),
                    "assistant".into(),
                    "associate".into(),
                    "full".into()
                ]
            }
        );

        // Constraints.
        assert_eq!(back.uniques.len(), 1);
        assert_eq!(back.overlaps.len(), 1);
    }

    /// The fixed-point property: forward∘reverse∘forward = forward.
    #[test]
    fn forward_reverse_forward_is_a_fixed_point() {
        let original = university::schema();
        let once = transform(&original).unwrap();
        let back = reverse(&once).unwrap();
        let twice = transform(&back).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn native_network_schema_reverses_to_entities_with_set_functions() {
        let net = codasyl::ddl::parse_schema(
            "SCHEMA NAME IS company.
             RECORD NAME IS department.
               02 dname TYPE IS CHARACTER 20.
               DUPLICATES ARE NOT ALLOWED FOR dname.
             RECORD NAME IS employee.
               02 ename TYPE IS CHARACTER 20.
               02 grade TYPE IS FIXED RANGE 1..9.
             SET NAME IS system_department.
               OWNER IS SYSTEM.
               MEMBER IS department.
               INSERTION IS AUTOMATIC.
               RETENTION IS FIXED.
               SET SELECTION IS BY APPLICATION.
             SET NAME IS works_in.
               OWNER IS department.
               MEMBER IS employee.
               INSERTION IS MANUAL.
               RETENTION IS OPTIONAL.
               SET SELECTION IS BY APPLICATION.",
        )
        .unwrap();
        let back = reverse(&net).unwrap();
        assert_eq!(back.entities.len(), 2);
        assert!(back.subtypes.is_empty());
        // works_in became a single-valued function employee → department.
        let f = back.function("employee", "works_in").unwrap();
        assert_eq!(f.range, FnRange::Entity("department".into()));
        assert!(!f.set_valued);
        // The RANGE check became a ranged non-entity type.
        let grade = back.function("employee", "grade").unwrap();
        let FnRange::NonEntity(t) = &grade.range else { panic!("expected ranged type") };
        assert_eq!(back.non_entity(t).unwrap().range, Some((1, 9)));
        // The uniqueness group carried over.
        assert_eq!(back.uniques[0].within, "department");
    }
}
