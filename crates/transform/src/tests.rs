//! Unit tests: the Chapter-V transformation rules, construct by
//! construct, culminating in the full Figure-5.1 University schema.

use crate::{transform, TransformError};
use codasyl::schema::{Insertion, NetAttrType, Owner, Retention, Selection, SetOrigin};
use daplex::ddl::parse_schema;
use daplex::university;

#[test]
fn entity_type_becomes_record_plus_system_set() {
    let s = parse_schema(
        "DATABASE t IS TYPE course IS ENTITY title : STRING(30); credits : INTEGER; END ENTITY; END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    let rec = net.record("course").unwrap();
    assert_eq!(rec.attrs.len(), 2);
    assert_eq!(rec.attrs[0].typ, NetAttrType::Char { len: 30 });
    assert_eq!(rec.attrs[1].typ, NetAttrType::Int);
    let sys = net.set("system_course").unwrap();
    assert_eq!(sys.owner, Owner::System);
    assert_eq!(sys.member, "course");
    assert_eq!(sys.insertion, Insertion::Automatic);
    assert_eq!(sys.retention, Retention::Fixed);
    assert_eq!(sys.selection, Selection::Application);
    assert_eq!(sys.origin, SetOrigin::SystemOwned { entity: "course".into() });
}

#[test]
fn subtype_becomes_record_plus_isa_set() {
    let s = parse_schema(
        "DATABASE t IS
         TYPE person IS ENTITY name : STRING(30); END ENTITY;
         TYPE student IS ENTITY SUBTYPE OF person major : STRING(20); END ENTITY;
         END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    assert!(net.record("student").is_some());
    let isa = net.set("person_student").unwrap();
    assert_eq!(isa.owner, Owner::Record("person".into()));
    assert_eq!(isa.member, "student");
    assert_eq!(isa.insertion, Insertion::Automatic, "ISA members are inserted automatically");
    assert_eq!(isa.retention, Retention::Fixed, "a subtype never changes supertype");
    assert_eq!(
        isa.origin,
        SetOrigin::Isa { supertype: "person".into(), subtype: "student".into() }
    );
    // Subtypes get no SYSTEM set of their own.
    assert!(net.set("system_student").is_none());
}

#[test]
fn multiple_supertypes_give_multiple_isa_sets() {
    let s = parse_schema(
        "DATABASE t IS
         TYPE person IS ENTITY name : STRING(30); END ENTITY;
         TYPE employee IS ENTITY salary : FLOAT; END ENTITY;
         TYPE ta IS ENTITY SUBTYPE OF person, employee hours : INTEGER; END ENTITY;
         END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    assert!(net.set("person_ta").is_some());
    assert!(net.set("employee_ta").is_some());
}

#[test]
fn non_entity_types_map_per_section_v_c() {
    let s = parse_schema(
        "DATABASE t IS
         TYPE rank_type IS ENUMERATION (instructor, assistant, associate, full);
         TYPE age_type IS INTEGER RANGE 16..99;
         TYPE e IS ENTITY
           r : rank_type;
           a : age_type;
           g : FLOAT;
           b : BOOLEAN;
         END ENTITY;
         END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    let rec = net.record("e").unwrap();
    // Enumeration → CHARACTER of the longest literal ("instructor" = 10).
    assert_eq!(rec.attr("r").unwrap().typ, NetAttrType::Char { len: 10 });
    assert_eq!(rec.attr("a").unwrap().typ, NetAttrType::Int);
    assert_eq!(rec.attr("g").unwrap().typ, NetAttrType::Float { dec: 2 });
    // Boolean is an enumeration of true/false → CHARACTER 5.
    assert_eq!(rec.attr("b").unwrap().typ, NetAttrType::Char { len: 5 });
}

#[test]
fn scalar_multi_valued_function_clears_dup_flag() {
    let s = parse_schema(
        "DATABASE t IS TYPE e IS ENTITY tags : SET OF STRING(10); END ENTITY; END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    let attr = net.record("e").unwrap().attr("tags").unwrap();
    assert!(!attr.dup_allowed, "scalar multi-valued attributes cannot have duplicates");
}

#[test]
fn single_valued_function_owner_is_range_member_is_domain() {
    let s = parse_schema(
        "DATABASE t IS
         TYPE faculty IS ENTITY fname : STRING(30); END ENTITY;
         TYPE student IS ENTITY advisor : faculty; END ENTITY;
         END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    let advisor = net.set("advisor").unwrap();
    assert_eq!(advisor.owner, Owner::Record("faculty".into()), "owner is the range");
    assert_eq!(advisor.member, "student", "member is the domain");
    assert_eq!(advisor.insertion, Insertion::Manual);
    assert_eq!(advisor.retention, Retention::Optional);
    assert_eq!(
        advisor.origin,
        SetOrigin::SingleValuedFn {
            function: "advisor".into(),
            domain: "student".into(),
            range: "faculty".into()
        }
    );
}

#[test]
fn one_to_many_function_owner_is_domain_member_is_range() {
    let s = parse_schema(
        "DATABASE t IS
         TYPE order_line IS ENTITY qty : INTEGER; END ENTITY;
         TYPE order IS ENTITY lines : SET OF order_line; END ENTITY;
         END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    let lines = net.set("lines").unwrap();
    assert_eq!(lines.owner, Owner::Record("order".into()), "owner is the domain");
    assert_eq!(lines.member, "order_line", "member is the range");
    assert_eq!(
        lines.origin,
        SetOrigin::MultiValuedFn {
            function: "lines".into(),
            domain: "order".into(),
            range: "order_line".into()
        }
    );
}

#[test]
fn many_to_many_pair_synthesizes_link_record_and_two_sets() {
    let s = parse_schema(
        "DATABASE t IS
         TYPE faculty IS ENTITY teaching : SET OF course; END ENTITY;
         TYPE course IS ENTITY taught_by : SET OF faculty; END ENTITY;
         END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    let link = net.record("LINK_1").unwrap();
    assert!(link.attrs.is_empty(), "link records carry no data items");
    let teaching = net.set("teaching").unwrap();
    assert_eq!(teaching.owner, Owner::Record("faculty".into()));
    assert_eq!(teaching.member, "LINK_1");
    let taught_by = net.set("taught_by").unwrap();
    assert_eq!(taught_by.owner, Owner::Record("course".into()));
    assert_eq!(taught_by.member, "LINK_1");
}

#[test]
fn uniqueness_constraint_maps_to_duplicates_not_allowed() {
    let s = parse_schema(
        "DATABASE t IS
         TYPE course IS ENTITY title : STRING(30); semester : STRING(10); END ENTITY;
         UNIQUE title, semester WITHIN course;
         END DATABASE;",
    )
    .unwrap();
    let net = transform(&s).unwrap();
    let rec = net.record("course").unwrap();
    assert!(!rec.attr("title").unwrap().dup_allowed);
    assert!(!rec.attr("semester").unwrap().dup_allowed);
    assert_eq!(rec.unique_groups, vec![vec!["title".to_owned(), "semester".to_owned()]]);
}

#[test]
fn overlap_constraints_populate_overlap_table() {
    let net = transform(&university::schema()).unwrap();
    assert_eq!(net.overlaps.len(), 1);
    assert!(net.overlaps[0].allows("faculty", "support_staff"));
    assert!(!net.overlaps[0].allows("faculty", "student"));
}

#[test]
fn university_schema_matches_figure_5_1() {
    let net = transform(&university::schema()).unwrap();

    // Eight record types incl. LINK_1.
    let mut records: Vec<&str> = net.records.iter().map(|r| r.name.as_str()).collect();
    records.sort_unstable();
    assert_eq!(
        records,
        vec![
            "LINK_1",
            "course",
            "department",
            "employee",
            "faculty",
            "person",
            "student",
            "support_staff"
        ]
    );

    // The sets of Figure 5.1.
    let mut sets: Vec<&str> = net.sets.iter().map(|s| s.name.as_str()).collect();
    sets.sort_unstable();
    assert_eq!(
        sets,
        vec![
            "advisor",
            "dept",
            "employee_faculty",
            "employee_support_staff",
            "person_student",
            "supervisor",
            "system_course",
            "system_department",
            "system_employee",
            "system_person",
            "taught_by",
            "teaching",
        ]
    );

    // Spot-check the modes quoted in Figure 5.1.
    let supervisor = net.set("supervisor").unwrap();
    assert_eq!(supervisor.owner, Owner::Record("employee".into()));
    assert_eq!(supervisor.member, "support_staff");
    assert_eq!(supervisor.insertion, Insertion::Manual);
    assert_eq!(supervisor.retention, Retention::Optional);

    let ess = net.set("employee_support_staff").unwrap();
    assert_eq!(ess.insertion, Insertion::Automatic);
    assert_eq!(ess.retention, Retention::Fixed);

    let dept = net.set("dept").unwrap();
    assert_eq!(dept.owner, Owner::Record("department".into()));
    assert_eq!(dept.member, "faculty");

    let advisor = net.set("advisor").unwrap();
    assert_eq!(advisor.owner, Owner::Record("faculty".into()));
    assert_eq!(advisor.member, "student");

    // Uniqueness of title, semester → DUPLICATES ARE NOT ALLOWED.
    let course = net.record("course").unwrap();
    assert_eq!(course.unique_groups, vec![vec!["title".to_owned(), "semester".to_owned()]]);

    // Every set selection is BY APPLICATION.
    assert!(net.sets.iter().all(|s| s.selection == Selection::Application));

    // The schema is flagged as transformed.
    assert!(net.is_transformed());
}

#[test]
fn transformed_schema_prints_as_ddl_and_reparses() {
    let mut net = transform(&university::schema()).unwrap();
    let ddl = codasyl::ddl::print_schema(&net);
    let reparsed = codasyl::ddl::parse_schema(&ddl).unwrap();
    // Origins are not expressible in DDL, and the scalar-multi-valued
    // duplicate flag (an intra-entity constraint, not a uniqueness
    // group) is not printable either — normalize it before comparing.
    for r in &mut net.records {
        let groups = r.unique_groups.clone();
        for a in &mut r.attrs {
            if !groups.iter().any(|g| g.contains(&a.name)) {
                a.dup_allowed = true;
            }
        }
    }
    assert_eq!(net.records, reparsed.records);
    assert_eq!(net.sets.len(), reparsed.sets.len());
    for (a, b) in net.sets.iter().zip(&reparsed.sets) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.owner, b.owner);
        assert_eq!(a.member, b.member);
        assert_eq!(a.insertion, b.insertion);
        assert_eq!(a.retention, b.retention);
    }
}

#[test]
fn function_named_after_its_own_entity_is_rejected() {
    // A single-valued function `a` on entity `a` would make the member
    // file carry a set attribute colliding with the kernel key
    // attribute `<a, key>`.
    let s = parse_schema(
        "DATABASE t IS
         TYPE b IS ENTITY x : INTEGER; END ENTITY;
         TYPE a IS ENTITY a : b; END ENTITY;
         END DATABASE;",
    );
    match s {
        Err(_) => {}
        Ok(s) => {
            assert!(matches!(transform(&s), Err(TransformError::InvalidResult(_))));
        }
    }
}

#[test]
fn function_ranging_over_another_entity_may_share_its_name() {
    // `b : b` is fine: the set attribute `b` lives in file `a`, whose
    // key attribute is `a` — no kernel collision.
    let s = parse_schema(
        "DATABASE t IS
         TYPE b IS ENTITY x : INTEGER; END ENTITY;
         TYPE a IS ENTITY b : b; END ENTITY;
         END DATABASE;",
    )
    .unwrap();
    transform(&s).unwrap();
}
