//! The Zawis edge of the MMDS matrix: a relational (SQL) view of a
//! hierarchical database.
//!
//! The thesis's conclusion reports this as the laboratory's concurrent
//! work: "Zawis \[Ref 24\] … implements a means for accessing a
//! hierarchical database via SQL transactions." The derivation here is
//! read-only and direct:
//!
//! * every segment type becomes a table with its fields as columns;
//! * a synthetic `{segment}_key` column exposes the kernel key
//!   attribute (aliased through [`relational::Column::kernel_attr`],
//!   since a column literally named after the table would collide with
//!   the row-key convention);
//! * every parent arc surfaces as an INTEGER column named
//!   `{parent}_{child}` — exactly the kernel attribute the DL/I
//!   interface maintains — so parent-child traversal is a SQL equi-join:
//!
//! ```sql
//! SELECT d.dname, c.title
//! FROM department d, course c
//! WHERE c.department_course = d.department_key;
//! ```
//!
//! The view is marked read-only: hierarchy maintenance (ISRT/REPL/DLET
//! with positional semantics and sequence-field checks) stays with
//! DL/I, and the SQL translator rejects mutations against it.

use crate::transformer::TransformError;
use dli::schema::{arc_attr, FieldType, HierSchema};
use relational::{ColType, Column, RelSchema, Table};

/// Derive the read-only relational view of a hierarchical schema.
pub fn relational_view(hier: &HierSchema) -> Result<RelSchema, TransformError> {
    hier.validate().map_err(|e| TransformError::InvalidFunctionalSchema(e.to_string()))?;
    let mut schema = RelSchema { name: hier.name.clone(), tables: Vec::new(), read_only: true };
    for seg in &hier.segments {
        let mut table = Table { name: seg.name.clone(), columns: Vec::new(), primary_key: Vec::new() };
        // The synthetic key column, aliased onto the kernel key attr.
        table.columns.push(Column {
            name: format!("{}_key", seg.name),
            typ: ColType::Int,
            not_null: true,
            kernel_attr: Some(seg.name.clone()),
        });
        for f in &seg.fields {
            table.columns.push(Column::new(f.name.clone(), col_type(&f.typ)));
        }
        if let Some(parent) = &seg.parent {
            table.columns.push(Column::new(arc_attr(parent, &seg.name), ColType::Int));
        }
        schema.tables.push(table);
    }
    schema.validate().map_err(|e| TransformError::InvalidResult(e.to_string()))?;
    Ok(schema)
}

fn col_type(t: &FieldType) -> ColType {
    match t {
        FieldType::Int => ColType::Int,
        FieldType::Float => ColType::Float,
        FieldType::Char { len } => ColType::Char { len: *len },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::Store;
    use relational::SqlTranslator;

    fn school() -> (HierSchema, Store, dli::DliSession) {
        let schema = dli::ddl::parse_schema(
            "HIERARCHY NAME IS school.
             SEGMENT department.
               02 dno TYPE IS FIXED.
               02 dname TYPE IS CHARACTER 20.
               SEQUENCE IS dno.
             SEGMENT course PARENT IS department.
               02 cno TYPE IS FIXED.
               02 title TYPE IS CHARACTER 30.",
        )
        .unwrap();
        let mut store = Store::new();
        dli::ab_map::install(&schema, &mut store);
        let mut session = dli::DliSession::new(schema.clone());
        for call in dli::calls::parse_calls(
            "ISRT department (dno = 1, dname = 'CS')
             ISRT course (cno = 10, title = 'Databases')
             ISRT course (cno = 20, title = 'Compilers')
             ISRT department (dno = 2, dname = 'Math')
             ISRT course (cno = 30, title = 'Algebra')",
        )
        .unwrap()
        {
            session.execute(&mut store, &call).unwrap();
        }
        (schema, store, session)
    }

    #[test]
    fn view_shape() {
        let (hier, _, _) = school();
        let view = relational_view(&hier).unwrap();
        assert!(view.read_only);
        let course = view.table("course").unwrap();
        let names: Vec<&str> = course.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["course_key", "cno", "title", "department_course"]);
        assert_eq!(course.column("course_key").unwrap().kernel_attr(), "course");
    }

    #[test]
    fn sql_joins_parent_and_child_segments() {
        let (hier, mut store, _) = school();
        let sql = SqlTranslator::new(relational_view(&hier).unwrap());
        let stmt = relational::dml::parse_statement_str(
            "SELECT d.dname, c.title FROM department d, course c \
             WHERE c.department_course = d.department_key AND d.dname = 'CS' \
             ORDER BY title;",
        )
        .unwrap();
        let rs = sql.execute(&mut store, &stmt).unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], abdl::Value::str("Compilers"));
        assert_eq!(rs.rows[1][1], abdl::Value::str("Databases"));
    }

    #[test]
    fn sql_filters_and_aggregates_over_segments() {
        let (hier, mut store, _) = school();
        let sql = SqlTranslator::new(relational_view(&hier).unwrap());
        let stmt = relational::dml::parse_statement_str(
            "SELECT COUNT(course_key) FROM course;",
        )
        .unwrap();
        let rs = sql.execute(&mut store, &stmt).unwrap();
        assert_eq!(rs.rows[0][0], abdl::Value::Int(3));
    }

    #[test]
    fn mutations_are_rejected_on_the_view() {
        let (hier, mut store, _) = school();
        let sql = SqlTranslator::new(relational_view(&hier).unwrap());
        for text in [
            "INSERT INTO course (cno, title) VALUES (99, 'X');",
            "UPDATE course SET title = 'X' WHERE cno = 10;",
            "DELETE FROM course;",
        ] {
            let stmt = relational::dml::parse_statement_str(text).unwrap();
            let err = sql.execute(&mut store, &stmt).unwrap_err();
            assert!(err.to_string().contains("read-only"), "{text}: {err}");
        }
        // The data is untouched.
        assert_eq!(store.file_len("course"), 3);
    }

    #[test]
    fn dli_mutations_are_immediately_visible_to_sql() {
        let (hier, mut store, mut session) = school();
        let sql = SqlTranslator::new(relational_view(&hier).unwrap());
        for call in dli::calls::parse_calls(
            "GU department (dno = 2)\nISRT course (cno = 40, title = 'Topology')",
        )
        .unwrap()
        {
            session.execute(&mut store, &call).unwrap();
        }
        let stmt = relational::dml::parse_statement_str(
            "SELECT title FROM course WHERE cno = 40;",
        )
        .unwrap();
        let rs = sql.execute(&mut store, &stmt).unwrap();
        assert_eq!(rs.rows[0][0], abdl::Value::str("Topology"));
    }
}
