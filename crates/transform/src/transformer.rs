//! The transformation algorithms of Chapter V.

use codasyl::schema::{
    AttrType, Insertion, NetAttrType, NetworkSchema, OverlapGroup, Owner, RecordType, Retention,
    Selection, SetOrigin, SetType,
};
use daplex::names;
use daplex::schema::{BaseKind, FunctionalSchema};
use std::fmt;

/// Errors raised by the schema transformer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The input schema failed validation.
    InvalidFunctionalSchema(String),
    /// The produced network schema failed validation (transformer bug
    /// surface — e.g. a name collision between a function-set and a
    /// record).
    InvalidResult(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::InvalidFunctionalSchema(m) => {
                write!(f, "invalid functional schema: {m}")
            }
            TransformError::InvalidResult(m) => {
                write!(f, "transformation produced an invalid network schema: {m}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Transform a functional schema into its network representation.
///
/// The result preserves the functional database's constraints: ISA sets
/// are AUTOMATIC/FIXED (members can never change owners), function sets
/// are MANUAL/OPTIONAL (members may be disconnected, connected or
/// reconnected), set selection is always BY APPLICATION, scalar
/// multi-valued functions and UNIQUE constraints clear the duplicate
/// flags, and OVERLAP constraints are carried into the overlap table.
pub fn transform(schema: &FunctionalSchema) -> Result<NetworkSchema, TransformError> {
    schema
        .validate()
        .map_err(|e| TransformError::InvalidFunctionalSchema(e.to_string()))?;

    let mut net = NetworkSchema::new(schema.name.clone());

    // --- Record types from entity types and subtypes (§V.A, §V.B) ---
    for name in schema.entity_like_names() {
        let mut record = RecordType::new(name);
        for f in schema.own_functions(name) {
            if schema.is_entity_valued(f) {
                continue; // becomes a set (or a LINK record), below
            }
            let kind = schema.scalar_kind(f).ok_or_else(|| {
                TransformError::InvalidFunctionalSchema(format!(
                    "function `{}` of `{name}` has unresolvable scalar type",
                    f.name
                ))
            })?;
            let mut attr = AttrType::new(f.name.clone(), net_type(&kind));
            // "Only one occurrence of the single multi-valued function
            // may be stored in the record, therefore the nan_dup_flag …
            // is not set, indicating that the attribute cannot have
            // duplicates."
            if f.set_valued {
                attr.dup_allowed = false;
            }
            // §V.C: "maintain the integrity constraints of the
            // non-entity types" — ranges and enumerations become
            // check clauses the kernel mapping enforces.
            attr.check = value_check(schema, f, &kind);
            record.attrs.push(attr);
        }
        net.records.push(record);
    }

    // --- SYSTEM sets for entity types (§V.A) --------------------------
    for e in &schema.entities {
        net.sets.push(SetType {
            name: names::system_set(&e.name),
            owner: Owner::System,
            member: e.name.clone(),
            insertion: Insertion::Automatic,
            retention: Retention::Fixed,
            selection: Selection::Application,
            origin: SetOrigin::SystemOwned { entity: e.name.clone() },
        });
    }

    // --- ISA sets for subtypes (§V.B) ---------------------------------
    for sub in &schema.subtypes {
        for sup in &sub.supertypes {
            net.sets.push(SetType {
                name: names::isa_set(sup, &sub.name),
                owner: Owner::Record(sup.clone()),
                member: sub.name.clone(),
                insertion: Insertion::Automatic,
                retention: Retention::Fixed,
                selection: Selection::Application,
                origin: SetOrigin::Isa { supertype: sup.clone(), subtype: sub.name.clone() },
            });
        }
    }

    // --- Function sets (§V.A item 4, §V.F) -----------------------------
    let pairs = schema.m2m_pairs();
    for name in schema.entity_like_names() {
        for f in schema.own_functions(name) {
            let Some(range) = schema.entity_range(f) else { continue };
            if !f.set_valued {
                // Single-valued: "the owner and the ancestor of the set
                // type is the record type declared for the range entity
                // type, and the set member is the record type declared
                // for the domain entity type."
                net.sets.push(SetType {
                    name: f.name.clone(),
                    owner: Owner::Record(range.to_owned()),
                    member: name.to_owned(),
                    insertion: Insertion::Manual,
                    retention: Retention::Optional,
                    selection: Selection::Application,
                    origin: SetOrigin::SingleValuedFn {
                        function: f.name.clone(),
                        domain: name.to_owned(),
                        range: range.to_owned(),
                    },
                });
                continue;
            }
            if let Some(pair) = pairs.iter().find(|p| {
                (p.left_entity == name && p.left_function == f.name)
                    || (p.right_entity == name && p.right_function == f.name)
            }) {
                // Many-to-many: the LINK record and this side's set.
                if net.record(&pair.link).is_none() {
                    net.records.push(RecordType::new(pair.link.clone()));
                }
                net.sets.push(SetType {
                    name: f.name.clone(),
                    owner: Owner::Record(name.to_owned()),
                    member: pair.link.clone(),
                    insertion: Insertion::Manual,
                    retention: Retention::Optional,
                    selection: Selection::Application,
                    origin: SetOrigin::ManyToManyFn {
                        function: f.name.clone(),
                        domain: name.to_owned(),
                        link: pair.link.clone(),
                    },
                });
            } else {
                // One-to-many: "a set type is defined with the record
                // type of the domain entity as the set owner, and its
                // range entity record type as the set member."
                net.sets.push(SetType {
                    name: f.name.clone(),
                    owner: Owner::Record(name.to_owned()),
                    member: range.to_owned(),
                    insertion: Insertion::Manual,
                    retention: Retention::Optional,
                    selection: Selection::Application,
                    origin: SetOrigin::MultiValuedFn {
                        function: f.name.clone(),
                        domain: name.to_owned(),
                        range: range.to_owned(),
                    },
                });
            }
        }
    }

    // --- Uniqueness constraints (§V.D) ---------------------------------
    for u in &schema.uniques {
        let record = net.record_mut(&u.within).ok_or_else(|| {
            TransformError::InvalidFunctionalSchema(format!(
                "UNIQUE WITHIN unknown type `{}`",
                u.within
            ))
        })?;
        for fname in &u.functions {
            if let Some(attr) = record.attrs.iter_mut().find(|a| &a.name == fname) {
                attr.dup_allowed = false;
            }
        }
        record.unique_groups.push(u.functions.clone());
    }

    // --- Overlap constraints (§V.E) -------------------------------------
    for o in &schema.overlaps {
        net.overlaps.push(OverlapGroup { left: o.left.clone(), right: o.right.clone() });
    }

    net.validate().map_err(|e| TransformError::InvalidResult(e.to_string()))?;
    Ok(net)
}

/// Derive the carried-over integrity check of a scalar function:
/// integer ranges come from named non-entity types, enumerations (and
/// booleans) from the resolved kind.
fn value_check(
    schema: &FunctionalSchema,
    f: &daplex::schema::Function,
    kind: &BaseKind,
) -> Option<codasyl::schema::ValueCheck> {
    use codasyl::schema::ValueCheck;
    match kind {
        BaseKind::Enum { literals } => Some(ValueCheck::OneOf { literals: literals.clone() }),
        BaseKind::Bool => {
            Some(ValueCheck::OneOf { literals: vec!["true".into(), "false".into()] })
        }
        BaseKind::Int => {
            if let daplex::schema::FnRange::NonEntity(t) = &f.range {
                let (lo, hi) = schema.non_entity(t)?.range?;
                Some(ValueCheck::Range { lo, hi })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// §V.C: map a resolved scalar kind onto a network data type.
fn net_type(kind: &BaseKind) -> NetAttrType {
    match kind {
        BaseKind::Str { len } => NetAttrType::Char { len: *len },
        BaseKind::Int => NetAttrType::Int,
        BaseKind::Float => NetAttrType::Float { dec: 2 },
        // "Daplex enumeration types are mapped into network characters
        // with the length … set equal to the length of the longest of
        // the enumeration types." Booleans are enumerations.
        BaseKind::Bool | BaseKind::Enum { .. } => NetAttrType::Char { len: kind.max_length() },
    }
}

