#![warn(missing_docs)]

//! # The functional→network schema transformer (Chapter V)
//!
//! "When an existing database … is found to be an existing functional
//! database, a mapping process is initiated in order to transform the
//! functional schema into a network schema. This transformed database is
//! actually a network representation of the functional database which
//! maintains the characteristics of the functional database while
//! preserving its constraints."
//!
//! Six constructs are transformed (§V):
//!
//! 1. **Entity types** → record types, each a member of a SYSTEM-owned
//!    set (AUTOMATIC / FIXED / BY APPLICATION).
//! 2. **Entity subtypes** → record types plus an ISA set
//!    `{supertype}_{subtype}` per direct supertype (AUTOMATIC / FIXED).
//! 3. **Non-entity types** → network data types: strings→CHARACTER,
//!    integers→FIXED, floats→FLOAT, enumerations→CHARACTER of the
//!    longest literal.
//! 4. **Functions**: scalar → attributes; scalar multi-valued →
//!    attributes with `DUPLICATES NOT ALLOWED` (`nan_dup_flag`
//!    cleared); single-valued → set named after the function, owner =
//!    range record, member = domain record (MANUAL / OPTIONAL);
//!    multi-valued one-to-many → set with domain as owner, range as
//!    member; multi-valued many-to-many → a `LINK_X` record plus two
//!    sets, one per side.
//! 5. **Uniqueness constraints** → `DUPLICATES ARE NOT ALLOWED FOR …`
//!    on the transformed record type.
//! 6. **Overlap constraints** → the overlap table carried on the
//!    network schema and consulted by the STORE translation.
//!
//! Every synthesized set records its provenance ([`codasyl::SetOrigin`])
//! so the CODASYL-DML→ABDL translator can apply the Chapter-VI rules
//! that differ between ISA sets and Daplex-function sets.

//! ## Example
//!
//! ```
//! let functional = daplex::university::schema();
//! let network = transform::transform(&functional).unwrap();
//! assert!(network.record("LINK_1").is_some());
//! // The reverse transformer is an inverse up to type naming:
//! let back = transform::reverse(&network).unwrap();
//! assert_eq!(transform::transform(&back).unwrap(), network);
//! ```

mod hier_view;
mod reverse;
mod transformer;

pub use hier_view::relational_view;
pub use reverse::reverse;
pub use transformer::{transform, TransformError};

#[cfg(test)]
mod tests;
