//! Tokenizer shared by the Daplex DDL and DML parsers.

use crate::error::{Error, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A word: keyword or name.
    Word(String),
    /// A quoted string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `..` (range constructor)
    DotDot,
    /// `=`
    Eq,
    /// `!=` (also `<>`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// A token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Tokenize a complete source text.
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos + 1 < bytes.len() && bytes[pos] == b'-' && bytes[pos + 1] == b'-' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let offset = pos;
        if pos >= bytes.len() {
            out.push(SpannedTok { tok: Tok::Eof, offset });
            return Ok(out);
        }
        let c = bytes[pos];
        let tok = match c {
            b':' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            b';' => {
                pos += 1;
                Tok::Semi
            }
            b',' => {
                pos += 1;
                Tok::Comma
            }
            b'(' => {
                pos += 1;
                Tok::LParen
            }
            b')' => {
                pos += 1;
                Tok::RParen
            }
            b'=' => {
                pos += 1;
                Tok::Eq
            }
            b'!' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                    Tok::Ne
                } else {
                    return Err(Error::Parse { msg: "expected `=` after `!`".into(), offset });
                }
            }
            b'<' => {
                pos += 1;
                match bytes.get(pos) {
                    Some(b'=') => {
                        pos += 1;
                        Tok::Le
                    }
                    Some(b'>') => {
                        pos += 1;
                        Tok::Ne
                    }
                    _ => Tok::Lt,
                }
            }
            b'>' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'.' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'.') {
                    pos += 1;
                    Tok::DotDot
                } else {
                    return Err(Error::Parse {
                        msg: "stray `.` (Daplex uses `;` terminators)".into(),
                        offset,
                    });
                }
            }
            b'\'' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(Error::Parse {
                            msg: "unterminated string literal".into(),
                            offset,
                        });
                    }
                    if bytes[pos] == b'\'' {
                        if bytes.get(pos + 1) == Some(&b'\'') {
                            s.push('\'');
                            pos += 2;
                        } else {
                            pos += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[pos] as char);
                        pos += 1;
                    }
                }
                Tok::Str(s)
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let start = pos;
                if matches!(bytes[pos], b'-' | b'+') {
                    pos += 1;
                }
                if pos >= bytes.len() || !bytes[pos].is_ascii_digit() {
                    return Err(Error::Parse { msg: "expected digits".into(), offset });
                }
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                // `1..5` must lex as Int DotDot Int, so a float needs a
                // digit right after a single `.`.
                let mut is_float = false;
                if pos + 1 < bytes.len() && bytes[pos] == b'.' && bytes[pos + 1].is_ascii_digit() {
                    is_float = true;
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("ascii");
                if is_float {
                    Tok::Float(text.parse().map_err(|e| Error::Parse {
                        msg: format!("bad float: {e}"),
                        offset,
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|e| Error::Parse {
                        msg: format!("bad integer: {e}"),
                        offset,
                    })?)
                }
            }
            c if c == b'_' || (c as char).is_alphabetic() => {
                let start = pos;
                while pos < bytes.len() {
                    let c = bytes[pos];
                    if c == b'_' || (c as char).is_alphanumeric() {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                Tok::Word(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
            }
            other => {
                return Err(Error::Parse {
                    msg: format!("unexpected character `{}`", other as char),
                    offset,
                })
            }
        };
        out.push(SpannedTok { tok, offset });
    }
}

/// A token cursor with keyword helpers.
pub struct Cursor {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Cursor {
    /// Tokenize and wrap.
    pub fn new(src: &str) -> Result<Self> {
        Ok(Cursor { toks: tokenize(src)?, pos: 0 })
    }

    /// Current token.
    pub fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    /// Next token.
    pub fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    /// Offset of the current token.
    pub fn offset(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].offset
    }

    /// Advance, returning the consumed token.
    pub fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// At end of input?
    pub fn at_eof(&self) -> bool {
        *self.peek() == Tok::Eof
    }

    /// Parse error at the current token.
    pub fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse { msg: msg.into(), offset: self.offset() }
    }

    /// Is the current token this keyword?
    pub fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Require the keyword.
    pub fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    /// Require a name.
    pub fn name(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Word(w) => {
                self.bump();
                Ok(w)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Require a punctuation token.
    pub fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// Comma-separated names.
    pub fn name_list(&mut self, what: &str) -> Result<Vec<String>> {
        let mut names = vec![self.name(what)?];
        while *self.peek() == Tok::Comma {
            self.bump();
            names.push(self.name(what)?);
        }
        Ok(names)
    }

    /// Require an integer literal.
    pub fn int(&mut self, what: &str) -> Result<i64> {
        match *self.peek() {
            Tok::Int(i) => {
                self.bump();
                Ok(i)
            }
            _ => Err(self.err(format!("expected {what}, found {:?}", self.peek()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn ranges_lex_as_dotdot() {
        assert_eq!(
            toks("RANGE 16..99"),
            vec![Tok::Word("RANGE".into()), Tok::Int(16), Tok::DotDot, Tok::Int(99), Tok::Eof]
        );
    }

    #[test]
    fn floats_still_lex() {
        assert_eq!(toks("0.5..3.5"), vec![Tok::Float(0.5), Tok::DotDot, Tok::Float(3.5), Tok::Eof]);
    }

    #[test]
    fn assignment_and_colon() {
        assert_eq!(
            toks("major := 'CS' : x"),
            vec![
                Tok::Word("major".into()),
                Tok::Assign,
                Tok::Str("CS".into()),
                Tok::Colon,
                Tok::Word("x".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn relops_lex() {
        assert_eq!(
            toks("= != < <= > >= <>"),
            vec![Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Ne, Tok::Eof]
        );
    }

    #[test]
    fn stray_period_is_an_error() {
        assert!(tokenize("x.").is_err());
    }
}
