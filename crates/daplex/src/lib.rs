#![warn(missing_docs)]

//! # The functional data model and Daplex
//!
//! "The functional data model is primarily a logical database model that
//! provides a somewhat natural view of the real world based on entities
//! and relationships. … The fundamental data definition constructs of
//! Daplex are the entity and the function, with the function mapping a
//! given entity into a set of target entities."
//!
//! This crate provides:
//!
//! * [`schema`] — entity types, entity subtypes (ISA with multiple
//!   supertypes and value inheritance), non-entity types (base, subtype
//!   and derived scalars, enumerations, constants), functions
//!   (scalar / scalar multi-valued / single-valued / multi-valued),
//!   uniqueness constraints and overlap constraints — the Rust
//!   rendition of the `fun_dbid_node` family of Chapter IV;
//! * [`ddl`] — a parser and canonical printer for the Daplex DDL
//!   (`TYPE … IS ENTITY …`, `SUBTYPE OF`, `UNIQUE … WITHIN`,
//!   `OVERLAP … WITH`);
//! * [`university`] — the University database schema of Figure 2.1 (the
//!   running example of the thesis), as DDL text, parsed schema, and a
//!   sample data population;
//! * [`ab_map`] — the functional→ABDM mapping producing the
//!   `AB(functional)` kernel layout of Figure 3.3: one kernel file per
//!   entity type and subtype, artificial unique-key attributes, function
//!   attributes (with the member-side normalization described in
//!   DESIGN.md), `LINK_X` pair files for many-to-many functions;
//! * [`dml`] — a Daplex DML subset (`FOR EACH`, `CREATE`, `DESTROY`,
//!   `ASSIGN`, `INCLUDE`, `EXCLUDE`) translated to ABDL — the MLDS
//!   functional language interface that the thesis's work extends.

//! ## Example
//!
//! ```
//! // Parse the University schema of Figure 2.1 and inspect it.
//! let schema = daplex::university::schema();
//! assert!(schema.function("student", "name").is_some(), "inherited from person");
//! assert_eq!(schema.m2m_pairs()[0].link, "LINK_1");
//! ```

pub mod ab_map;
pub mod ddl;
pub mod dml;
pub mod error;
pub mod lex;
pub mod names;
pub mod schema;
pub mod university;

pub use error::{Error, Result};
pub use schema::{
    BaseKind, EntitySubtype, EntityType, FnRange, Function, FunctionalSchema, NonEntityClass,
    NonEntityType, OverlapConstraint, UniqueConstraint,
};
