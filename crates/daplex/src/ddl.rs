//! Daplex DDL: parser and canonical printer.
//!
//! The concrete syntax follows the entity/subtype declaration forms of
//! Figures 5.2 and 5.4 of the thesis:
//!
//! ```text
//! DATABASE university IS
//!
//! TYPE age_type IS INTEGER RANGE 16..99;
//! TYPE rank_type IS ENUMERATION (instructor, assistant, associate, full);
//! CONSTANT max_load IS 4;
//!
//! TYPE person IS
//!   ENTITY
//!     name : STRING(30);
//!     age  : age_type;
//!   END ENTITY;
//!
//! TYPE student IS
//!   ENTITY SUBTYPE OF person
//!     major   : STRING(20);
//!     advisor : faculty;
//!     courses : SET OF course;
//!   END ENTITY;
//!
//! UNIQUE title, semester WITHIN course;
//! OVERLAP faculty WITH support_staff;
//!
//! END DATABASE;
//! ```
//!
//! Type names used as function ranges may be declared later in the file
//! (forward references); the parser resolves them in a second pass.

use crate::error::{Error, Result};
use crate::lex::{Cursor, Tok};
use crate::schema::{
    BaseKind, EntitySubtype, EntityType, FnRange, Function, FunctionalSchema, NonEntityClass,
    NonEntityType, OverlapConstraint, UniqueConstraint,
};
use abdl::Value;
use std::fmt::Write as _;

/// Parse and validate a functional schema from Daplex DDL text.
pub fn parse_schema(src: &str) -> Result<FunctionalSchema> {
    let mut c = Cursor::new(src)?;
    let mut raw = RawSchema::default();

    c.expect_kw("DATABASE")?;
    raw.name = c.name("database name")?;
    c.expect_kw("IS")?;

    loop {
        if c.at_eof() {
            // A truncated schema (no END DATABASE) is rejected so that
            // cut-off DDL files fail loudly instead of loading empty.
            return Err(c.err("unexpected end of input: missing `END DATABASE;`"));
        }
        if c.at_kw("END") {
            c.bump();
            c.expect_kw("DATABASE")?;
            let _ = c.eat_semi();
            break;
        }
        if c.at_kw("TYPE") {
            parse_type(&mut c, &mut raw)?;
        } else if c.at_kw("CONSTANT") {
            parse_constant(&mut c, &mut raw)?;
        } else if c.at_kw("UNIQUE") {
            c.bump();
            let functions = c.name_list("function name")?;
            c.expect_kw("WITHIN")?;
            let within = c.name("entity type")?;
            c.expect_semi()?;
            raw.uniques.push(UniqueConstraint { functions, within });
        } else if c.at_kw("OVERLAP") {
            c.bump();
            let left = c.name_list("subtype name")?;
            c.expect_kw("WITH")?;
            let right = c.name_list("subtype name")?;
            c.expect_semi()?;
            raw.overlaps.push(OverlapConstraint { left, right });
        } else {
            return Err(c.err(format!(
                "expected TYPE, CONSTANT, UNIQUE, OVERLAP or END DATABASE, found {:?}",
                c.peek()
            )));
        }
    }

    let schema = raw.resolve()?;
    schema.validate()?;
    Ok(schema)
}

// Small Cursor extensions local to this parser.
trait CursorExt {
    fn eat_semi(&mut self) -> bool;
    fn expect_semi(&mut self) -> Result<()>;
}

impl CursorExt for Cursor {
    fn eat_semi(&mut self) -> bool {
        if *self.peek() == Tok::Semi {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_semi(&mut self) -> Result<()> {
        self.expect_tok(Tok::Semi, "`;`")
    }
}

/// Unresolved function range: named types may be forward references.
#[derive(Debug, Clone)]
enum RawRange {
    Inline(FnRange),
    Named(String),
}

#[derive(Debug, Clone)]
struct RawFunction {
    name: String,
    range: RawRange,
    set_valued: bool,
}

#[derive(Debug, Default)]
struct RawSchema {
    name: String,
    non_entities: Vec<NonEntityType>,
    entities: Vec<(String, Vec<RawFunction>)>,
    subtypes: Vec<(String, Vec<String>, Vec<RawFunction>)>,
    uniques: Vec<UniqueConstraint>,
    overlaps: Vec<OverlapConstraint>,
}

impl RawSchema {
    fn resolve(self) -> Result<FunctionalSchema> {
        let entity_names: Vec<String> = self
            .entities
            .iter()
            .map(|(n, _)| n.clone())
            .chain(self.subtypes.iter().map(|(n, _, _)| n.clone()))
            .collect();
        let non_entity_names: Vec<String> =
            self.non_entities.iter().map(|n| n.name.clone()).collect();

        let resolve_fns = |fns: Vec<RawFunction>| -> Result<Vec<Function>> {
            fns.into_iter()
                .map(|f| {
                    let range = match f.range {
                        RawRange::Inline(r) => r,
                        RawRange::Named(n) => {
                            if entity_names.contains(&n) {
                                FnRange::Entity(n)
                            } else if non_entity_names.contains(&n) {
                                FnRange::NonEntity(n)
                            } else {
                                return Err(Error::InvalidSchema(format!(
                                    "function `{}` refers to undeclared type `{n}`",
                                    f.name
                                )));
                            }
                        }
                    };
                    Ok(Function { name: f.name, range, set_valued: f.set_valued })
                })
                .collect()
        };

        let mut schema = FunctionalSchema::new(self.name);
        schema.non_entities = self.non_entities;
        for (name, fns) in self.entities {
            schema.entities.push(EntityType { name, functions: resolve_fns(fns)? });
        }
        for (name, supertypes, fns) in self.subtypes {
            schema.subtypes.push(EntitySubtype {
                name,
                supertypes,
                functions: resolve_fns(fns)?,
            });
        }
        schema.uniques = self.uniques;
        schema.overlaps = self.overlaps;
        Ok(schema)
    }
}

fn parse_type(c: &mut Cursor, raw: &mut RawSchema) -> Result<()> {
    c.expect_kw("TYPE")?;
    let name = c.name("type name")?;
    c.expect_kw("IS")?;

    if c.at_kw("ENTITY") {
        c.bump();
        let supertypes = if c.eat_kw("SUBTYPE") {
            c.expect_kw("OF")?;
            c.name_list("supertype name")?
        } else {
            Vec::new()
        };
        let mut fns = Vec::new();
        while !c.at_kw("END") {
            let fname = c.name("function name")?;
            c.expect_tok(Tok::Colon, "`:` after function name")?;
            let (range, set_valued) = parse_fn_range(c)?;
            c.expect_semi()?;
            fns.push(RawFunction { name: fname, range, set_valued });
        }
        c.expect_kw("END")?;
        c.expect_kw("ENTITY")?;
        c.expect_semi()?;
        if supertypes.is_empty() {
            raw.entities.push((name, fns));
        } else {
            raw.subtypes.push((name, supertypes, fns));
        }
        return Ok(());
    }

    // Non-entity type declaration.
    let derived = c.eat_kw("NEW");
    let (kind, parent) = parse_scalar_or_named(c, raw)?;
    let range = if c.eat_kw("RANGE") {
        let lo = c.int("range lower bound")?;
        c.expect_tok(Tok::DotDot, "`..` in range")?;
        let hi = c.int("range upper bound")?;
        Some((lo, hi))
    } else {
        None
    };
    c.expect_semi()?;
    let class = match (derived, &parent) {
        (true, Some(p)) => NonEntityClass::Derived { of: p.clone() },
        (true, None) => NonEntityClass::Derived { of: builtin_name(&kind) },
        (false, Some(p)) => NonEntityClass::Subtype { of: p.clone() },
        (false, None) => NonEntityClass::Base,
    };
    raw.non_entities.push(NonEntityType {
        name,
        class,
        kind,
        range,
        constant: false,
        value: None,
    });
    Ok(())
}

fn builtin_name(kind: &BaseKind) -> String {
    match kind {
        BaseKind::Str { .. } => "STRING",
        BaseKind::Int => "INTEGER",
        BaseKind::Float => "FLOAT",
        BaseKind::Bool => "BOOLEAN",
        BaseKind::Enum { .. } => "ENUMERATION",
    }
    .to_owned()
}

/// Parse a scalar type expression; returns the resolved kind and, when
/// the expression was a *named* non-entity type, its name.
fn parse_scalar_or_named(
    c: &mut Cursor,
    raw: &RawSchema,
) -> Result<(BaseKind, Option<String>)> {
    let word = c.name("type")?;
    match word.to_ascii_uppercase().as_str() {
        "STRING" => {
            c.expect_tok(Tok::LParen, "`(` after STRING")?;
            let len = c.int("string length")?;
            c.expect_tok(Tok::RParen, "`)` after string length")?;
            Ok((
                BaseKind::Str {
                    len: u16::try_from(len).map_err(|_| c.err("string length out of range"))?,
                },
                None,
            ))
        }
        "INTEGER" => Ok((BaseKind::Int, None)),
        "FLOAT" => Ok((BaseKind::Float, None)),
        "BOOLEAN" => Ok((BaseKind::Bool, None)),
        "ENUMERATION" => {
            c.expect_tok(Tok::LParen, "`(` after ENUMERATION")?;
            let literals = c.name_list("enumeration literal")?;
            c.expect_tok(Tok::RParen, "`)` after enumeration literals")?;
            Ok((BaseKind::Enum { literals }, None))
        }
        _ => {
            // A named non-entity type, which must already be declared
            // (non-entity chains cannot be forward references because
            // the kind must resolve).
            let parent = raw
                .non_entities
                .iter()
                .find(|n| n.name == word)
                .ok_or_else(|| c.err(format!("unknown non-entity type `{word}`")))?;
            Ok((parent.kind.clone(), Some(word)))
        }
    }
}

/// Parse a function's range type: `[SET OF] (scalar | name)`.
fn parse_fn_range(c: &mut Cursor) -> Result<(RawRange, bool)> {
    let set_valued = if c.at_kw("SET") {
        c.bump();
        c.expect_kw("OF")?;
        true
    } else {
        false
    };
    let word = c.name("function range type")?;
    let range = match word.to_ascii_uppercase().as_str() {
        "STRING" => {
            c.expect_tok(Tok::LParen, "`(` after STRING")?;
            let len = c.int("string length")?;
            c.expect_tok(Tok::RParen, "`)` after string length")?;
            RawRange::Inline(FnRange::Str {
                len: u16::try_from(len).map_err(|_| c.err("string length out of range"))?,
            })
        }
        "INTEGER" => RawRange::Inline(FnRange::Int),
        "FLOAT" => RawRange::Inline(FnRange::Float),
        "BOOLEAN" => RawRange::Inline(FnRange::Bool),
        "ENUMERATION" => {
            c.expect_tok(Tok::LParen, "`(` after ENUMERATION")?;
            let literals = c.name_list("enumeration literal")?;
            c.expect_tok(Tok::RParen, "`)` after enumeration literals")?;
            RawRange::Inline(FnRange::Enum { literals })
        }
        _ => RawRange::Named(word),
    };
    Ok((range, set_valued))
}

fn parse_constant(c: &mut Cursor, raw: &mut RawSchema) -> Result<()> {
    c.expect_kw("CONSTANT")?;
    let name = c.name("constant name")?;
    c.expect_kw("IS")?;
    let (value, kind) = match c.peek().clone() {
        Tok::Int(i) => {
            c.bump();
            (Value::Int(i), BaseKind::Int)
        }
        Tok::Float(f) => {
            c.bump();
            (Value::Float(f), BaseKind::Float)
        }
        Tok::Str(s) => {
            let len = s.len() as u16;
            c.bump();
            (Value::Str(s), BaseKind::Str { len })
        }
        other => return Err(c.err(format!("expected literal constant, found {other:?}"))),
    };
    c.expect_semi()?;
    raw.non_entities.push(NonEntityType {
        name,
        class: NonEntityClass::Base,
        kind,
        range: None,
        constant: true,
        value: Some(value),
    });
    Ok(())
}

/// Print a schema as canonical Daplex DDL (parse → print → parse is the
/// identity on valid schemas).
pub fn print_schema(s: &FunctionalSchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "DATABASE {} IS", s.name);
    for n in &s.non_entities {
        let _ = writeln!(out);
        if n.constant {
            let _ = writeln!(
                out,
                "CONSTANT {} IS {};",
                n.name,
                n.value.as_ref().expect("constants carry values")
            );
            continue;
        }
        let base = match &n.class {
            NonEntityClass::Base => kind_text(&n.kind),
            NonEntityClass::Subtype { of } => of.clone(),
            NonEntityClass::Derived { of } => {
                if of.eq_ignore_ascii_case(&builtin_name(&n.kind)) {
                    format!("NEW {}", kind_text(&n.kind))
                } else {
                    format!("NEW {of}")
                }
            }
        };
        let range = match n.range {
            Some((lo, hi)) => format!(" RANGE {lo}..{hi}"),
            None => String::new(),
        };
        let _ = writeln!(out, "TYPE {} IS {base}{range};", n.name);
    }
    for e in &s.entities {
        let _ = writeln!(out);
        let _ = writeln!(out, "TYPE {} IS", e.name);
        let _ = writeln!(out, "  ENTITY");
        print_functions(&mut out, &e.functions);
        let _ = writeln!(out, "  END ENTITY;");
    }
    for sub in &s.subtypes {
        let _ = writeln!(out);
        let _ = writeln!(out, "TYPE {} IS", sub.name);
        let _ = writeln!(out, "  ENTITY SUBTYPE OF {}", sub.supertypes.join(", "));
        print_functions(&mut out, &sub.functions);
        let _ = writeln!(out, "  END ENTITY;");
    }
    if !s.uniques.is_empty() || !s.overlaps.is_empty() {
        let _ = writeln!(out);
    }
    for u in &s.uniques {
        let _ = writeln!(out, "UNIQUE {} WITHIN {};", u.functions.join(", "), u.within);
    }
    for o in &s.overlaps {
        let _ = writeln!(out, "OVERLAP {} WITH {};", o.left.join(", "), o.right.join(", "));
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "END DATABASE;");
    out
}

fn print_functions(out: &mut String, fns: &[Function]) {
    for f in fns {
        let set = if f.set_valued { "SET OF " } else { "" };
        let range = match &f.range {
            FnRange::Str { len } => format!("STRING({len})"),
            FnRange::Int => "INTEGER".to_owned(),
            FnRange::Float => "FLOAT".to_owned(),
            FnRange::Bool => "BOOLEAN".to_owned(),
            FnRange::Enum { literals } => format!("ENUMERATION ({})", literals.join(", ")),
            FnRange::NonEntity(n) | FnRange::Entity(n) => n.clone(),
        };
        let _ = writeln!(out, "    {} : {set}{range};", f.name);
    }
}

fn kind_text(kind: &BaseKind) -> String {
    match kind {
        BaseKind::Str { len } => format!("STRING({len})"),
        BaseKind::Int => "INTEGER".to_owned(),
        BaseKind::Float => "FLOAT".to_owned(),
        BaseKind::Bool => "BOOLEAN".to_owned(),
        BaseKind::Enum { literals } => format!("ENUMERATION ({})", literals.join(", ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
DATABASE mini IS

TYPE age_type IS INTEGER RANGE 16..99;
TYPE rank_type IS ENUMERATION (assistant, associate, full);
TYPE young_age IS age_type RANGE 16..25;
TYPE credit_type IS NEW INTEGER RANGE 1..5;
CONSTANT max_load IS 4;

TYPE person IS
  ENTITY
    name : STRING(30);
    age  : age_type;
  END ENTITY;

TYPE faculty IS
  ENTITY
    fname    : STRING(30);
    rank     : rank_type;
    teaching : SET OF course;
  END ENTITY;

TYPE course IS
  ENTITY
    title     : STRING(30);
    credits   : credit_type;
    taught_by : SET OF faculty;
  END ENTITY;

TYPE student IS
  ENTITY SUBTYPE OF person
    major   : STRING(20);
    advisor : faculty;
  END ENTITY;

UNIQUE title WITHIN course;

END DATABASE;
";

    #[test]
    fn parses_and_validates() {
        let s = parse_schema(SRC).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.entities.len(), 3);
        assert_eq!(s.subtypes.len(), 1);
        assert_eq!(s.non_entities.len(), 5);
        let age = s.non_entity("age_type").unwrap();
        assert_eq!(age.range, Some((16, 99)));
        assert_eq!(age.class, NonEntityClass::Base);
        let young = s.non_entity("young_age").unwrap();
        assert_eq!(young.class, NonEntityClass::Subtype { of: "age_type".into() });
        assert_eq!(young.kind, BaseKind::Int);
        let credit = s.non_entity("credit_type").unwrap();
        assert_eq!(credit.class, NonEntityClass::Derived { of: "INTEGER".into() });
        let max_load = s.non_entity("max_load").unwrap();
        assert!(max_load.constant);
        assert_eq!(max_load.value, Some(Value::Int(4)));
    }

    #[test]
    fn forward_references_resolve() {
        let s = parse_schema(SRC).unwrap();
        // `teaching : SET OF course` references course, declared later.
        let teaching = s.function("faculty", "teaching").unwrap();
        assert_eq!(teaching.range, FnRange::Entity("course".into()));
        assert!(teaching.set_valued);
        // Named non-entity resolves to NonEntity, not Entity.
        let age = s.function("person", "age").unwrap();
        assert_eq!(age.range, FnRange::NonEntity("age_type".into()));
    }

    #[test]
    fn subtype_declaration() {
        let s = parse_schema(SRC).unwrap();
        let student = s.subtype("student").unwrap();
        assert_eq!(student.supertypes, vec!["person".to_owned()]);
        // Inherits name and age.
        assert!(s.function("student", "name").is_some());
    }

    #[test]
    fn print_parse_round_trip() {
        let s = parse_schema(SRC).unwrap();
        let printed = print_schema(&s);
        let reparsed = parse_schema(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        assert_eq!(s, reparsed);
    }

    #[test]
    fn undeclared_range_type_is_rejected() {
        let src = "DATABASE t IS TYPE a IS ENTITY f : ghost_type; END ENTITY; END DATABASE;";
        assert!(matches!(parse_schema(src), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn unknown_scalar_parent_is_rejected() {
        let src = "DATABASE t IS TYPE a IS ghost RANGE 1..2; END DATABASE;";
        assert!(parse_schema(src).is_err());
    }

    #[test]
    fn missing_end_entity_is_rejected() {
        let src = "DATABASE t IS TYPE a IS ENTITY f : INTEGER; END DATABASE;";
        assert!(parse_schema(src).is_err());
    }

    #[test]
    fn overlap_requires_subtypes() {
        let src = "
DATABASE t IS
TYPE a IS ENTITY f : INTEGER; END ENTITY;
TYPE b IS ENTITY g : INTEGER; END ENTITY;
OVERLAP a WITH b;
END DATABASE;";
        assert!(matches!(parse_schema(src), Err(Error::InvalidSchema(_))));
    }
}
