//! A Daplex DML subset — the MLDS functional language interface.
//!
//! The thesis builds on the existing Daplex interface of MLDS (Refs 19,
//! 21); this module provides that substrate: a small Daplex-flavoured
//! manipulation language translated onto the `AB(functional)` kernel
//! layout. Statements:
//!
//! ```text
//! FOR EACH student SUCH THAT major(student) = 'Computer Science'
//!     PRINT name(student), gpa(student);
//! CREATE student (name := 'Jones', age := 21, major := 'CS');
//! ASSIGN gpa(student) := 3.9 SUCH THAT name(student) = 'Jones';
//! DESTROY student SUCH THAT name(student) = 'Jones';
//! INCLUDE course SUCH THAT title(course) = 'DB'
//!     IN teaching(faculty) SUCH THAT ename(faculty) = 'Hsiao';
//! EXCLUDE course SUCH THAT title(course) = 'DB'
//!     IN teaching(faculty) SUCH THAT ename(faculty) = 'Hsiao';
//! ```
//!
//! Predicates compare *scalar* functions (own or inherited) against
//! literals; inherited functions transparently join through the
//! ancestor files on the shared artificial key.

use crate::ab_map::{entity_query, fn_storage, FnStorage, Loader};
use crate::error::{Error, Result};
use crate::lex::{Cursor, Tok};
use crate::names;
use abdl::{Kernel, Predicate, Query, RelOp, Request, Value, FILE_ATTR};
use std::collections::BTreeSet;
use std::fmt;

/// A predicate `f1(f2(…(var)…)) relop literal` — Daplex's function
/// composition. `path` is outermost-first: `dname(dept(faculty))` is
/// `["dname", "dept"]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FnPredicate {
    /// The applied function path, outermost first (length ≥ 1).
    pub path: Vec<String>,
    /// Relational operator.
    pub op: RelOp,
    /// Literal compared against.
    pub value: Value,
}

impl FnPredicate {
    /// The outermost (scalar) function of the path.
    pub fn function(&self) -> &str {
        &self.path[0]
    }
}

impl fmt::Display for FnPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.path {
            write!(f, "{p}(")?;
        }
        write!(f, "x")?;
        for _ in &self.path {
            write!(f, ")")?;
        }
        write!(f, " {} {}", self.op, self.value)
    }
}

/// One entity designator: a type plus a (possibly empty) SUCH THAT
/// conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct Designator {
    /// The entity type or subtype ranged over.
    pub entity: String,
    /// Conjoined predicates (empty = every entity of the type).
    pub predicates: Vec<FnPredicate>,
}

/// A Daplex DML statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DaplexStatement {
    /// `FOR EACH d PRINT f1(x), …, fn(x);` — print items may be
    /// composed paths like `dname(dept(x))`.
    ForEach {
        /// What to iterate.
        designator: Designator,
        /// Function paths printed per entity (outermost first).
        print: Vec<Vec<String>>,
    },
    /// `CREATE type (f1 := v1, …);`
    Create {
        /// Entity type created.
        entity: String,
        /// Function assignments.
        values: Vec<(String, Value)>,
    },
    /// `ASSIGN f(type) := v SUCH THAT …;`
    Assign {
        /// Target designator (the type carries the SUCH THAT).
        designator: Designator,
        /// Function assigned.
        function: String,
        /// New value.
        value: Value,
    },
    /// `DESTROY d;`
    Destroy {
        /// What to destroy.
        designator: Designator,
    },
    /// `INCLUDE member-designator IN f(owner-type) SUCH THAT …;`
    Include {
        /// The entity being included (the function's argument side
        /// resolves through [`Loader::link`]).
        member: Designator,
        /// The multi-valued (or single-valued) function.
        function: String,
        /// The entity whose function set gains the member.
        owner: Designator,
    },
    /// `EXCLUDE member-designator IN f(owner-type) SUCH THAT …;`
    Exclude {
        /// The entity being excluded.
        member: Designator,
        /// The function.
        function: String,
        /// The entity whose function set loses the member.
        owner: Designator,
    },
}

/// One row of FOR EACH output: the entity key plus the printed values
/// (set-valued functions print every value, comma-joined).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The entity's artificial key.
    pub key: i64,
    /// Printed values, in PRINT order.
    pub values: Vec<Value>,
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// FOR EACH rows.
    Rows(Vec<Row>),
    /// Keys affected by CREATE/ASSIGN/DESTROY/INCLUDE/EXCLUDE.
    Affected(Vec<i64>),
}

// ----- parsing -------------------------------------------------------

/// Parse a sequence of Daplex DML statements.
pub fn parse_statements(src: &str) -> Result<Vec<DaplexStatement>> {
    let mut c = Cursor::new(src)?;
    let mut out = Vec::new();
    while *c.peek() == Tok::Semi {
        c.bump();
    }
    while !c.at_eof() {
        out.push(parse_statement(&mut c)?);
        while *c.peek() == Tok::Semi {
            c.bump();
        }
    }
    Ok(out)
}

fn parse_statement(c: &mut Cursor) -> Result<DaplexStatement> {
    if c.eat_kw("FOR") {
        c.expect_kw("EACH")?;
        let designator = parse_designator(c)?;
        c.expect_kw("PRINT")?;
        let print = parse_fn_list(c)?;
        c.expect_tok(Tok::Semi, "`;`")?;
        return Ok(DaplexStatement::ForEach { designator, print });
    }
    if c.eat_kw("CREATE") {
        let entity = c.name("entity type")?;
        c.expect_tok(Tok::LParen, "`(` opening assignments")?;
        let mut values = Vec::new();
        loop {
            let f = c.name("function name")?;
            c.expect_tok(Tok::Assign, "`:=`")?;
            values.push((f, parse_literal(c)?));
            if *c.peek() == Tok::Comma {
                c.bump();
            } else {
                break;
            }
        }
        c.expect_tok(Tok::RParen, "`)` closing assignments")?;
        c.expect_tok(Tok::Semi, "`;`")?;
        return Ok(DaplexStatement::Create { entity, values });
    }
    if c.eat_kw("ASSIGN") {
        let function = c.name("function name")?;
        c.expect_tok(Tok::LParen, "`(`")?;
        let entity = c.name("entity type")?;
        c.expect_tok(Tok::RParen, "`)`")?;
        c.expect_tok(Tok::Assign, "`:=`")?;
        let value = parse_literal(c)?;
        let predicates = parse_such_that(c, &entity)?;
        c.expect_tok(Tok::Semi, "`;`")?;
        return Ok(DaplexStatement::Assign {
            designator: Designator { entity, predicates },
            function,
            value,
        });
    }
    if c.eat_kw("DESTROY") {
        let designator = parse_designator(c)?;
        c.expect_tok(Tok::Semi, "`;`")?;
        return Ok(DaplexStatement::Destroy { designator });
    }
    let include = if c.eat_kw("INCLUDE") {
        true
    } else if c.eat_kw("EXCLUDE") {
        false
    } else {
        return Err(c.err(format!(
            "expected FOR EACH, CREATE, ASSIGN, DESTROY, INCLUDE or EXCLUDE, found {:?}",
            c.peek()
        )));
    };
    let member = parse_designator(c)?;
    c.expect_kw("IN")?;
    let function = c.name("function name")?;
    c.expect_tok(Tok::LParen, "`(`")?;
    let owner_entity = c.name("entity type")?;
    c.expect_tok(Tok::RParen, "`)`")?;
    let owner_preds = parse_such_that(c, &owner_entity)?;
    c.expect_tok(Tok::Semi, "`;`")?;
    let owner = Designator { entity: owner_entity, predicates: owner_preds };
    Ok(if include {
        DaplexStatement::Include { member, function, owner }
    } else {
        DaplexStatement::Exclude { member, function, owner }
    })
}

fn parse_designator(c: &mut Cursor) -> Result<Designator> {
    let entity = c.name("entity type")?;
    let predicates = parse_such_that(c, &entity)?;
    Ok(Designator { entity, predicates })
}

fn parse_such_that(c: &mut Cursor, entity: &str) -> Result<Vec<FnPredicate>> {
    if !c.eat_kw("SUCH") {
        return Ok(Vec::new());
    }
    c.expect_kw("THAT")?;
    let mut preds = Vec::new();
    loop {
        // A function path: f1(f2(…(var)…)).
        let mut path = vec![c.name("function name")?];
        c.expect_tok(Tok::LParen, "`(`")?;
        let mut depth = 1usize;
        loop {
            let word = c.name("function name or entity variable")?;
            if *c.peek() == Tok::LParen {
                c.bump();
                depth += 1;
                path.push(word);
                continue;
            }
            // Innermost word is the entity variable.
            if word != entity {
                return Err(c.err(format!(
                    "predicate variable `{word}` does not match designator type `{entity}`"
                )));
            }
            break;
        }
        for _ in 0..depth {
            c.expect_tok(Tok::RParen, "`)`")?;
        }
        let op = match c.bump() {
            Tok::Eq => RelOp::Eq,
            Tok::Ne => RelOp::Ne,
            Tok::Lt => RelOp::Lt,
            Tok::Le => RelOp::Le,
            Tok::Gt => RelOp::Gt,
            Tok::Ge => RelOp::Ge,
            other => return Err(c.err(format!("expected relational operator, found {other:?}"))),
        };
        let value = parse_literal(c)?;
        preds.push(FnPredicate { path, op, value });
        if !c.eat_kw("AND") {
            break;
        }
    }
    Ok(preds)
}

fn parse_fn_list(c: &mut Cursor) -> Result<Vec<Vec<String>>> {
    let mut out = Vec::new();
    loop {
        let mut path = vec![c.name("function name")?];
        // Optional (possibly nested) application syntax: f(g(var)).
        if *c.peek() == Tok::LParen {
            c.bump();
            let mut depth = 1usize;
            loop {
                let word = c.name("function name or entity variable")?;
                if *c.peek() == Tok::LParen {
                    c.bump();
                    depth += 1;
                    path.push(word);
                } else {
                    break; // innermost word is the entity variable
                }
            }
            for _ in 0..depth {
                c.expect_tok(Tok::RParen, "`)`")?;
            }
        }
        out.push(path);
        if *c.peek() == Tok::Comma {
            c.bump();
        } else {
            break;
        }
    }
    Ok(out)
}

fn parse_literal(c: &mut Cursor) -> Result<Value> {
    let v = match c.peek().clone() {
        Tok::Int(i) => Value::Int(i),
        Tok::Float(f) => Value::Float(f),
        Tok::Str(s) => Value::Str(s),
        Tok::Word(w) if w.eq_ignore_ascii_case("NULL") => Value::Null,
        Tok::Word(w) if w.eq_ignore_ascii_case("TRUE") => Value::str("true"),
        Tok::Word(w) if w.eq_ignore_ascii_case("FALSE") => Value::str("false"),
        other => return Err(c.err(format!("expected literal, found {other:?}"))),
    };
    c.bump();
    Ok(v)
}

/// Render a multi-valued path result as a single display value (one
/// value stays itself; several join comma-separated, like set-valued
/// read_function results).
fn join_values(mut vals: Vec<Value>) -> Value {
    match vals.len() {
        0 => Value::Null,
        1 => vals.pop().expect("one value"),
        _ => Value::Str(
            vals.iter()
                .map(|v| match v {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join(", "),
        ),
    }
}

// ----- execution -----------------------------------------------------

/// The Daplex DML interpreter: resolves designators to entity keys on
/// the `AB(functional)` store and applies [`Loader`] operations.
pub struct Interpreter<'a, K: Kernel> {
    loader: &'a mut Loader,
    store: &'a mut K,
}

impl<'a, K: Kernel> Interpreter<'a, K> {
    /// Wrap a loader and its kernel.
    pub fn new(loader: &'a mut Loader, store: &'a mut K) -> Self {
        Interpreter { loader, store }
    }

    /// Execute one statement.
    pub fn execute(&mut self, stmt: &DaplexStatement) -> Result<Outcome> {
        match stmt {
            DaplexStatement::ForEach { designator, print } => {
                let keys = self.resolve(designator)?;
                let mut rows = Vec::with_capacity(keys.len());
                for key in keys {
                    let mut values = Vec::with_capacity(print.len());
                    for path in print {
                        if path.len() == 1 {
                            values.push(self.read_function(&designator.entity, key, &path[0])?);
                        } else {
                            let vals = self.path_values(&designator.entity, key, path)?;
                            values.push(join_values(vals));
                        }
                    }
                    rows.push(Row { key, values });
                }
                Ok(Outcome::Rows(rows))
            }
            DaplexStatement::Create { entity, values } => {
                let pairs: Vec<(&str, Value)> =
                    values.iter().map(|(f, v)| (f.as_str(), v.clone())).collect();
                let key = self.loader.create_entity(self.store, entity, &pairs)?;
                Ok(Outcome::Affected(vec![key]))
            }
            DaplexStatement::Assign { designator, function, value } => {
                let keys = self.resolve(designator)?;
                for &key in &keys {
                    self.loader.set_function(
                        self.store,
                        &designator.entity,
                        key,
                        function,
                        value.clone(),
                    )?;
                }
                Ok(Outcome::Affected(keys))
            }
            DaplexStatement::Destroy { designator } => {
                let keys = self.resolve(designator)?;
                for &key in &keys {
                    self.loader.destroy(self.store, &designator.entity, key)?;
                }
                Ok(Outcome::Affected(keys))
            }
            DaplexStatement::Include { member, function, owner } => {
                self.in_or_exclude(member, function, owner, true)
            }
            DaplexStatement::Exclude { member, function, owner } => {
                self.in_or_exclude(member, function, owner, false)
            }
        }
    }

    fn in_or_exclude(
        &mut self,
        member: &Designator,
        function: &str,
        owner: &Designator,
        include: bool,
    ) -> Result<Outcome> {
        let member_keys = self.resolve(member)?;
        let owner_keys = self.resolve(owner)?;
        // `INCLUDE m IN f(o)`: `f` is usually declared on `o` (a
        // set-valued function), but for set-derived single-valued
        // functions (reverse-transformed network sets) it lives on the
        // member and ranges over `o` — accept both orientations.
        let schema = self.loader.schema().clone();
        let on_owner = schema.function(&owner.entity, function).is_some();
        let on_member = !on_owner
            && schema
                .function(&member.entity, function)
                .is_some_and(|f| schema.entity_range(f) == Some(owner.entity.as_str()));
        if !on_owner && !on_member {
            return Err(Error::UnknownFunction {
                entity: owner.entity.clone(),
                function: function.to_owned(),
            });
        }
        let mut affected = Vec::new();
        for &o in &owner_keys {
            for &m in &member_keys {
                let (ty, from, to) = if on_owner {
                    (&owner.entity, o, m)
                } else {
                    (&member.entity, m, o)
                };
                if include {
                    self.loader.link(self.store, ty, from, function, to)?;
                } else {
                    self.loader.unlink(self.store, ty, from, function, to)?;
                }
                affected.push(m);
            }
        }
        Ok(Outcome::Affected(affected))
    }

    /// Resolve a designator to the sorted set of matching entity keys.
    pub fn resolve(&mut self, d: &Designator) -> Result<Vec<i64>> {
        let schema = self.loader.schema().clone();
        schema.require_entity_like(&d.entity)?;
        // Start with every key present in the designator's own file.
        let mut keys = self.keys_in_file(&d.entity, None)?;
        for pred in &d.predicates {
            if pred.path.len() == 1 {
                // Single function: filter kernel-side (index-assisted).
                let f = schema.require_function(&d.entity, pred.function())?.clone();
                let file = match fn_storage(&schema, &d.entity, &f)? {
                    FnStorage::ScalarAttr { file }
                    | FnStorage::ScalarMultiAttr { file }
                    | FnStorage::MemberAttr { file, .. } => file,
                    other => {
                        return Err(Error::ValueOutOfRange {
                            function: pred.function().to_owned(),
                            got: pred.value.to_string(),
                            why: format!("cannot apply predicates to storage {other:?}"),
                        })
                    }
                };
                let matching = self.keys_in_file(
                    &file,
                    Some(Predicate::new(pred.function().to_owned(), pred.op, pred.value.clone())),
                )?;
                keys.retain(|k| matching.contains(k));
            } else {
                // Function composition: evaluate the path per entity;
                // set-valued steps are existential ("some related
                // entity satisfies").
                let mut surviving = BTreeSet::new();
                for &k in &keys {
                    let values = self.path_values(&d.entity, k, &pred.path)?;
                    if values.iter().any(|v| pred.op.eval(v, &pred.value)) {
                        surviving.insert(k);
                    }
                }
                keys = surviving;
            }
        }
        Ok(keys.into_iter().collect())
    }

    /// Evaluate a function path (outermost first) on one entity: the
    /// entity-valued inner steps are followed through the kernel, then
    /// the outermost function's value(s) are returned. Set-valued steps
    /// fan out (all related entities contribute).
    pub fn path_values(&mut self, entity: &str, key: i64, path: &[String]) -> Result<Vec<Value>> {
        let mut ty = entity.to_owned();
        let mut keys = vec![key];
        // Inner steps (innermost first): all must be entity-valued.
        for f in path.iter().skip(1).rev() {
            let mut next_ty = None;
            let mut next_keys = BTreeSet::new();
            for &k in &keys {
                let (target, related) = self.related_keys(&ty, k, f)?;
                next_ty = Some(target);
                next_keys.extend(related);
            }
            match next_ty {
                Some(t) => {
                    ty = t;
                    keys = next_keys.into_iter().collect();
                }
                None => {
                    // No entities left to follow; resolve the target
                    // type for the remaining steps anyway.
                    let schema = self.loader.schema().clone();
                    let func = schema.require_function(&ty, f)?;
                    ty = schema
                        .entity_range(func)
                        .ok_or_else(|| Error::UnknownFunction {
                            entity: ty.clone(),
                            function: f.clone(),
                        })?
                        .to_owned();
                    keys = Vec::new();
                }
            }
        }
        let mut out = Vec::new();
        for &k in &keys {
            out.extend(self.scalar_values(&ty, k, &path[0])?);
        }
        Ok(out)
    }

    /// Follow an entity-valued function from one entity: returns the
    /// target entity type and the related keys.
    fn related_keys(&mut self, entity: &str, key: i64, function: &str) -> Result<(String, Vec<i64>)> {
        let schema = self.loader.schema().clone();
        let f = schema.require_function(entity, function)?.clone();
        let range = schema
            .entity_range(&f)
            .ok_or_else(|| Error::ValueOutOfRange {
                function: function.to_owned(),
                got: format!("#{key}"),
                why: "inner path steps must be entity-valued".into(),
            })?
            .to_owned();
        match fn_storage(&schema, entity, &f)? {
            FnStorage::MemberAttr { file, .. } => {
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(entity_query(&file, key)))
                    .map_err(Error::Kernel)?;
                let keys: BTreeSet<i64> = resp
                    .records()
                    .iter()
                    .filter_map(|(_, r)| r.get(function).and_then(Value::as_int))
                    .collect();
                Ok((range, keys.into_iter().collect()))
            }
            FnStorage::RangeMemberAttr { file, .. } => {
                let q = Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(file.clone())),
                    Predicate::eq(function.to_owned(), Value::Int(key)),
                ]);
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(q))
                    .map_err(Error::Kernel)?;
                let keys: BTreeSet<i64> = resp
                    .records()
                    .iter()
                    .filter_map(|(_, r)| r.get(names::key_attr(&file)).and_then(Value::as_int))
                    .collect();
                Ok((range, keys.into_iter().collect()))
            }
            FnStorage::Link { pair } => {
                let (own_attr, other_attr) = if pair.left_function == f.name {
                    (pair.left_function.clone(), pair.right_function.clone())
                } else {
                    (pair.right_function.clone(), pair.left_function.clone())
                };
                let q = Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(pair.link.clone())),
                    Predicate::eq(own_attr, Value::Int(key)),
                ]);
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(q))
                    .map_err(Error::Kernel)?;
                let keys: BTreeSet<i64> = resp
                    .records()
                    .iter()
                    .filter_map(|(_, r)| r.get(&other_attr).and_then(Value::as_int))
                    .collect();
                Ok((range, keys.into_iter().collect()))
            }
            other => Err(Error::ValueOutOfRange {
                function: function.to_owned(),
                got: format!("#{key}"),
                why: format!("inner path steps must be entity-valued (storage {other:?})"),
            }),
        }
    }

    /// All raw values of a function on one entity (repeated records of
    /// scalar multi-valued functions each contribute; entity-valued
    /// functions yield the related entity keys as integers).
    fn scalar_values(&mut self, entity: &str, key: i64, function: &str) -> Result<Vec<Value>> {
        let schema = self.loader.schema().clone();
        let f = schema.require_function(entity, function)?.clone();
        match fn_storage(&schema, entity, &f)? {
            FnStorage::ScalarAttr { file }
            | FnStorage::ScalarMultiAttr { file }
            | FnStorage::MemberAttr { file, .. } => {
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(entity_query(&file, key)))
                    .map_err(Error::Kernel)?;
                let mut vals: Vec<Value> = Vec::new();
                for (_, r) in resp.records() {
                    let v = r.get_or_null(function).clone();
                    if !v.is_null() && !vals.contains(&v) {
                        vals.push(v);
                    }
                }
                Ok(vals)
            }
            FnStorage::RangeMemberAttr { .. } | FnStorage::Link { .. } => {
                let (_, keys) = self.related_keys(entity, key, function)?;
                Ok(keys.into_iter().map(Value::Int).collect())
            }
        }
    }

    /// Keys of entities in `file` (repeated records deduplicated),
    /// optionally restricted by a predicate.
    fn keys_in_file(&mut self, file: &str, pred: Option<Predicate>) -> Result<BTreeSet<i64>> {
        let mut q = Query::conjunction(vec![Predicate::eq(FILE_ATTR, Value::str(file))]);
        if let Some(p) = pred {
            q = q.and_predicate(p);
        }
        let resp = self
            .store
            .execute(&Request::retrieve_all(q))
            .map_err(Error::Kernel)?;
        Ok(resp
            .records()
            .iter()
            .filter_map(|(_, r)| r.get(names::key_attr(file)).and_then(Value::as_int))
            .collect())
    }

    /// Read a function's value(s) for an entity: scalars read from the
    /// declaring file (joining through the hierarchy); scalar
    /// multi-valued functions return their values comma-joined;
    /// entity-valued functions return the related entity key(s).
    pub fn read_function(&mut self, entity: &str, key: i64, function: &str) -> Result<Value> {
        let schema = self.loader.schema().clone();
        let f = schema.require_function(entity, function)?.clone();
        match fn_storage(&schema, entity, &f)? {
            FnStorage::ScalarAttr { file } | FnStorage::MemberAttr { file, .. } => {
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(entity_query(&file, key)))
                    .map_err(Error::Kernel)?;
                Ok(resp
                    .records()
                    .first()
                    .map(|(_, r)| r.get_or_null(function).clone())
                    .unwrap_or(Value::Null))
            }
            FnStorage::ScalarMultiAttr { file } => {
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(entity_query(&file, key)))
                    .map_err(Error::Kernel)?;
                let mut vals: Vec<String> = resp
                    .records()
                    .iter()
                    .filter_map(|(_, r)| {
                        let v = r.get_or_null(function);
                        (!v.is_null()).then(|| match v {
                            Value::Str(s) => s.clone(),
                            other => other.to_string(),
                        })
                    })
                    .collect();
                vals.sort();
                vals.dedup();
                Ok(Value::Str(vals.join(", ")))
            }
            FnStorage::RangeMemberAttr { file, .. } => {
                // Keys of range entities pointing back at `key`.
                let q = Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(file.clone())),
                    Predicate::eq(function.to_owned(), Value::Int(key)),
                ]);
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(q))
                    .map_err(Error::Kernel)?;
                let keys: BTreeSet<i64> = resp
                    .records()
                    .iter()
                    .filter_map(|(_, r)| r.get(names::key_attr(&file)).and_then(Value::as_int))
                    .collect();
                Ok(Value::Str(
                    keys.iter().map(|k| format!("#{k}")).collect::<Vec<_>>().join(", "),
                ))
            }
            FnStorage::Link { pair } => {
                let (own_attr, other_attr) = if pair.left_function == f.name {
                    (pair.left_function.clone(), pair.right_function.clone())
                } else {
                    (pair.right_function.clone(), pair.left_function.clone())
                };
                let q = Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(pair.link.clone())),
                    Predicate::eq(own_attr, Value::Int(key)),
                ]);
                let resp = self
                    .store
                    .execute(&Request::retrieve_all(q))
                    .map_err(Error::Kernel)?;
                let keys: BTreeSet<i64> = resp
                    .records()
                    .iter()
                    .filter_map(|(_, r)| r.get(&other_attr).and_then(Value::as_int))
                    .collect();
                Ok(Value::Str(
                    keys.iter().map(|k| format!("#{k}")).collect::<Vec<_>>().join(", "),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university;

    fn run(src: &str) -> (Vec<Outcome>, Loader, abdl::Store) {
        let (mut loader, mut store, _) = university::sample_database().unwrap();
        let stmts = parse_statements(src).unwrap();
        let mut outcomes = Vec::new();
        {
            let mut interp = Interpreter::new(&mut loader, &mut store);
            for s in &stmts {
                outcomes.push(interp.execute(s).unwrap());
            }
        }
        (outcomes, loader, store)
    }

    #[test]
    fn for_each_filters_and_prints_with_inheritance() {
        let (outcomes, _, _) = run(
            "FOR EACH student SUCH THAT major(student) = 'Computer Science' \
             PRINT name(student), gpa(student);",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        assert_eq!(rows.len(), 3, "Coker, Rodeck, Zawis");
        // `name` is inherited from person; values must resolve.
        let names: Vec<&Value> = rows.iter().map(|r| &r.values[0]).collect();
        assert!(names.contains(&&Value::str("Coker")));
        assert!(names.iter().all(|v| !v.is_null()));
    }

    #[test]
    fn predicates_on_inherited_functions_join_through_ancestors() {
        let (outcomes, _, _) = run(
            "FOR EACH student SUCH THAT age(student) >= 27 PRINT name(student);",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        assert_eq!(rows.len(), 2, "Coker (28) and Rodeck (27)");
    }

    #[test]
    fn create_assign_destroy_lifecycle() {
        let (outcomes, _, store) = run(
            "CREATE student (name := 'Jones', age := 22, major := 'History', gpa := 2.9);\
             ASSIGN gpa(student) := 3.1 SUCH THAT name(student) = 'Jones';\
             FOR EACH student SUCH THAT name(student) = 'Jones' PRINT gpa(student);\
             DESTROY student SUCH THAT name(student) = 'Jones';",
        );
        let Outcome::Affected(created) = &outcomes[0] else { panic!("expected keys") };
        assert_eq!(created.len(), 1);
        let Outcome::Rows(rows) = &outcomes[2] else { panic!("expected rows") };
        assert_eq!(rows[0].values[0], Value::Float(3.1));
        let Outcome::Affected(destroyed) = &outcomes[3] else { panic!("expected keys") };
        assert_eq!(destroyed, created);
        assert_eq!(store.file_len("student"), 4, "back to the original four");
    }

    #[test]
    fn scalar_multi_valued_prints_all_values() {
        let (outcomes, _, _) = run(
            "FOR EACH faculty SUCH THAT ename(faculty) = 'Hsiao' PRINT degrees(faculty);",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        assert_eq!(rows.len(), 1, "repeated records deduplicate to one entity");
        assert_eq!(rows[0].values[0], Value::str("BS, PhD"));
    }

    #[test]
    fn include_and_exclude_maintain_link_pairs() {
        let (outcomes, _, store) = run(
            "INCLUDE course SUCH THAT title(course) = 'Linear Algebra' \
                 IN teaching(faculty) SUCH THAT ename(faculty) = 'Hsiao';\
             FOR EACH faculty SUCH THAT ename(faculty) = 'Hsiao' PRINT teaching(faculty);\
             EXCLUDE course SUCH THAT title(course) = 'Linear Algebra' \
                 IN teaching(faculty) SUCH THAT ename(faculty) = 'Hsiao';",
        );
        assert!(matches!(&outcomes[0], Outcome::Affected(k) if k.len() == 1));
        let Outcome::Rows(rows) = &outcomes[1] else { panic!("expected rows") };
        // Hsiao now teaches 3 courses.
        let taught = rows[0].values[0].as_str().unwrap();
        assert_eq!(taught.split(", ").count(), 3);
        assert_eq!(store.file_len("LINK_1"), 5, "back to five pairs after EXCLUDE");
    }

    #[test]
    fn destroy_referenced_entity_is_aborted() {
        let (mut loader, mut store, _) = university::sample_database().unwrap();
        let stmts =
            parse_statements("DESTROY faculty SUCH THAT ename(faculty) = 'Hsiao';").unwrap();
        let mut interp = Interpreter::new(&mut loader, &mut store);
        let err = interp.execute(&stmts[0]).unwrap_err();
        assert!(matches!(err, Error::DestroyReferenced { .. }));
    }

    #[test]
    fn function_composition_follows_single_valued_paths() {
        // Students whose advisor works in the Computer Science
        // department: dname(dept(advisor(student))).
        let (outcomes, _, _) = run(
            "FOR EACH student SUCH THAT dname(dept(advisor(student))) = 'Computer Science' \
             PRINT name(student);",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        // Coker & Zawis (advisor Hsiao, CS) and Rodeck (advisor Lum, CS).
        assert_eq!(rows.len(), 3, "{rows:?}");
    }

    #[test]
    fn function_composition_is_existential_over_sets() {
        // Faculty teaching a 3-credit course: credits(teaching(faculty)).
        let (outcomes, _, _) = run(
            "FOR EACH faculty SUCH THAT credits(teaching(faculty)) = 3 \
             PRINT ename(faculty);",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert_eq!(rows[0].values[0], Value::str("Marshall"));
    }

    #[test]
    fn composition_through_inverse_m2m_side() {
        // Courses taught by a full professor: rank(taught_by(course)).
        let (outcomes, _, _) = run(
            "FOR EACH course SUCH THAT rank(taught_by(course)) = 'full' \
             PRINT title(course);",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        let titles: Vec<&Value> = rows.iter().map(|r| &r.values[0]).collect();
        // Hsiao (full) teaches Advanced Database + Database Design;
        // Marshall (full) teaches Linear Algebra.
        assert_eq!(rows.len(), 3, "{titles:?}");
    }

    #[test]
    fn composition_rejects_scalar_inner_step() {
        let (mut loader, mut store, _) = university::sample_database().unwrap();
        let stmts = parse_statements(
            "FOR EACH student SUCH THAT name(gpa(student)) = 'x' PRINT name(student);",
        )
        .unwrap();
        let mut interp = Interpreter::new(&mut loader, &mut store);
        assert!(interp.execute(&stmts[0]).is_err());
    }

    #[test]
    fn print_accepts_composed_paths() {
        let (outcomes, _, _) = run(
            "FOR EACH student SUCH THAT name(student) = 'Coker' \
             PRINT name(student), dname(dept(advisor(student)));",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        assert_eq!(rows[0].values[0], Value::str("Coker"));
        assert_eq!(rows[0].values[1], Value::str("Computer Science"));
    }

    #[test]
    fn print_path_over_sets_joins_values() {
        let (outcomes, _, _) = run(
            "FOR EACH faculty SUCH THAT ename(faculty) = 'Hsiao' \
             PRINT title(teaching(faculty));",
        );
        let Outcome::Rows(rows) = &outcomes[0] else { panic!("expected rows") };
        let v = rows[0].values[0].as_str().unwrap();
        assert!(v.contains("Advanced Database") && v.contains("Database Design"), "{v}");
    }

    #[test]
    fn parse_rejects_variable_mismatch() {
        assert!(parse_statements(
            "FOR EACH student SUCH THAT major(course) = 'CS' PRINT name(student);"
        )
        .is_err());
    }
}
