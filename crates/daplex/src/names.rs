//! Naming conventions shared by the functional→ABDM mapping, the
//! functional→network schema transformer and the CODASYL-DML→ABDL
//! translator.
//!
//! The three layers must agree on how constructs are named in the
//! kernel, because the thesis's translated requests address kernel
//! attributes *by the set names of the transformed network schema*
//! (e.g. `RETRIEVE ((FILE = student) AND (person_student = …))`).

/// The SYSTEM-owned set of a transformed entity type: `system_{entity}`.
pub fn system_set(entity: &str) -> String {
    format!("system_{entity}")
}

/// The ISA set between a supertype and one of its subtypes: the
/// "concatenation of the subtype's entity supertype, an underscore (_),
/// and the subtype's name".
pub fn isa_set(supertype: &str, subtype: &str) -> String {
    format!("{supertype}_{subtype}")
}

/// The kernel attribute carrying an entity occurrence's own key is
/// named after its type (`<course, 17>`).
pub fn key_attr(entity: &str) -> &str {
    entity
}

/// The entity key representing the SYSTEM owner of singular sets.
pub const SYSTEM_OWNER_KEY: i64 = 0;

/// Name of the `X`-th synthesized many-to-many link record: `LINK_X`.
pub fn link_record(index: usize) -> String {
    format!("LINK_{index}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventions() {
        assert_eq!(system_set("person"), "system_person");
        assert_eq!(isa_set("person", "student"), "person_student");
        assert_eq!(key_attr("course"), "course");
        assert_eq!(link_record(1), "LINK_1");
    }
}
