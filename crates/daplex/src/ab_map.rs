//! The functional→ABDM mapping: the `AB(functional)` kernel layout of
//! Figure 3.3, plus a loader that maintains it.
//!
//! Layout (Chapter III.C.1, concretized as described in DESIGN.md):
//!
//! * **One kernel file per entity type and subtype.** The first keyword
//!   is `<FILE, E>`; the second is `<E, key>`, the *artificial
//!   attribute* whose value is the entity's unique key. An entity that
//!   belongs to a subtype appears in the subtype's file *and* in every
//!   ancestor's file **under the same key** — that is how "the value
//!   [of a subtype record] consists of its entity supertype and its
//!   unique key" realizes value inheritance.
//! * **Scalar functions** become keywords of the declaring type's file.
//! * **Scalar multi-valued functions** become keywords too, but an
//!   entity with k values is stored as k *repeated records* differing
//!   only in that keyword ("the related attributes for each related
//!   record must be repeated").
//! * **Entity-valued functions** become *member-side set attributes*,
//!   uniformly with the `AB(network)` layout: the member file of the
//!   corresponding network set carries `<set-name, owner-key>`.
//!   For a single-valued `f : D → R` the set is named `f` with owner
//!   `R`/member `D`, so `D`'s file carries `<f, key-of-R>`. For a
//!   one-to-many multi-valued `f : D → set of R` the set has owner
//!   `D`/member `R`, so `R`'s file carries `<f, key-of-D>`.
//! * **Many-to-many pairs** get a `LINK_X` pair file whose records
//!   carry `<forward-fn, key-of-left>` and `<inverse-fn, key-of-right>`
//!   (the link record is the member of both sets).
//! * **ISA relationships**: each subtype record carries
//!   `<{super}_{sub}, key>` — the member-side attribute of the ISA set,
//!   whose owner occurrence key equals the entity's own key.
//! * **SYSTEM sets**: each root entity record carries
//!   `<system_{E}, 0>`.
//! * **Uniqueness constraints** become kernel `DUPLICATES ARE NOT
//!   ALLOWED` groups on the declaring file.

use crate::error::{Error, Result};
use crate::names;
use crate::schema::{FunctionalSchema, Function, M2MPair};
use abdl::{Kernel, Predicate, Query, Record, Request, Value, FILE_ATTR};
use std::collections::BTreeMap;

/// Where a function's values live in the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnStorage {
    /// A keyword of the declaring type's file (scalar functions).
    ScalarAttr {
        /// The declaring entity-like type (= kernel file).
        file: String,
    },
    /// A keyword of the declaring type's file, stored across repeated
    /// records (scalar multi-valued functions).
    ScalarMultiAttr {
        /// The declaring entity-like type.
        file: String,
    },
    /// Member-side set attribute in the *declaring* type's file
    /// (single-valued entity function: declaring type is the set
    /// member).
    MemberAttr {
        /// The kernel file carrying the attribute (= the set member).
        file: String,
        /// The set owner's entity type (the function's range).
        owner: String,
    },
    /// Member-side set attribute in the *range* type's file
    /// (one-to-many multi-valued function: range type is the set
    /// member, declaring type the owner).
    RangeMemberAttr {
        /// The kernel file carrying the attribute (= the range type).
        file: String,
        /// The set owner's entity type (the declaring type).
        owner: String,
    },
    /// One side of a many-to-many pair stored in a `LINK_X` file.
    Link {
        /// The pair descriptor.
        pair: M2MPair,
    },
}

/// Resolve where a function's values are stored.
///
/// `entity` is the type through which the function was reached; storage
/// is always at the *declaring* type.
pub fn fn_storage(schema: &FunctionalSchema, entity: &str, f: &Function) -> Result<FnStorage> {
    let declaring = schema
        .declaring_type(entity, &f.name)
        .ok_or_else(|| Error::UnknownFunction { entity: entity.to_owned(), function: f.name.clone() })?;
    if let Some(range) = schema.entity_range(f) {
        if !f.set_valued {
            return Ok(FnStorage::MemberAttr { file: declaring, owner: range.to_owned() });
        }
        if let Some(pair) = schema.m2m_pair_of(&declaring, &f.name) {
            return Ok(FnStorage::Link { pair });
        }
        return Ok(FnStorage::RangeMemberAttr { file: range.to_owned(), owner: declaring });
    }
    if f.set_valued {
        Ok(FnStorage::ScalarMultiAttr { file: declaring })
    } else {
        Ok(FnStorage::ScalarAttr { file: declaring })
    }
}

/// Create the kernel files (entity, subtype and link files) and the
/// uniqueness constraints for a functional schema.
pub fn install<K: Kernel>(schema: &FunctionalSchema, store: &mut K) {
    for name in schema.entity_like_names() {
        store.create_file(name);
    }
    for pair in schema.m2m_pairs() {
        store.create_file(&pair.link);
    }
    for u in &schema.uniques {
        store.add_unique_constraint(&u.within, u.functions.clone());
    }
}

/// Loads and maintains an `AB(functional)` database: assigns artificial
/// keys, keeps repeated records for scalar multi-valued functions, and
/// enforces overlap constraints on specialization.
#[derive(Debug, Clone)]
pub struct Loader {
    schema: FunctionalSchema,
}

impl Loader {
    /// A loader for a validated schema.
    pub fn new(schema: FunctionalSchema) -> Self {
        Loader { schema }
    }

    /// The schema this loader maintains.
    pub fn schema(&self) -> &FunctionalSchema {
        &self.schema
    }

    /// Reserve the next artificial key from the kernel (key 0 is
    /// reserved for the SYSTEM owner; kernel keys start at 1).
    pub fn reserve_key<K: Kernel>(&mut self, kernel: &mut K) -> i64 {
        kernel.reserve_key().0 as i64
    }

    /// Create a new entity of `entity_type` (an entity type *or*
    /// subtype — creating a subtype instance creates the ancestor
    /// records too). `values` assigns scalar and single-valued entity
    /// functions anywhere in the hierarchy; set-valued functions must
    /// use [`Loader::add_scalar_value`] / [`Loader::link`].
    ///
    /// Returns the new entity's key.
    pub fn create_entity<K: Kernel>(
        &mut self,
        store: &mut K,
        entity_type: &str,
        values: &[(&str, Value)],
    ) -> Result<i64> {
        self.schema.require_entity_like(entity_type)?;
        let key = self.reserve_key(store);
        // The chain of files this entity occupies: itself + ancestors.
        let mut chain = vec![entity_type.to_owned()];
        chain.extend(self.schema.ancestors(entity_type));

        // Route each value to its declaring type's record.
        let mut routed: BTreeMap<String, Vec<(String, Value)>> = BTreeMap::new();
        for (fname, value) in values {
            let f = self.schema.require_function(entity_type, fname)?.clone();
            if f.set_valued {
                return Err(Error::ValueOutOfRange {
                    function: f.name.clone(),
                    got: value.to_string(),
                    why: "set-valued functions are populated with add_scalar_value/link".into(),
                });
            }
            self.schema.check_value(&f, value)?;
            match fn_storage(&self.schema, entity_type, &f)? {
                FnStorage::ScalarAttr { file } | FnStorage::MemberAttr { file, .. } => {
                    routed.entry(file).or_default().push((f.name.clone(), value.clone()));
                }
                other => {
                    return Err(Error::InvalidSchema(format!(
                        "unexpected storage {other:?} for non-set-valued function `{}`",
                        f.name
                    )))
                }
            }
        }

        for file in &chain {
            let mut rec = self.base_record(file, key);
            for (attr, value) in routed.remove(file).unwrap_or_default() {
                rec.set(attr, value);
            }
            store.execute(&Request::Insert { record: rec }).map_err(wrap_kernel)?;
        }
        if let Some((file, _)) = routed.into_iter().next() {
            return Err(Error::InvalidSchema(format!(
                "value routed to `{file}`, which is not in the hierarchy of `{entity_type}`"
            )));
        }
        Ok(key)
    }

    /// The skeleton kernel record of `file` for entity `key`: FILE and
    /// key attributes, SYSTEM-set attribute for root entity types, ISA
    /// attributes for subtypes.
    fn base_record(&self, file: &str, key: i64) -> Record {
        let mut rec = Record::new();
        rec.set(FILE_ATTR, Value::str(file));
        rec.set(names::key_attr(file).to_owned(), Value::Int(key));
        if self.schema.entity(file).is_some() {
            rec.set(names::system_set(file), Value::Int(names::SYSTEM_OWNER_KEY));
        }
        for sup in self.schema.supertypes(file) {
            rec.set(names::isa_set(sup, file), Value::Int(key));
        }
        rec
    }

    /// Specialize an existing entity into a subtype (add it to the
    /// subtype's file), enforcing overlap constraints: "the notion of
    /// overlapping constraints is used to indicate whether or not an
    /// entity can belong to more than one terminal entity subtype
    /// within a hierarchy."
    pub fn specialize<K: Kernel>(
        &mut self,
        store: &mut K,
        key: i64,
        subtype: &str,
        values: &[(&str, Value)],
    ) -> Result<()> {
        let sub = self
            .schema
            .subtype(subtype)
            .ok_or_else(|| Error::UnknownEntity(subtype.to_owned()))?
            .clone();
        // Overlap check against sibling terminal subtypes already
        // holding this entity.
        if self.schema.is_terminal(subtype) {
            for other in self.schema.subtypes.clone() {
                if other.name == subtype || !self.schema.is_terminal(&other.name) {
                    continue;
                }
                // Same hierarchy only: share at least one ancestor.
                let mine = self.schema.ancestors(subtype);
                let theirs = self.schema.ancestors(&other.name);
                if !mine.iter().any(|a| theirs.contains(a)) {
                    continue;
                }
                if entity_in_file(store, &other.name, key) {
                    let allowed = self
                        .schema
                        .overlaps
                        .iter()
                        .any(|o| o.allows_pair(subtype, &other.name));
                    if !allowed {
                        return Err(Error::OverlapViolation {
                            subtype: subtype.to_owned(),
                            conflicting: other.name.clone(),
                        });
                    }
                }
            }
        }
        // Ancestor records must exist.
        for sup in &sub.supertypes {
            if !entity_in_file(store, sup, key) {
                return Err(Error::UnknownEntity(format!(
                    "entity #{key} does not exist in supertype `{sup}`"
                )));
            }
        }
        if entity_in_file(store, subtype, key) {
            return Err(Error::InvalidSchema(format!(
                "entity #{key} is already a `{subtype}`"
            )));
        }
        let mut rec = self.base_record(subtype, key);
        for (fname, value) in values {
            let f = self.schema.require_function(subtype, fname)?.clone();
            self.schema.check_value(&f, value)?;
            match fn_storage(&self.schema, subtype, &f)? {
                FnStorage::ScalarAttr { file } | FnStorage::MemberAttr { file, .. }
                    if file == subtype =>
                {
                    rec.set(f.name.clone(), value.clone());
                }
                _ => {
                    return Err(Error::InvalidSchema(format!(
                        "specialize values must be declared on `{subtype}` itself (got `{fname}`)"
                    )))
                }
            }
        }
        store.execute(&Request::Insert { record: rec }).map_err(wrap_kernel)?;
        Ok(())
    }

    /// Assign a scalar or single-valued entity function of an existing
    /// entity.
    pub fn set_function<K: Kernel>(
        &mut self,
        store: &mut K,
        entity_type: &str,
        key: i64,
        function: &str,
        value: Value,
    ) -> Result<()> {
        let f = self.schema.require_function(entity_type, function)?.clone();
        self.schema.check_value(&f, &value)?;
        let file = match fn_storage(&self.schema, entity_type, &f)? {
            FnStorage::ScalarAttr { file } | FnStorage::MemberAttr { file, .. } => file,
            other => {
                return Err(Error::ValueOutOfRange {
                    function: function.to_owned(),
                    got: value.to_string(),
                    why: format!("set-valued storage {other:?}; use add_scalar_value/link"),
                })
            }
        };
        let resp = store
            .execute(&Request::Update {
                query: entity_query(&file, key),
                modifier: abdl::Modifier::new(function.to_owned(), value),
            })
            .map_err(wrap_kernel)?;
        if resp.affected == 0 {
            return Err(Error::UnknownEntity(format!("entity #{key} of `{file}`")));
        }
        Ok(())
    }

    /// Add a value of a *scalar multi-valued* function: materializes a
    /// repeated record (a copy of the entity's representative record
    /// with the new value).
    pub fn add_scalar_value<K: Kernel>(
        &mut self,
        store: &mut K,
        entity_type: &str,
        key: i64,
        function: &str,
        value: Value,
    ) -> Result<()> {
        let f = self.schema.require_function(entity_type, function)?.clone();
        self.schema.check_value(&f, &value)?;
        let file = match fn_storage(&self.schema, entity_type, &f)? {
            FnStorage::ScalarMultiAttr { file } => file,
            other => {
                return Err(Error::ValueOutOfRange {
                    function: function.to_owned(),
                    got: value.to_string(),
                    why: format!("not a scalar multi-valued function (storage {other:?})"),
                })
            }
        };
        let existing = store
            .execute(&Request::retrieve_all(entity_query(&file, key)))
            .map_err(wrap_kernel)?;
        let Some((_, representative)) = existing.first() else {
            return Err(Error::UnknownEntity(format!("entity #{key} of `{file}`")));
        };
        // If the representative still has NULL for the function (no
        // value yet), fill it in place; otherwise insert a repeated
        // record.
        if representative.get_or_null(function).is_null() {
            store
                .execute(&Request::Update {
                    query: entity_query(&file, key),
                    modifier: abdl::Modifier::new(function.to_owned(), value),
                })
                .map_err(wrap_kernel)?;
        } else {
            let mut dup = representative.clone();
            dup.set(function.to_owned(), value);
            store.execute(&Request::Insert { record: dup }).map_err(wrap_kernel)?;
        }
        Ok(())
    }

    /// Establish an entity-valued relationship `function(from) = to`.
    ///
    /// * single-valued: updates the member-side attribute of `from`;
    /// * one-to-many multi-valued: updates the member-side attribute of
    ///   the *range* entity `to`;
    /// * many-to-many: inserts a `LINK_X` pair record.
    pub fn link<K: Kernel>(
        &mut self,
        store: &mut K,
        entity_type: &str,
        from_key: i64,
        function: &str,
        to_key: i64,
    ) -> Result<()> {
        let f = self.schema.require_function(entity_type, function)?.clone();
        match fn_storage(&self.schema, entity_type, &f)? {
            FnStorage::MemberAttr { file, .. } => {
                let resp = store
                    .execute(&Request::Update {
                        query: entity_query(&file, from_key),
                        modifier: abdl::Modifier::new(function.to_owned(), Value::Int(to_key)),
                    })
                    .map_err(wrap_kernel)?;
                if resp.affected == 0 {
                    return Err(Error::UnknownEntity(format!("entity #{from_key} of `{file}`")));
                }
                Ok(())
            }
            FnStorage::RangeMemberAttr { file, .. } => {
                let resp = store
                    .execute(&Request::Update {
                        query: entity_query(&file, to_key),
                        modifier: abdl::Modifier::new(function.to_owned(), Value::Int(from_key)),
                    })
                    .map_err(wrap_kernel)?;
                if resp.affected == 0 {
                    return Err(Error::UnknownEntity(format!("entity #{to_key} of `{file}`")));
                }
                Ok(())
            }
            FnStorage::Link { pair } => {
                let (left_key, right_key) = if pair.left_entity
                    == self.schema.declaring_type(entity_type, function).expect("declared")
                    && pair.left_function == function
                {
                    (from_key, to_key)
                } else {
                    (to_key, from_key)
                };
                let link_key = self.reserve_key(store);
                let mut rec = Record::new();
                rec.set(FILE_ATTR, Value::str(pair.link.clone()));
                rec.set(names::key_attr(&pair.link).to_owned(), Value::Int(link_key));
                rec.set(pair.left_function.clone(), Value::Int(left_key));
                rec.set(pair.right_function.clone(), Value::Int(right_key));
                store.execute(&Request::Insert { record: rec }).map_err(wrap_kernel)?;
                Ok(())
            }
            other => Err(Error::ValueOutOfRange {
                function: function.to_owned(),
                got: to_key.to_string(),
                why: format!("not an entity-valued function (storage {other:?})"),
            }),
        }
    }

    /// Remove an entity-valued relationship `function(from) = to`:
    /// the inverse of [`Loader::link`]. Single-valued and one-to-many
    /// functions have their member-side attribute nulled; many-to-many
    /// pairs have the matching `LINK_X` records deleted.
    pub fn unlink<K: Kernel>(
        &mut self,
        store: &mut K,
        entity_type: &str,
        from_key: i64,
        function: &str,
        to_key: i64,
    ) -> Result<()> {
        let f = self.schema.require_function(entity_type, function)?.clone();
        match fn_storage(&self.schema, entity_type, &f)? {
            FnStorage::MemberAttr { file, .. } => {
                let q = entity_query(&file, from_key)
                    .and_predicate(Predicate::eq(function.to_owned(), Value::Int(to_key)));
                store
                    .execute(&Request::Update {
                        query: q,
                        modifier: abdl::Modifier::new(function.to_owned(), Value::Null),
                    })
                    .map_err(wrap_kernel)?;
                Ok(())
            }
            FnStorage::RangeMemberAttr { file, .. } => {
                let q = entity_query(&file, to_key)
                    .and_predicate(Predicate::eq(function.to_owned(), Value::Int(from_key)));
                store
                    .execute(&Request::Update {
                        query: q,
                        modifier: abdl::Modifier::new(function.to_owned(), Value::Null),
                    })
                    .map_err(wrap_kernel)?;
                Ok(())
            }
            FnStorage::Link { pair } => {
                let (left_key, right_key) = if pair.left_entity
                    == self.schema.declaring_type(entity_type, function).expect("declared")
                    && pair.left_function == function
                {
                    (from_key, to_key)
                } else {
                    (to_key, from_key)
                };
                let q = Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(pair.link.clone())),
                    Predicate::eq(pair.left_function.clone(), Value::Int(left_key)),
                    Predicate::eq(pair.right_function.clone(), Value::Int(right_key)),
                ]);
                store.execute(&Request::Delete { query: q }).map_err(wrap_kernel)?;
                Ok(())
            }
            other => Err(Error::ValueOutOfRange {
                function: function.to_owned(),
                got: to_key.to_string(),
                why: format!("not an entity-valued function (storage {other:?})"),
            }),
        }
    }

    /// DESTROY an entity: delete its records from its file and every
    /// subtype file in its hierarchy ("the entire hierarchy of the
    /// entity type is deleted"), aborting when the entity "is
    /// referenced by a database function".
    pub fn destroy<K: Kernel>(&mut self, store: &mut K, entity_type: &str, key: i64) -> Result<()> {
        self.schema.require_entity_like(entity_type)?;
        // The entity's hierarchy: its type, ancestors, and (transitive)
        // subtypes — keys are shared within this set of files.
        let mut hierarchy = vec![entity_type.to_owned()];
        hierarchy.extend(self.schema.ancestors(entity_type));
        // Include sibling subtypes reachable through ancestors: the
        // entity may have been specialized into several terminal
        // subtypes (overlap constraints permitting), and all of its
        // records share the key.
        for name in hierarchy.clone() {
            collect_subtypes(&self.schema, &name, &mut hierarchy);
        }

        // Reference check (stored-pointer semantics, see DESIGN.md): a
        // member-side attribute named `f` holds keys of the *owner* of
        // set `f`. The entity is referenced when some attribute whose
        // owner type lies in its hierarchy holds `key` — excluding the
        // entity's own records (self-references die with the entity).
        for name in self.schema.entity_like_names() {
            for f in self.schema.own_functions(name) {
                let storage = fn_storage(&self.schema, name, f)?;
                let (file, owner) = match &storage {
                    FnStorage::MemberAttr { file, owner } => (file.clone(), owner.clone()),
                    FnStorage::RangeMemberAttr { file, owner } => (file.clone(), owner.clone()),
                    FnStorage::Link { pair } => {
                        let owner = if pair.left_function == f.name {
                            pair.left_entity.clone()
                        } else {
                            pair.right_entity.clone()
                        };
                        (pair.link.clone(), owner)
                    }
                    _ => continue,
                };
                if !hierarchy.contains(&owner) {
                    continue;
                }
                let mut q = Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(file.clone())),
                    Predicate::eq(f.name.clone(), Value::Int(key)),
                ]);
                if hierarchy.contains(&file) {
                    // Exclude the entity's own records.
                    q = q.and_predicate(Predicate::new(
                        names::key_attr(&file).to_owned(),
                        abdl::RelOp::Ne,
                        Value::Int(key),
                    ));
                }
                let resp = store.execute(&Request::retrieve_all(q)).map_err(wrap_kernel)?;
                if !resp.records().is_empty() {
                    return Err(Error::DestroyReferenced {
                        entity: entity_type.to_owned(),
                        function: f.name.clone(),
                    });
                }
            }
        }
        // Delete the entity's records from every file of its hierarchy.
        for file in hierarchy {
            store
                .execute(&Request::Delete { query: entity_query(&file, key) })
                .map_err(wrap_kernel)?;
        }
        Ok(())
    }
}

fn collect_subtypes(schema: &FunctionalSchema, name: &str, out: &mut Vec<String>) {
    for sub in schema.direct_subtypes(name) {
        if !out.contains(&sub.name) {
            out.push(sub.name.clone());
            collect_subtypes(schema, &sub.name, out);
        }
    }
}

/// The query addressing every kernel record of entity `key` in `file`
/// (repeated records included).
pub fn entity_query(file: &str, key: i64) -> Query {
    Query::conjunction(vec![
        Predicate::eq(FILE_ATTR, Value::str(file)),
        Predicate::eq(names::key_attr(file).to_owned(), Value::Int(key)),
    ])
}

fn entity_in_file<K: Kernel>(store: &mut K, file: &str, key: i64) -> bool {
    store
        .execute(&Request::retrieve_all(entity_query(file, key)))
        .map(|r| !r.records().is_empty())
        .unwrap_or(false)
}

fn wrap_kernel(e: abdl::Error) -> Error {
    Error::Kernel(e)
}

impl crate::schema::OverlapConstraint {
    /// True when `a` and `b` may overlap under this constraint.
    pub fn allows_pair(&self, a: &str, b: &str) -> bool {
        let l = |s: &str| self.left.iter().any(|x| x == s);
        let r = |s: &str| self.right.iter().any(|x| x == s);
        (l(a) && r(b)) || (l(b) && r(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university;
    use abdl::Store;

    fn setup() -> (Loader, Store) {
        let schema = university::schema();
        let mut store = Store::new();
        install(&schema, &mut store);
        (Loader::new(schema), store)
    }

    #[test]
    fn create_subtype_entity_populates_hierarchy() {
        let (mut loader, mut store) = setup();
        let key = loader
            .create_entity(
                &mut store,
                "student",
                &[
                    ("name", Value::str("Jones")),
                    ("age", Value::Int(21)),
                    ("major", Value::str("Computer Science")),
                ],
            )
            .unwrap();
        // Person record with the scalar declared on person.
        let person = store
            .execute(&Request::retrieve_all(entity_query("person", key)))
            .unwrap();
        assert_eq!(person.records().len(), 1);
        let prec = &person.records()[0].1;
        assert_eq!(prec.get("name"), Some(&Value::str("Jones")));
        assert_eq!(prec.get("system_person"), Some(&Value::Int(0)));
        // Student record with the subtype scalar and the ISA attribute.
        let student = store
            .execute(&Request::retrieve_all(entity_query("student", key)))
            .unwrap();
        let srec = &student.records()[0].1;
        assert_eq!(srec.get("major"), Some(&Value::str("Computer Science")));
        assert_eq!(srec.get("person_student"), Some(&Value::Int(key)));
        assert!(srec.get("system_student").is_none());
    }

    #[test]
    fn value_routed_to_declaring_file() {
        let (mut loader, mut store) = setup();
        let fkey = loader
            .create_entity(&mut store, "faculty", &[
                ("ename", Value::str("Hsiao")),
                ("rank", Value::str("full")),
            ])
            .unwrap();
        // ename is declared on employee: must live in the employee file.
        let emp =
            store.execute(&Request::retrieve_all(entity_query("employee", fkey))).unwrap();
        assert_eq!(emp.records()[0].1.get("ename"), Some(&Value::str("Hsiao")));
        let fac = store.execute(&Request::retrieve_all(entity_query("faculty", fkey))).unwrap();
        assert!(fac.records()[0].1.get("ename").is_none());
        assert_eq!(fac.records()[0].1.get("rank"), Some(&Value::str("full")));
    }

    #[test]
    fn single_valued_function_is_member_side() {
        let (mut loader, mut store) = setup();
        let f = loader.create_entity(&mut store, "faculty", &[]).unwrap();
        let s = loader.create_entity(&mut store, "student", &[]).unwrap();
        loader.link(&mut store, "student", s, "advisor", f).unwrap();
        let student = store.execute(&Request::retrieve_all(entity_query("student", s))).unwrap();
        assert_eq!(student.records()[0].1.get("advisor"), Some(&Value::Int(f)));
    }

    #[test]
    fn many_to_many_goes_through_link_file() {
        let (mut loader, mut store) = setup();
        let f = loader.create_entity(&mut store, "faculty", &[]).unwrap();
        let c1 = loader.create_entity(&mut store, "course", &[("title", Value::str("DB"))]).unwrap();
        let c2 = loader.create_entity(&mut store, "course", &[("title", Value::str("OS"))]).unwrap();
        loader.link(&mut store, "faculty", f, "teaching", c1).unwrap();
        // Linking from the inverse side lands in the same pair file.
        loader.link(&mut store, "course", c2, "taught_by", f).unwrap();
        let links = store
            .execute(&Request::retrieve_all(Query::conjunction(vec![Predicate::eq(
                FILE_ATTR, "LINK_1",
            )])))
            .unwrap();
        assert_eq!(links.records().len(), 2);
        for (_, rec) in links.records() {
            assert_eq!(rec.get("teaching"), Some(&Value::Int(f)));
            assert!(matches!(rec.get("taught_by"), Some(Value::Int(k)) if *k == c1 || *k == c2));
        }
    }

    #[test]
    fn scalar_multi_valued_repeats_records() {
        let (mut loader, mut store) = setup();
        let f = loader.create_entity(&mut store, "faculty", &[("rank", Value::str("full"))]).unwrap();
        loader.add_scalar_value(&mut store, "faculty", f, "degrees", Value::str("BS")).unwrap();
        loader.add_scalar_value(&mut store, "faculty", f, "degrees", Value::str("PhD")).unwrap();
        let recs = store.execute(&Request::retrieve_all(entity_query("faculty", f))).unwrap();
        assert_eq!(recs.records().len(), 2, "two repeated records for two degrees");
        // The non-multi-valued attributes are repeated in every record.
        for (_, rec) in recs.records() {
            assert_eq!(rec.get("rank"), Some(&Value::str("full")));
        }
        let degrees: Vec<&Value> =
            recs.records().iter().map(|(_, r)| r.get_or_null("degrees")).collect();
        assert!(degrees.contains(&&Value::str("BS")));
        assert!(degrees.contains(&&Value::str("PhD")));
    }

    #[test]
    fn overlap_constraint_enforced_on_specialize() {
        let (mut loader, mut store) = setup();
        // faculty and support_staff are declared overlappable in the
        // university schema — allowed.
        let e = loader.create_entity(&mut store, "faculty", &[]).unwrap();
        loader.specialize(&mut store, e, "support_staff", &[]).unwrap();
        // student/faculty share no hierarchy: not an overlap question.
        // Add a non-overlappable sibling to prove rejection: remove the
        // overlap constraint and retry.
        let mut schema2 = loader.schema().clone();
        schema2.overlaps.clear();
        let mut loader2 = Loader::new(schema2);
        let mut store2 = Store::new();
        install(loader2.schema(), &mut store2);
        let e2 = loader2.create_entity(&mut store2, "faculty", &[]).unwrap();
        let err = loader2.specialize(&mut store2, e2, "support_staff", &[]).unwrap_err();
        assert!(matches!(err, Error::OverlapViolation { .. }));
    }

    #[test]
    fn destroy_removes_hierarchy_and_respects_references() {
        let (mut loader, mut store) = setup();
        let f = loader.create_entity(&mut store, "faculty", &[]).unwrap();
        let s = loader.create_entity(&mut store, "student", &[]).unwrap();
        loader.link(&mut store, "student", s, "advisor", f).unwrap();
        // Faculty is referenced by advisor(s): DESTROY aborts.
        let err = loader.destroy(&mut store, "faculty", f).unwrap_err();
        assert!(matches!(err, Error::DestroyReferenced { .. }));
        // Destroying the student first clears the reference.
        loader.destroy(&mut store, "student", s).unwrap();
        loader.destroy(&mut store, "faculty", f).unwrap();
        assert_eq!(store.file_len("faculty"), 0);
        assert_eq!(store.file_len("employee"), 0);
        assert_eq!(store.file_len("student"), 0);
        assert_eq!(store.file_len("person"), 0);
    }

    #[test]
    fn range_violations_rejected_at_create() {
        let (mut loader, mut store) = setup();
        let err = loader
            .create_entity(&mut store, "person", &[("age", Value::Int(7))])
            .unwrap_err();
        assert!(matches!(err, Error::ValueOutOfRange { .. }));
    }

    #[test]
    fn uniqueness_constraint_installed() {
        let (mut loader, mut store) = setup();
        loader
            .create_entity(&mut store, "course", &[
                ("title", Value::str("DB")),
                ("semester", Value::str("F87")),
            ])
            .unwrap();
        let err = loader
            .create_entity(&mut store, "course", &[
                ("title", Value::str("DB")),
                ("semester", Value::str("F87")),
            ])
            .unwrap_err();
        assert!(matches!(err, Error::Kernel(abdl::Error::DuplicateKey { .. })));
        // Different semester is fine.
        loader
            .create_entity(&mut store, "course", &[
                ("title", Value::str("DB")),
                ("semester", Value::str("S88")),
            ])
            .unwrap();
    }
}
