//! The functional schema: entity types, subtypes, non-entity types,
//! functions and constraints.
//!
//! This is the Rust rendition of the shared data structures of Chapter
//! IV.A.2 (`fun_dbid_node`, `ent_node`, `gen_sub_node`, `ent_non_node`,
//! `sub_non_node`, `der_non_node`, `overlap_node`, `function_node`).

use crate::error::{Error, Result};
use abdl::Value;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// The scalar kind of a non-entity type (the `ennt_type` character).
#[derive(Debug, Clone, PartialEq)]
pub enum BaseKind {
    /// `STRING(n)`.
    Str {
        /// Maximum length.
        len: u16,
    },
    /// `INTEGER`.
    Int,
    /// `FLOAT`.
    Float,
    /// `BOOLEAN` (an enumeration of true/false in the thesis's model).
    Bool,
    /// `ENUMERATION (lit1, …, litn)`.
    Enum {
        /// The enumeration literals, in declaration order.
        literals: Vec<String>,
    },
}

impl BaseKind {
    /// Maximum rendered length of a value of this kind — what the
    /// network mapping uses for CHARACTER lengths ("the length of the
    /// longest of the enumeration types").
    pub fn max_length(&self) -> u16 {
        match self {
            BaseKind::Str { len } => *len,
            BaseKind::Int => 20,
            BaseKind::Float => 24,
            BaseKind::Bool => 5,
            BaseKind::Enum { literals } => {
                literals.iter().map(|l| l.len() as u16).max().unwrap_or(1)
            }
        }
    }
}

/// Classification of a non-entity type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonEntityClass {
    /// A base type: `TYPE age IS INTEGER RANGE 16..99;`.
    Base,
    /// A subtype of another non-entity type:
    /// `TYPE young_age IS age RANGE 16..25;`.
    Subtype {
        /// The parent non-entity type.
        of: String,
    },
    /// A derived type (`NEW`): `TYPE credit IS NEW INTEGER RANGE 1..5;`.
    Derived {
        /// The underlying type name (a base kind name or another
        /// non-entity type).
        of: String,
    },
}

/// A non-entity type (`ent_non_node` / `sub_non_node` / `der_non_node`).
#[derive(Debug, Clone, PartialEq)]
pub struct NonEntityType {
    /// Type name.
    pub name: String,
    /// Base / subtype / derived classification.
    pub class: NonEntityClass,
    /// The resolved scalar kind.
    pub kind: BaseKind,
    /// Optional integer range constraint (`RANGE lo..hi`).
    pub range: Option<(i64, i64)>,
    /// True for `CONSTANT` declarations.
    pub constant: bool,
    /// The constant's value, when `constant`.
    pub value: Option<Value>,
}

impl NonEntityType {
    /// Check a value against this type's kind and range.
    pub fn check(&self, function: &str, v: &Value) -> Result<()> {
        let bad = |why: &str| Error::ValueOutOfRange {
            function: function.to_owned(),
            got: v.to_string(),
            why: why.to_owned(),
        };
        match (&self.kind, v) {
            (_, Value::Null) => Ok(()),
            (BaseKind::Int, Value::Int(i)) => match self.range {
                Some((lo, hi)) if *i < lo || *i > hi => {
                    Err(bad(&format!("outside range {lo}..{hi}")))
                }
                _ => Ok(()),
            },
            (BaseKind::Float, Value::Float(_)) | (BaseKind::Float, Value::Int(_)) => Ok(()),
            (BaseKind::Str { len }, Value::Str(s)) => {
                if s.len() > *len as usize {
                    Err(bad(&format!("longer than STRING({len})")))
                } else {
                    Ok(())
                }
            }
            (BaseKind::Bool, Value::Str(s)) if s == "true" || s == "false" => Ok(()),
            (BaseKind::Enum { literals }, Value::Str(s)) => {
                if literals.iter().any(|l| l == s) {
                    Ok(())
                } else {
                    Err(bad("not an enumeration literal"))
                }
            }
            _ => Err(bad("wrong value kind")),
        }
    }
}

/// The result type of a function (`fn_type` plus its target pointers).
#[derive(Debug, Clone, PartialEq)]
pub enum FnRange {
    /// An inline `STRING(n)`.
    Str {
        /// Maximum length.
        len: u16,
    },
    /// An inline `INTEGER`.
    Int,
    /// An inline `FLOAT`.
    Float,
    /// An inline `BOOLEAN`.
    Bool,
    /// An inline `ENUMERATION (…)`.
    Enum {
        /// The literals.
        literals: Vec<String>,
    },
    /// A named non-entity type.
    NonEntity(String),
    /// An entity type or subtype.
    Entity(String),
}

/// A function declared on an entity type or subtype (`function_node`).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Result type.
    pub range: FnRange,
    /// `fn_set`: true for `SET OF …` (multi-valued) functions.
    pub set_valued: bool,
}

impl Function {
    /// A scalar (non-entity-valued) function?
    ///
    /// Resolution through named non-entity types requires the schema;
    /// see [`FunctionalSchema::is_entity_valued`].
    pub fn inline_scalar(&self) -> bool {
        matches!(
            self.range,
            FnRange::Str { .. } | FnRange::Int | FnRange::Float | FnRange::Bool | FnRange::Enum { .. }
        )
    }
}

/// An entity type (`ent_node`).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityType {
    /// Entity type name.
    pub name: String,
    /// Functions declared on the type, in declaration order.
    pub functions: Vec<Function>,
}

/// An entity subtype (`gen_sub_node`).
#[derive(Debug, Clone, PartialEq)]
pub struct EntitySubtype {
    /// Subtype name.
    pub name: String,
    /// "A list of one or more entity types and subtypes that are
    /// supertypes or ancestors" (direct supertypes).
    pub supertypes: Vec<String>,
    /// Functions declared on the subtype itself.
    pub functions: Vec<Function>,
}

/// `UNIQUE A, B, C WITHIN D;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniqueConstraint {
    /// The functions whose combined values are unique.
    pub functions: Vec<String>,
    /// The entity type or subtype the constraint is declared for.
    pub within: String,
}

/// `OVERLAP E, F WITH G, H;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapConstraint {
    /// Left subtype list.
    pub left: Vec<String>,
    /// Right subtype list.
    pub right: Vec<String>,
}

/// A many-to-many multi-valued function pair, realized as a `LINK_X`
/// record in the network view and a `LINK_X` pair file in the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct M2MPair {
    /// The synthesized link name (`LINK_1`, `LINK_2`, …).
    pub link: String,
    /// Entity declaring the forward function.
    pub left_entity: String,
    /// The forward function (on `left_entity`, ranging over
    /// `right_entity`).
    pub left_function: String,
    /// Entity declaring the inverse function.
    pub right_entity: String,
    /// The inverse function.
    pub right_function: String,
}

/// A complete functional database schema (`fun_dbid_node`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FunctionalSchema {
    /// Database name.
    pub name: String,
    /// Non-entity types (base, subtype, derived and constants).
    pub non_entities: Vec<NonEntityType>,
    /// Entity types, in declaration order.
    pub entities: Vec<EntityType>,
    /// Entity subtypes, in declaration order.
    pub subtypes: Vec<EntitySubtype>,
    /// Uniqueness constraints.
    pub uniques: Vec<UniqueConstraint>,
    /// Overlap constraints.
    pub overlaps: Vec<OverlapConstraint>,
}

impl FunctionalSchema {
    /// An empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionalSchema { name: name.into(), ..Default::default() }
    }

    /// Look up an entity type.
    pub fn entity(&self, name: &str) -> Option<&EntityType> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Look up an entity subtype.
    pub fn subtype(&self, name: &str) -> Option<&EntitySubtype> {
        self.subtypes.iter().find(|s| s.name == name)
    }

    /// True when `name` is an entity type or subtype.
    pub fn is_entity_like(&self, name: &str) -> bool {
        self.entity(name).is_some() || self.subtype(name).is_some()
    }

    /// Require an entity type or subtype by name.
    pub fn require_entity_like(&self, name: &str) -> Result<()> {
        if self.is_entity_like(name) {
            Ok(())
        } else {
            Err(Error::UnknownEntity(name.to_owned()))
        }
    }

    /// Look up a non-entity type.
    pub fn non_entity(&self, name: &str) -> Option<&NonEntityType> {
        self.non_entities.iter().find(|n| n.name == name)
    }

    /// Functions declared *directly* on an entity type or subtype.
    pub fn own_functions(&self, name: &str) -> &[Function] {
        if let Some(e) = self.entity(name) {
            &e.functions
        } else if let Some(s) = self.subtype(name) {
            &s.functions
        } else {
            &[]
        }
    }

    /// Direct supertypes of a subtype (empty for entity types).
    pub fn supertypes(&self, name: &str) -> &[String] {
        self.subtype(name).map(|s| s.supertypes.as_slice()).unwrap_or(&[])
    }

    /// All ancestors of an entity-like type (transitive supertypes),
    /// nearest first, no duplicates.
    pub fn ancestors(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut queue: Vec<String> = self.supertypes(name).to_vec();
        let mut seen = HashSet::new();
        while let Some(next) = queue.first().cloned() {
            queue.remove(0);
            if seen.insert(next.clone()) {
                queue.extend(self.supertypes(&next).iter().cloned());
                out.push(next);
            }
        }
        out
    }

    /// Functions visible on an entity-like type *including inherited
    /// ones* (subtyping "implies value inheritance"), own functions
    /// first.
    pub fn all_functions(&self, name: &str) -> Vec<&Function> {
        let mut out: Vec<&Function> = self.own_functions(name).iter().collect();
        for anc in self.ancestors(name) {
            // `ancestors` returns owned names; re-borrow the functions
            // from `self` so the references outlive this loop.
            let fns = self
                .entity(&anc)
                .map(|e| &e.functions)
                .or_else(|| self.subtype(&anc).map(|s| &s.functions));
            if let Some(fns) = fns {
                for f in fns {
                    if !out.iter().any(|g| g.name == f.name) {
                        out.push(f);
                    }
                }
            }
        }
        out
    }

    /// Find a function (own or inherited) of an entity-like type.
    pub fn function(&self, entity: &str, function: &str) -> Option<&Function> {
        self.all_functions(entity).into_iter().find(|f| f.name == function)
    }

    /// Require a function.
    pub fn require_function(&self, entity: &str, function: &str) -> Result<&Function> {
        self.function(entity, function).ok_or_else(|| Error::UnknownFunction {
            entity: entity.to_owned(),
            function: function.to_owned(),
        })
    }

    /// The entity-like type (own or ancestor) on which `function` is
    /// *declared*, starting the search at `entity`.
    pub fn declaring_type(&self, entity: &str, function: &str) -> Option<String> {
        if self.own_functions(entity).iter().any(|f| f.name == function) {
            return Some(entity.to_owned());
        }
        self.ancestors(entity)
            .into_iter()
            .find(|anc| self.own_functions(anc).iter().any(|f| f.name == function))
    }

    /// Is this function entity-valued (directly or through a named
    /// non-entity type it is *not* — only `FnRange::Entity` counts)?
    pub fn is_entity_valued(&self, f: &Function) -> bool {
        matches!(&f.range, FnRange::Entity(_))
    }

    /// The target entity of an entity-valued function.
    pub fn entity_range<'f>(&self, f: &'f Function) -> Option<&'f str> {
        match &f.range {
            FnRange::Entity(e) => Some(e.as_str()),
            _ => None,
        }
    }

    /// "An entity type is a terminal type only when it is not a
    /// supertype to any entity subtype." (`en_terminal`/`gsn_terminal`.)
    pub fn is_terminal(&self, name: &str) -> bool {
        !self.subtypes.iter().any(|s| s.supertypes.iter().any(|p| p == name))
    }

    /// Direct subtypes of an entity-like type.
    pub fn direct_subtypes<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EntitySubtype> {
        self.subtypes.iter().filter(move |s| s.supertypes.iter().any(|p| p == name))
    }

    /// All entity-like type names, entities first (declaration order).
    pub fn entity_like_names(&self) -> Vec<&str> {
        self.entities
            .iter()
            .map(|e| e.name.as_str())
            .chain(self.subtypes.iter().map(|s| s.name.as_str()))
            .collect()
    }

    /// Pair up many-to-many multi-valued functions.
    ///
    /// "Entity A has a multi-valued function with entity B declared as
    /// the range entity type. Additionally, entity B must also have a
    /// multi-valued function with entity A as the range entity type."
    /// Pairing scans entity-like types in declaration order and matches
    /// each unpaired multi-valued entity function with the first
    /// unpaired inverse; `LINK_X` numbering follows pairing order.
    pub fn m2m_pairs(&self) -> Vec<M2MPair> {
        let names = self.entity_like_names();
        let mut paired: BTreeSet<(String, String)> = BTreeSet::new();
        let mut out = Vec::new();
        for &a in &names {
            for f in self.own_functions(a) {
                if !f.set_valued || !self.is_entity_valued(f) {
                    continue;
                }
                if paired.contains(&(a.to_owned(), f.name.clone())) {
                    continue;
                }
                let Some(b) = self.entity_range(f) else { continue };
                // Find an unpaired inverse on b.
                let inverse = self.own_functions(b).iter().find(|g| {
                    g.set_valued
                        && self.entity_range(g) == Some(a)
                        && !(a == b && g.name == f.name)
                        && !paired.contains(&(b.to_owned(), g.name.clone()))
                });
                if let Some(g) = inverse {
                    paired.insert((a.to_owned(), f.name.clone()));
                    paired.insert((b.to_owned(), g.name.clone()));
                    out.push(M2MPair {
                        link: format!("LINK_{}", out.len() + 1),
                        left_entity: a.to_owned(),
                        left_function: f.name.clone(),
                        right_entity: b.to_owned(),
                        right_function: g.name.clone(),
                    });
                }
            }
        }
        out
    }

    /// Is this (entity, function) one side of a many-to-many pair?
    pub fn m2m_pair_of(&self, entity: &str, function: &str) -> Option<M2MPair> {
        self.m2m_pairs().into_iter().find(|p| {
            (p.left_entity == entity && p.left_function == function)
                || (p.right_entity == entity && p.right_function == function)
        })
    }

    /// Uniqueness groups declared `WITHIN` a given type.
    pub fn uniques_within<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a UniqueConstraint> {
        self.uniques.iter().filter(move |u| u.within == name)
    }

    /// Validate the schema: name uniqueness, reference resolution,
    /// supertype acyclicity, constraint well-formedness.
    pub fn validate(&self) -> Result<()> {
        let mut names: BTreeMap<&str, &str> = BTreeMap::new();
        for n in &self.non_entities {
            if names.insert(&n.name, "non-entity type").is_some() {
                return Err(Error::InvalidSchema(format!("duplicate type name `{}`", n.name)));
            }
        }
        for e in &self.entities {
            if names.insert(&e.name, "entity type").is_some() {
                return Err(Error::InvalidSchema(format!("duplicate type name `{}`", e.name)));
            }
        }
        for s in &self.subtypes {
            if names.insert(&s.name, "entity subtype").is_some() {
                return Err(Error::InvalidSchema(format!("duplicate type name `{}`", s.name)));
            }
        }
        // Non-entity parents resolve.
        for n in &self.non_entities {
            let parent = match &n.class {
                NonEntityClass::Base => None,
                NonEntityClass::Subtype { of } | NonEntityClass::Derived { of } => Some(of),
            };
            if let Some(of) = parent {
                if !is_builtin_kind(of) && self.non_entity(of).is_none() {
                    return Err(Error::InvalidSchema(format!(
                        "non-entity type `{}` refers to unknown type `{of}`",
                        n.name
                    )));
                }
            }
            if let Some((lo, hi)) = n.range {
                if lo > hi {
                    return Err(Error::InvalidSchema(format!(
                        "empty range {lo}..{hi} on `{}`",
                        n.name
                    )));
                }
            }
        }
        // Supertypes resolve and the ISA graph is acyclic.
        for s in &self.subtypes {
            if s.supertypes.is_empty() {
                return Err(Error::InvalidSchema(format!(
                    "subtype `{}` declares no supertype",
                    s.name
                )));
            }
            for p in &s.supertypes {
                if !self.is_entity_like(p) {
                    return Err(Error::InvalidSchema(format!(
                        "subtype `{}` has unknown supertype `{p}`",
                        s.name
                    )));
                }
            }
            if self.ancestors(&s.name).iter().any(|a| a == &s.name) {
                return Err(Error::InvalidSchema(format!(
                    "subtype `{}` participates in an ISA cycle",
                    s.name
                )));
            }
        }
        // Function ranges resolve; function names unique per type
        // (including inherited names — shadowing would corrupt value
        // inheritance). `all_functions` deduplicates, so walk the
        // declaration chain explicitly here.
        for name in self.entity_like_names() {
            let mut seen = HashSet::new();
            let mut chain = vec![name.to_owned()];
            chain.extend(self.ancestors(name));
            for link in &chain {
                for f in self.own_functions(link) {
                    if !seen.insert(f.name.clone()) {
                        return Err(Error::InvalidSchema(format!(
                            "function `{}` declared more than once on (or inherited into) `{name}`",
                            f.name
                        )));
                    }
                }
            }
            for f in self.all_functions(name) {
                match &f.range {
                    FnRange::NonEntity(t)
                        if self.non_entity(t).is_none() => {
                            return Err(Error::InvalidSchema(format!(
                                "function `{}` of `{name}` has unknown type `{t}`",
                                f.name
                            )));
                        }
                    FnRange::Entity(t)
                        if !self.is_entity_like(t) => {
                            return Err(Error::InvalidSchema(format!(
                                "function `{}` of `{name}` ranges over unknown entity `{t}`",
                                f.name
                            )));
                        }
                    _ => {}
                }
            }
        }
        // Constraints resolve.
        for u in &self.uniques {
            self.require_entity_like(&u.within).map_err(|_| {
                Error::InvalidSchema(format!(
                    "UNIQUE constraint WITHIN unknown type `{}`",
                    u.within
                ))
            })?;
            for fname in &u.functions {
                let f = self.require_function(&u.within, fname).map_err(|_| {
                    Error::InvalidSchema(format!(
                        "UNIQUE constraint names unknown function `{fname}` of `{}`",
                        u.within
                    ))
                })?;
                if f.set_valued {
                    return Err(Error::InvalidSchema(format!(
                        "UNIQUE constraint on set-valued function `{fname}`"
                    )));
                }
            }
        }
        for o in &self.overlaps {
            for sub in o.left.iter().chain(&o.right) {
                if self.subtype(sub).is_none() {
                    return Err(Error::InvalidSchema(format!(
                        "OVERLAP constraint names `{sub}`, which is not an entity subtype"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Resolve a function's *scalar* representation for the network
    /// mapping: the `(kind, length)` a non-entity-valued function maps
    /// to. Entity-valued functions return `None`.
    pub fn scalar_kind(&self, f: &Function) -> Option<BaseKind> {
        match &f.range {
            FnRange::Str { len } => Some(BaseKind::Str { len: *len }),
            FnRange::Int => Some(BaseKind::Int),
            FnRange::Float => Some(BaseKind::Float),
            FnRange::Bool => Some(BaseKind::Bool),
            FnRange::Enum { literals } => Some(BaseKind::Enum { literals: literals.clone() }),
            FnRange::NonEntity(t) => self.non_entity(t).map(|n| n.kind.clone()),
            FnRange::Entity(_) => None,
        }
    }

    /// Check a scalar value against a function's declared type
    /// (including named non-entity ranges).
    pub fn check_value(&self, f: &Function, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        let bad = |why: &str| Error::ValueOutOfRange {
            function: f.name.clone(),
            got: v.to_string(),
            why: why.to_owned(),
        };
        match &f.range {
            FnRange::NonEntity(t) => {
                let n = self
                    .non_entity(t)
                    .ok_or_else(|| Error::InvalidSchema(format!("unknown type `{t}`")))?;
                n.check(&f.name, v)
            }
            FnRange::Str { len } => match v {
                Value::Str(s) if s.len() <= *len as usize => Ok(()),
                Value::Str(_) => Err(bad(&format!("longer than STRING({len})"))),
                _ => Err(bad("expected a string")),
            },
            FnRange::Int => match v {
                Value::Int(_) => Ok(()),
                _ => Err(bad("expected an integer")),
            },
            FnRange::Float => match v {
                Value::Float(_) | Value::Int(_) => Ok(()),
                _ => Err(bad("expected a number")),
            },
            FnRange::Bool => match v {
                Value::Str(s) if s == "true" || s == "false" => Ok(()),
                _ => Err(bad("expected true or false")),
            },
            FnRange::Enum { literals } => match v {
                Value::Str(s) if literals.iter().any(|l| l == s) => Ok(()),
                _ => Err(bad("not an enumeration literal")),
            },
            FnRange::Entity(_) => match v {
                Value::Int(_) => Ok(()), // entity keys
                _ => Err(bad("expected an entity key")),
            },
        }
    }
}

/// Built-in kind names usable as derived-type parents.
fn is_builtin_kind(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "INTEGER" | "FLOAT" | "BOOLEAN" | "STRING"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fun(name: &str, range: FnRange, set_valued: bool) -> Function {
        Function { name: name.into(), range, set_valued }
    }

    /// A miniature of the University schema: person ⟵ student;
    /// faculty/course with a many-to-many teaching/taught_by pair.
    fn mini() -> FunctionalSchema {
        let mut s = FunctionalSchema::new("mini");
        s.non_entities.push(NonEntityType {
            name: "age_type".into(),
            class: NonEntityClass::Base,
            kind: BaseKind::Int,
            range: Some((16, 99)),
            constant: false,
            value: None,
        });
        s.entities.push(EntityType {
            name: "person".into(),
            functions: vec![
                fun("name", FnRange::Str { len: 30 }, false),
                fun("age", FnRange::NonEntity("age_type".into()), false),
            ],
        });
        s.entities.push(EntityType {
            name: "faculty".into(),
            functions: vec![
                fun("rank", FnRange::Enum { literals: vec!["assistant".into(), "full".into()] }, false),
                fun("teaching", FnRange::Entity("course".into()), true),
            ],
        });
        s.entities.push(EntityType {
            name: "course".into(),
            functions: vec![
                fun("title", FnRange::Str { len: 30 }, false),
                fun("taught_by", FnRange::Entity("faculty".into()), true),
            ],
        });
        s.subtypes.push(EntitySubtype {
            name: "student".into(),
            supertypes: vec!["person".into()],
            functions: vec![
                fun("major", FnRange::Str { len: 20 }, false),
                fun("advisor", FnRange::Entity("faculty".into()), false),
            ],
        });
        s.uniques.push(UniqueConstraint {
            functions: vec!["title".into()],
            within: "course".into(),
        });
        s
    }

    #[test]
    fn validates() {
        mini().validate().unwrap();
    }

    #[test]
    fn inheritance_exposes_supertype_functions() {
        let s = mini();
        let fs = s.all_functions("student");
        let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["major", "advisor", "name", "age"]);
        assert_eq!(s.declaring_type("student", "name").as_deref(), Some("person"));
        assert_eq!(s.declaring_type("student", "major").as_deref(), Some("student"));
        assert_eq!(s.declaring_type("student", "ghost"), None);
    }

    #[test]
    fn terminal_flags() {
        let s = mini();
        assert!(!s.is_terminal("person"));
        assert!(s.is_terminal("student"));
        assert!(s.is_terminal("course"));
    }

    #[test]
    fn m2m_pairing_finds_teaching_taught_by() {
        let s = mini();
        let pairs = s.m2m_pairs();
        assert_eq!(pairs.len(), 1);
        let p = &pairs[0];
        assert_eq!(p.link, "LINK_1");
        assert_eq!(p.left_entity, "faculty");
        assert_eq!(p.left_function, "teaching");
        assert_eq!(p.right_entity, "course");
        assert_eq!(p.right_function, "taught_by");
        assert!(s.m2m_pair_of("course", "taught_by").is_some());
        assert!(s.m2m_pair_of("student", "advisor").is_none());
    }

    #[test]
    fn one_to_many_is_not_paired() {
        let mut s = mini();
        // enrolled: student -> SET OF course, with no inverse.
        s.subtypes[0]
            .functions
            .push(fun("enrolled", FnRange::Entity("course".into()), true));
        s.validate().unwrap();
        // Still only the teaching/taught_by pair.
        assert_eq!(s.m2m_pairs().len(), 1);
        assert!(s.m2m_pair_of("student", "enrolled").is_none());
    }

    #[test]
    fn validate_rejects_isa_cycle() {
        let mut s = mini();
        s.subtypes.push(EntitySubtype {
            name: "a".into(),
            supertypes: vec!["b".into()],
            functions: vec![],
        });
        s.subtypes.push(EntitySubtype {
            name: "b".into(),
            supertypes: vec!["a".into()],
            functions: vec![],
        });
        assert!(matches!(s.validate(), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn validate_rejects_function_shadowing() {
        let mut s = mini();
        // student re-declares `name`, shadowing person's.
        s.subtypes[0].functions.push(fun("name", FnRange::Int, false));
        assert!(matches!(s.validate(), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn validate_rejects_unique_on_set_valued() {
        let mut s = mini();
        s.uniques.push(UniqueConstraint {
            functions: vec!["teaching".into()],
            within: "faculty".into(),
        });
        assert!(matches!(s.validate(), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn value_checks_respect_ranges_and_enums() {
        let s = mini();
        let age = s.function("person", "age").unwrap().clone();
        assert!(s.check_value(&age, &Value::Int(20)).is_ok());
        assert!(s.check_value(&age, &Value::Int(7)).is_err());
        assert!(s.check_value(&age, &Value::Null).is_ok());
        let rank = s.function("faculty", "rank").unwrap().clone();
        assert!(s.check_value(&rank, &Value::str("full")).is_ok());
        assert!(s.check_value(&rank, &Value::str("emeritus")).is_err());
        let name = s.function("person", "name").unwrap().clone();
        assert!(s.check_value(&name, &Value::str("x".repeat(31))).is_err());
    }

    #[test]
    fn scalar_kind_resolves_named_types() {
        let s = mini();
        let age = s.function("person", "age").unwrap();
        assert_eq!(s.scalar_kind(age), Some(BaseKind::Int));
        let advisor = s.function("student", "advisor").unwrap();
        assert_eq!(s.scalar_kind(advisor), None);
    }

    #[test]
    fn ancestors_handle_multiple_supertypes() {
        let mut s = mini();
        s.entities.push(EntityType { name: "employee".into(), functions: vec![] });
        s.subtypes.push(EntitySubtype {
            name: "ta".into(),
            supertypes: vec!["student".into(), "employee".into()],
            functions: vec![],
        });
        s.validate().unwrap();
        let anc = s.ancestors("ta");
        assert_eq!(anc, vec!["student".to_owned(), "employee".to_owned(), "person".to_owned()]);
    }
}
