//! The University database schema of Figure 2.1 — the running example
//! of the thesis — with a sample population.
//!
//! Entity types: `person`, `employee`, `department`, `course`.
//! Subtypes: `student` (of person), `faculty` and `support_staff` (of
//! employee). The transformed network schema of Figure 5.1 contains the
//! eight record types person, employee, department, course, student,
//! faculty, support_staff and `LINK_1` (teaching/taught_by), and the
//! sets `system_*`, `person_student`, `employee_faculty`,
//! `employee_support_staff`, `advisor`, `dept`, `supervisor`,
//! `teaching` and `taught_by`.

use crate::ab_map::Loader;
use crate::ddl;
use crate::schema::FunctionalSchema;
use abdl::{Kernel, Store, Value};

/// The University schema in Daplex DDL.
pub const UNIVERSITY_DDL: &str = "
DATABASE university IS

TYPE age_type IS INTEGER RANGE 16..99;
TYPE rank_type IS ENUMERATION (instructor, assistant, associate, full);
TYPE credit_type IS NEW INTEGER RANGE 1..5;
CONSTANT max_load IS 4;

TYPE person IS
  ENTITY
    name : STRING(30);
    age  : age_type;
  END ENTITY;

TYPE employee IS
  ENTITY
    ename  : STRING(30);
    salary : FLOAT;
  END ENTITY;

TYPE department IS
  ENTITY
    dname    : STRING(20);
    building : STRING(20);
  END ENTITY;

TYPE course IS
  ENTITY
    title     : STRING(30);
    semester  : STRING(10);
    credits   : credit_type;
    taught_by : SET OF faculty;
  END ENTITY;

TYPE student IS
  ENTITY SUBTYPE OF person
    major   : STRING(20);
    gpa     : FLOAT;
    advisor : faculty;
  END ENTITY;

TYPE faculty IS
  ENTITY SUBTYPE OF employee
    rank     : rank_type;
    degrees  : SET OF STRING(10);
    dept     : department;
    teaching : SET OF course;
  END ENTITY;

TYPE support_staff IS
  ENTITY SUBTYPE OF employee
    supervisor : employee;
    hours      : INTEGER;
  END ENTITY;

UNIQUE title, semester WITHIN course;
OVERLAP faculty WITH support_staff;

END DATABASE;
";

/// Parse the University schema (panics only on an internal defect —
/// the constant is covered by tests).
pub fn schema() -> FunctionalSchema {
    ddl::parse_schema(UNIVERSITY_DDL).expect("the built-in University schema is valid")
}

/// Keys of the entities created by [`populate`], for tests and examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversityKeys {
    /// `department` keys: CS, Math.
    pub depts: Vec<i64>,
    /// `faculty` keys: Hsiao (full, CS), Lum (associate, CS),
    /// Marshall (full, Math).
    pub faculty: Vec<i64>,
    /// `support_staff` keys: Baker (supervised by Hsiao).
    pub staff: Vec<i64>,
    /// `student` keys: Coker (CS, advisor Hsiao), Rodeck (CS, advisor
    /// Lum), Emdi (Math, advisor Marshall), Zawis (CS, advisor Hsiao).
    pub students: Vec<i64>,
    /// `course` keys: Advanced Database (F87), Operating Systems (F87),
    /// Linear Algebra (S88), Database Design (S88).
    pub courses: Vec<i64>,
}

/// Populate a store (already `install`ed) with the sample University
/// data used by the examples, the integration tests and the worked
/// Chapter-VI transactions.
pub fn populate<K: Kernel>(loader: &mut Loader, store: &mut K) -> crate::Result<UniversityKeys> {
    let mut depts = Vec::new();
    for (dname, building) in [("Computer Science", "Spanagel"), ("Mathematics", "Root")] {
        depts.push(loader.create_entity(
            store,
            "department",
            &[("dname", Value::str(dname)), ("building", Value::str(building))],
        )?);
    }

    let mut faculty = Vec::new();
    for (name, salary, rank, dept) in [
        ("Hsiao", 68_000.0, "full", depts[0]),
        ("Lum", 61_000.0, "associate", depts[0]),
        ("Marshall", 64_000.0, "full", depts[1]),
    ] {
        let k = loader.create_entity(
            store,
            "faculty",
            &[
                ("ename", Value::str(name)),
                ("salary", Value::Float(salary)),
                ("rank", Value::str(rank)),
            ],
        )?;
        loader.link(store, "faculty", k, "dept", dept)?;
        faculty.push(k);
    }
    loader.add_scalar_value(store, "faculty", faculty[0], "degrees", Value::str("BS"))?;
    loader.add_scalar_value(store, "faculty", faculty[0], "degrees", Value::str("PhD"))?;
    loader.add_scalar_value(store, "faculty", faculty[1], "degrees", Value::str("PhD"))?;

    let mut staff = Vec::new();
    let baker = loader.create_entity(
        store,
        "support_staff",
        &[
            ("ename", Value::str("Baker")),
            ("salary", Value::Float(24_000.0)),
            ("hours", Value::Int(40)),
        ],
    )?;
    loader.link(store, "support_staff", baker, "supervisor", faculty[0])?;
    staff.push(baker);

    let mut students = Vec::new();
    for (name, age, major, gpa, advisor) in [
        ("Coker", 28, "Computer Science", 3.6, faculty[0]),
        ("Rodeck", 27, "Computer Science", 3.4, faculty[1]),
        ("Emdi", 26, "Mathematics", 3.8, faculty[2]),
        ("Zawis", 25, "Computer Science", 3.2, faculty[0]),
    ] {
        let k = loader.create_entity(
            store,
            "student",
            &[
                ("name", Value::str(name)),
                ("age", Value::Int(age)),
                ("major", Value::str(major)),
                ("gpa", Value::Float(gpa)),
            ],
        )?;
        loader.link(store, "student", k, "advisor", advisor)?;
        students.push(k);
    }

    let mut courses = Vec::new();
    for (title, semester, credits) in [
        ("Advanced Database", "F87", 4),
        ("Operating Systems", "F87", 4),
        ("Linear Algebra", "S88", 3),
        ("Database Design", "S88", 4),
    ] {
        courses.push(loader.create_entity(
            store,
            "course",
            &[
                ("title", Value::str(title)),
                ("semester", Value::str(semester)),
                ("credits", Value::Int(credits)),
            ],
        )?);
    }
    // teaching/taught_by (many-to-many through LINK_1):
    // Hsiao teaches Advanced Database and Database Design; Lum teaches
    // Operating Systems; Marshall teaches Linear Algebra; Database
    // Design is co-taught by Lum.
    for (f, c) in [
        (faculty[0], courses[0]),
        (faculty[0], courses[3]),
        (faculty[1], courses[1]),
        (faculty[2], courses[2]),
        (faculty[1], courses[3]),
    ] {
        loader.link(store, "faculty", f, "teaching", c)?;
    }

    Ok(UniversityKeys { depts, faculty, staff, students, courses })
}

/// Convenience: schema + installed store + population in one call.
pub fn sample_database() -> crate::Result<(Loader, Store, UniversityKeys)> {
    let schema = schema();
    let mut store = Store::new();
    crate::ab_map::install(&schema, &mut store);
    let mut loader = Loader::new(schema);
    let keys = populate(&mut loader, &mut store)?;
    Ok((loader, store, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ab_map::entity_query;
    use abdl::Request;

    #[test]
    fn schema_parses_and_matches_figure_2_1_census() {
        let s = schema();
        assert_eq!(s.name, "university");
        assert_eq!(s.entities.len(), 4, "person, employee, department, course");
        assert_eq!(s.subtypes.len(), 3, "student, faculty, support_staff");
        assert_eq!(s.non_entities.len(), 4, "age, rank, credit types + max_load");
        assert_eq!(s.uniques.len(), 1);
        assert_eq!(s.overlaps.len(), 1);
        // The one many-to-many pair: teaching/taught_by → LINK_1.
        let pairs = s.m2m_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].link, "LINK_1");
        assert_eq!(pairs[0].left_entity, "course");
        assert_eq!(pairs[0].left_function, "taught_by");
        assert_eq!(pairs[0].right_entity, "faculty");
        assert_eq!(pairs[0].right_function, "teaching");
    }

    #[test]
    fn population_loads() {
        let (_, mut store, keys) = sample_database().unwrap();
        assert_eq!(store.file_len("department"), 2);
        assert_eq!(store.file_len("student"), 4);
        assert_eq!(store.file_len("person"), 4);
        // 3 faculty, but Hsiao has two degrees → one repeated record.
        assert_eq!(store.file_len("faculty"), 4);
        assert_eq!(store.file_len("employee"), 4, "3 faculty + 1 staff");
        assert_eq!(store.file_len("support_staff"), 1);
        assert_eq!(store.file_len("course"), 4);
        assert_eq!(store.file_len("LINK_1"), 5);
        // Spot-check a join: Coker's advisor is Hsiao.
        let resp = store
            .execute(&Request::retrieve_all(entity_query("student", keys.students[0])))
            .unwrap();
        assert_eq!(
            resp.records()[0].1.get("advisor"),
            Some(&Value::Int(keys.faculty[0]))
        );
    }

    #[test]
    fn ddl_round_trips() {
        let s = schema();
        let printed = crate::ddl::print_schema(&s);
        let reparsed = crate::ddl::parse_schema(&printed).unwrap();
        assert_eq!(s, reparsed);
    }
}
