//! Errors for the functional-model layer.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by Daplex parsing, schema validation and DML handling.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Syntax error in Daplex DDL or DML text.
    Parse {
        /// What went wrong.
        msg: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// Schema validation failure.
    InvalidSchema(String),
    /// A statement referenced an unknown entity type or subtype.
    UnknownEntity(String),
    /// A statement referenced an unknown function of an entity.
    UnknownFunction {
        /// The entity searched.
        entity: String,
        /// The missing function.
        function: String,
    },
    /// A value does not fit the declared range/type of a function.
    ValueOutOfRange {
        /// The function.
        function: String,
        /// The offending value, rendered.
        got: String,
        /// Why it does not fit.
        why: String,
    },
    /// A DESTROY was aborted because the entity is referenced by a
    /// database function ("if the entity being deleted is referenced by
    /// a database function, then the DESTROY statement is aborted").
    DestroyReferenced {
        /// The entity type.
        entity: String,
        /// The referencing function.
        function: String,
    },
    /// An overlap-constraint violation: the entity already belongs to a
    /// disjoint terminal subtype.
    OverlapViolation {
        /// Subtype being added.
        subtype: String,
        /// Conflicting subtype the entity already belongs to.
        conflicting: String,
    },
    /// A kernel-level failure surfaced through the functional interface
    /// (duplicate keys, missing FILE keywords, …).
    Kernel(abdl::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, offset } => write!(f, "syntax error at byte {offset}: {msg}"),
            Error::InvalidSchema(msg) => write!(f, "invalid functional schema: {msg}"),
            Error::UnknownEntity(e) => write!(f, "unknown entity type `{e}`"),
            Error::UnknownFunction { entity, function } => {
                write!(f, "entity `{entity}` has no function `{function}`")
            }
            Error::ValueOutOfRange { function, got, why } => {
                write!(f, "value {got} is not valid for function `{function}`: {why}")
            }
            Error::DestroyReferenced { entity, function } => write!(
                f,
                "DESTROY aborted: `{entity}` entity is referenced by database function `{function}`"
            ),
            Error::OverlapViolation { subtype, conflicting } => write!(
                f,
                "overlap violation: entity already belongs to `{conflicting}`, which is disjoint from `{subtype}`"
            ),
            Error::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<abdl::Error> for Error {
    fn from(e: abdl::Error) -> Self {
        Error::Kernel(e)
    }
}
