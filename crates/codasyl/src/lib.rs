#![warn(missing_docs)]

//! # The network data model and CODASYL-DML
//!
//! "The network data model is one of the oldest of the data models …
//! developed in the late 1960's by the Conference on Data System
//! Languages, Database Task Group (CODASYL, DBTG)." A network schema is
//! a collection of *record types* (with typed data items) and *set
//! types* — one-to-many relationships between an owner record type and
//! member record types, with insertion, retention and set-selection
//! rules.
//!
//! This crate provides:
//!
//! * [`schema`] — record types, set types with all three mode families,
//!   SYSTEM-owned sets, uniqueness groups, overlap table slots and the
//!   provenance metadata ([`schema::SetOrigin`]) that the functional→
//!   network transformer records so the CODASYL-DML→ABDL translator
//!   knows how each set is represented in the kernel;
//! * [`ddl`] — a parser and canonical printer for the schema DDL
//!   (`RECORD NAME IS …`, `SET NAME IS …`, `DUPLICATES ARE NOT
//!   ALLOWED FOR …`);
//! * [`dml`] — the CODASYL-DML statement AST and parser: the FIND
//!   family (ANY, CURRENT, DUPLICATE WITHIN, FIRST/LAST/NEXT/PRIOR,
//!   OWNER, WITHIN-CURRENT), GET (three forms), STORE, CONNECT,
//!   DISCONNECT, MODIFY, ERASE \[ALL\], and the host-language `MOVE`
//!   that fills the user work area;
//! * [`uwa`] — the User Work Area (per-record-type item templates);
//! * [`cit`] — the Currency Indicator Table: current of run-unit,
//!   current of each record type and current of each set type;
//! * [`ab_map`] — the network→ABDM mapping (the `AB(network)` store
//!   layout of Banerjee/Wortherly): kernel file per record type, the
//!   record's own key attribute, one attribute per set membership
//!   holding the owner's key.

//! ## Example
//!
//! ```
//! use codasyl::dml::{parse_statements, Statement};
//!
//! let stmts = parse_statements(
//!     "MOVE 'Advanced Database' TO title IN course\n\
//!      FIND ANY course USING title IN course",
//! ).unwrap();
//! assert_eq!(stmts.len(), 2);
//! assert_eq!(stmts[1].verb(), "FIND ANY");
//! ```

pub mod ab_map;
pub mod cit;
pub mod ddl;
pub mod dml;
pub mod error;
pub mod lex;
pub mod schema;
pub mod uwa;

pub use cit::{Currency, CurrencyTable, SetCurrency};
pub use error::{Error, Result};
pub use schema::{
    AttrType, Insertion, NetAttrType, NetworkSchema, OverlapGroup, Owner, RecordType, Retention,
    Selection, SetOrigin, SetType, ValueCheck,
};
pub use uwa::Uwa;

/// The reserved owner name for SYSTEM-owned (singular) sets.
pub const SYSTEM: &str = "SYSTEM";
