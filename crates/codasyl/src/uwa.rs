//! The User Work Area (UWA).
//!
//! "MOVE 'Advanced Database' TO title IN course … serves to initialize
//! the UWA field title in course." The UWA holds one template per
//! record type: the staging area for STORE/MODIFY inputs and GET
//! outputs.

use abdl::{Record, Value};
use std::collections::BTreeMap;

/// Per-user record templates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Uwa {
    templates: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Uwa {
    /// An empty UWA.
    pub fn new() -> Self {
        Uwa::default()
    }

    /// `MOVE value TO item IN record`.
    pub fn set(&mut self, record: &str, item: &str, value: Value) {
        self.templates.entry(record.to_owned()).or_default().insert(item.to_owned(), value);
    }

    /// The current value of `item` in `record`'s template (NULL when
    /// never moved).
    pub fn get(&self, record: &str, item: &str) -> Value {
        self.templates
            .get(record)
            .and_then(|t| t.get(item))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// All items currently set in `record`'s template.
    pub fn items(&self, record: &str) -> Vec<(String, Value)> {
        self.templates
            .get(record)
            .map(|t| t.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default()
    }

    /// Load a retrieved kernel record into the template (GET results
    /// become visible to the host program through the UWA).
    pub fn load_record(&mut self, record: &str, rec: &Record) {
        let template = self.templates.entry(record.to_owned()).or_default();
        for kw in rec.keywords() {
            template.insert(kw.attr.clone(), kw.value.clone());
        }
    }

    /// Load only the given items of a retrieved record.
    pub fn load_items<'a, I: IntoIterator<Item = &'a str>>(
        &mut self,
        record: &str,
        rec: &Record,
        items: I,
    ) {
        let template = self.templates.entry(record.to_owned()).or_default();
        for item in items {
            template.insert(item.to_owned(), rec.get_or_null(item).clone());
        }
    }

    /// Clear a record template (host programs re-initialize between
    /// STOREs).
    pub fn clear(&mut self, record: &str) {
        self.templates.remove(record);
    }

    /// Clear everything.
    pub fn clear_all(&mut self) {
        self.templates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_then_get() {
        let mut uwa = Uwa::new();
        uwa.set("course", "title", Value::str("Advanced Database"));
        assert_eq!(uwa.get("course", "title"), Value::str("Advanced Database"));
        assert_eq!(uwa.get("course", "credits"), Value::Null);
        assert_eq!(uwa.get("student", "major"), Value::Null);
    }

    #[test]
    fn load_record_populates_template() {
        let mut uwa = Uwa::new();
        let rec = Record::from_pairs([("title", Value::str("DB")), ("credits", Value::Int(4))]);
        uwa.load_record("course", &rec);
        assert_eq!(uwa.get("course", "credits"), Value::Int(4));
        assert_eq!(uwa.items("course").len(), 2);
    }

    #[test]
    fn load_items_is_selective_and_nulls_missing() {
        let mut uwa = Uwa::new();
        let rec = Record::from_pairs([("title", Value::str("DB"))]);
        uwa.load_items("course", &rec, ["title", "credits"]);
        assert_eq!(uwa.get("course", "title"), Value::str("DB"));
        assert_eq!(uwa.get("course", "credits"), Value::Null);
    }

    #[test]
    fn clear_forgets_template() {
        let mut uwa = Uwa::new();
        uwa.set("course", "title", Value::str("x"));
        uwa.clear("course");
        assert!(uwa.items("course").is_empty());
    }
}
