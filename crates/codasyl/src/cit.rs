//! The Currency Indicator Table (CIT).
//!
//! "A currency indicator defines the current position within a file by
//! maintaining a value of either (1) null … or (2) the address of a
//! record in the database. … The currency indicator serves as a database
//! pointer by identifying the current record of the run unit, the
//! current record of each record type, \[and\] the current record of each
//! set type."
//!
//! Keys here are *entity keys*: the value of the `<record_type, key>`
//! attribute-value pair of the kernel representation. In `AB(network)`
//! every network record occurrence is exactly one kernel record, so the
//! entity key addresses it; in `AB(functional)` an entity with scalar
//! multi-valued functions is stored as several kernel records sharing
//! one entity key, and the thesis's translation deliberately addresses
//! them *as a group* ("we will update all records whose database key is
//! the same as the database key of the current of the run-unit").

use std::collections::BTreeMap;

/// A record currency: which occurrence of which record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Currency {
    /// The record type.
    pub record: String,
    /// The entity key of the occurrence.
    pub key: i64,
}

impl Currency {
    /// Construct a currency.
    pub fn new(record: impl Into<String>, key: i64) -> Self {
        Currency { record: record.into(), key }
    }
}

/// A set currency: the current occurrence (identified by its owner) and
/// the current member within it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SetCurrency {
    /// Entity key of the owner of the current set occurrence (`None`
    /// until a FIND establishes one).
    pub owner_key: Option<i64>,
    /// The current member record within the occurrence.
    pub member: Option<Currency>,
}

/// The per-run-unit currency indicator table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CurrencyTable {
    run_unit: Option<Currency>,
    records: BTreeMap<String, Currency>,
    sets: BTreeMap<String, SetCurrency>,
}

impl CurrencyTable {
    /// An empty CIT.
    pub fn new() -> Self {
        CurrencyTable::default()
    }

    /// The current of the run-unit.
    pub fn run_unit(&self) -> Option<&Currency> {
        self.run_unit.as_ref()
    }

    /// The current of a record type.
    pub fn record(&self, record: &str) -> Option<&Currency> {
        self.records.get(record)
    }

    /// The current of a set type.
    pub fn set(&self, set: &str) -> Option<&SetCurrency> {
        self.sets.get(set)
    }

    /// Make `record`/`key` the current of the run-unit and the current
    /// of its record type (every successful FIND does this).
    pub fn make_current(&mut self, record: &str, key: i64) {
        let cur = Currency::new(record, key);
        self.records.insert(record.to_owned(), cur.clone());
        self.run_unit = Some(cur);
    }

    /// Update only the run-unit currency (FIND CURRENT: "the only
    /// function of this statement is to update CIT").
    pub fn set_run_unit(&mut self, record: &str, key: i64) {
        self.run_unit = Some(Currency::new(record, key));
    }

    /// Establish the current occurrence of a set (its owner).
    pub fn set_owner(&mut self, set: &str, owner_key: i64) {
        let entry = self.sets.entry(set.to_owned()).or_default();
        if entry.owner_key != Some(owner_key) {
            entry.member = None;
        }
        entry.owner_key = Some(owner_key);
    }

    /// Establish the current member of a set occurrence (also fixes the
    /// occurrence's owner).
    pub fn set_member(&mut self, set: &str, owner_key: i64, record: &str, key: i64) {
        let entry = self.sets.entry(set.to_owned()).or_default();
        entry.owner_key = Some(owner_key);
        entry.member = Some(Currency::new(record, key));
    }

    /// Forget the member currency of a set (used when the current member
    /// is erased or disconnected).
    pub fn clear_set_member(&mut self, set: &str) {
        if let Some(entry) = self.sets.get_mut(set) {
            entry.member = None;
        }
    }

    /// Drop every currency that points at `record`/`key` (after ERASE).
    pub fn forget(&mut self, record: &str, key: i64) {
        let stale =
            |c: &Currency| c.record == record && c.key == key;
        if self.run_unit.as_ref().is_some_and(&stale) {
            self.run_unit = None;
        }
        self.records.retain(|_, c| !stale(c));
        for entry in self.sets.values_mut() {
            if entry.member.as_ref().is_some_and(&stale) {
                entry.member = None;
            }
        }
    }

    /// Clear the whole table (end of run-unit).
    pub fn clear(&mut self) {
        *self = CurrencyTable::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_current_sets_run_unit_and_record() {
        let mut cit = CurrencyTable::new();
        cit.make_current("course", 7);
        assert_eq!(cit.run_unit(), Some(&Currency::new("course", 7)));
        assert_eq!(cit.record("course"), Some(&Currency::new("course", 7)));
        assert!(cit.record("student").is_none());
    }

    #[test]
    fn find_current_updates_only_run_unit() {
        let mut cit = CurrencyTable::new();
        cit.make_current("course", 7);
        cit.set_run_unit("student", 3);
        assert_eq!(cit.run_unit(), Some(&Currency::new("student", 3)));
        // Record currency of student untouched.
        assert!(cit.record("student").is_none());
        assert_eq!(cit.record("course"), Some(&Currency::new("course", 7)));
    }

    #[test]
    fn changing_set_occurrence_clears_member() {
        let mut cit = CurrencyTable::new();
        cit.set_member("advisor", 1, "student", 10);
        assert_eq!(cit.set("advisor").unwrap().member, Some(Currency::new("student", 10)));
        cit.set_owner("advisor", 2);
        assert_eq!(cit.set("advisor").unwrap().owner_key, Some(2));
        assert!(cit.set("advisor").unwrap().member.is_none());
        // Same owner keeps the member.
        cit.set_member("advisor", 2, "student", 11);
        cit.set_owner("advisor", 2);
        assert!(cit.set("advisor").unwrap().member.is_some());
    }

    #[test]
    fn forget_drops_all_matching_currencies() {
        let mut cit = CurrencyTable::new();
        cit.make_current("student", 10);
        cit.set_member("advisor", 1, "student", 10);
        cit.forget("student", 10);
        assert!(cit.run_unit().is_none());
        assert!(cit.record("student").is_none());
        assert!(cit.set("advisor").unwrap().member.is_none());
        // Owner currency survives (it points at the owner, not the member).
        assert_eq!(cit.set("advisor").unwrap().owner_key, Some(1));
    }
}
