//! Network schema DDL: parser and canonical printer.
//!
//! The concrete syntax follows the set declarations shown in Figure 5.1
//! of the thesis (`SET NAME IS …; OWNER IS …; MEMBER IS …; INSERTION IS
//! …; RETENTION IS …; SET SELECTION IS BY …`) together with COBOL-style
//! record declarations:
//!
//! ```text
//! SCHEMA NAME IS university.
//!
//! RECORD NAME IS course.
//!   02 title    TYPE IS CHARACTER 30.
//!   02 credits  TYPE IS FIXED.
//!   DUPLICATES ARE NOT ALLOWED FOR title, semester.
//!
//! SET NAME IS system_course.
//!   OWNER IS SYSTEM.
//!   MEMBER IS course.
//!   INSERTION IS AUTOMATIC.
//!   RETENTION IS FIXED.
//!   SET SELECTION IS BY APPLICATION.
//! ```
//!
//! Clause periods are tolerated but not required; `;` is accepted as an
//! alternative terminator. The printer emits text the parser accepts
//! (round-trip tested).

use crate::error::{Error, Result};
use crate::lex::{Cursor, Tok};
use crate::schema::{
    AttrType, Insertion, NetAttrType, NetworkSchema, Owner, RecordType, Retention, Selection,
    SetType,
};
use crate::SYSTEM;
use std::fmt::Write as _;

/// Parse a network schema from DDL text (validated before returning).
pub fn parse_schema(src: &str) -> Result<NetworkSchema> {
    let mut c = Cursor::new(src)?;
    let mut schema = NetworkSchema::default();

    c.expect_kws(&["SCHEMA", "NAME", "IS"])?;
    schema.name = c.name("schema name")?;
    eat_terminators(&mut c);

    while !c.at_eof() {
        if c.at_kw("RECORD") {
            parse_record(&mut c, &mut schema)?;
        } else if c.at_kw("SET") {
            parse_set(&mut c, &mut schema)?;
        } else {
            return Err(c.err(format!(
                "expected RECORD or SET declaration, found {:?}",
                c.peek()
            )));
        }
    }
    schema.validate()?;
    Ok(schema)
}

fn eat_terminators(c: &mut Cursor) {
    while matches!(c.peek(), Tok::Period | Tok::Semi) {
        c.bump();
    }
}

fn parse_record(c: &mut Cursor, schema: &mut NetworkSchema) -> Result<()> {
    c.expect_kws(&["RECORD", "NAME", "IS"])?;
    let mut record = RecordType::new(c.name("record type name")?);
    eat_terminators(c);

    loop {
        match c.peek().clone() {
            // A level number starts a data-item declaration.
            Tok::Int(level) => {
                c.bump();
                let name = c.name("data item name")?;
                c.expect_kws(&["TYPE", "IS"])?;
                let typ = parse_attr_type(c)?;
                let check = parse_check(c)?;
                eat_terminators(c);
                record.attrs.push(AttrType {
                    name,
                    level: u8::try_from(level)
                        .map_err(|_| c.err(format!("level number {level} out of range")))?,
                    typ,
                    dup_allowed: true,
                    check,
                });
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("DUPLICATES") => {
                c.bump();
                c.expect_kws(&["ARE", "NOT", "ALLOWED", "FOR"])?;
                let items = c.name_list("data item name")?;
                eat_terminators(c);
                for item in &items {
                    if let Some(attr) = record.attrs.iter_mut().find(|a| &a.name == item) {
                        attr.dup_allowed = false;
                    }
                }
                record.unique_groups.push(items);
            }
            _ => break,
        }
    }
    schema.records.push(record);
    Ok(())
}

fn parse_attr_type(c: &mut Cursor) -> Result<NetAttrType> {
    let word = c.name("data type")?;
    match word.to_ascii_uppercase().as_str() {
        "FIXED" | "INTEGER" => Ok(NetAttrType::Int),
        "FLOAT" => {
            let dec = match *c.peek() {
                Tok::Int(d) => {
                    c.bump();
                    u16::try_from(d).map_err(|_| c.err("decimal length out of range"))?
                }
                _ => 2,
            };
            Ok(NetAttrType::Float { dec })
        }
        "CHARACTER" | "CHAR" => {
            let len = c.int("character length")?;
            Ok(NetAttrType::Char {
                len: u16::try_from(len).map_err(|_| c.err("character length out of range"))?,
            })
        }
        other => Err(c.err(format!("unknown data type `{other}`"))),
    }
}

/// Optional integrity-check clause after a data-item type:
/// `RANGE lo..hi` or `VALUES (lit1, …, litn)`.
fn parse_check(c: &mut Cursor) -> Result<Option<crate::schema::ValueCheck>> {
    if c.eat_kw("RANGE") {
        let lo = c.int("range lower bound")?;
        c.expect_tok(Tok::DotDot, "`..` in range")?;
        let hi = c.int("range upper bound")?;
        if lo > hi {
            return Err(c.err(format!("empty range {lo}..{hi}")));
        }
        return Ok(Some(crate::schema::ValueCheck::Range { lo, hi }));
    }
    if c.eat_kw("VALUES") {
        c.expect_tok(Tok::LParen, "`(` opening value list")?;
        let literals = c.name_list("enumeration literal")?;
        c.expect_tok(Tok::RParen, "`)` closing value list")?;
        return Ok(Some(crate::schema::ValueCheck::OneOf { literals }));
    }
    Ok(None)
}

fn parse_set(c: &mut Cursor, schema: &mut NetworkSchema) -> Result<()> {
    c.expect_kws(&["SET", "NAME", "IS"])?;
    let name = c.name("set name")?;
    eat_terminators(c);

    let mut owner: Option<Owner> = None;
    let mut member: Option<String> = None;
    let mut insertion = Insertion::Manual;
    let mut retention = Retention::Optional;
    let mut selection = Selection::Application;

    loop {
        if c.at_kw("OWNER") {
            c.bump();
            c.expect_kw("IS")?;
            let who = c.name("owner record")?;
            owner = Some(if who.eq_ignore_ascii_case(SYSTEM) {
                Owner::System
            } else {
                Owner::Record(who)
            });
            eat_terminators(c);
        } else if c.at_kw("MEMBER") {
            c.bump();
            c.expect_kw("IS")?;
            member = Some(c.name("member record")?);
            eat_terminators(c);
        } else if c.at_kw("INSERTION") {
            c.bump();
            c.expect_kw("IS")?;
            let mode = c.name("insertion mode")?;
            insertion = match mode.to_ascii_uppercase().as_str() {
                "AUTOMATIC" => Insertion::Automatic,
                "MANUAL" => Insertion::Manual,
                other => return Err(c.err(format!("unknown insertion mode `{other}`"))),
            };
            eat_terminators(c);
        } else if c.at_kw("RETENTION") {
            c.bump();
            c.expect_kw("IS")?;
            let mode = c.name("retention mode")?;
            retention = match mode.to_ascii_uppercase().as_str() {
                "FIXED" => Retention::Fixed,
                "OPTIONAL" => Retention::Optional,
                "MANUAL" => Retention::Manual,
                other => return Err(c.err(format!("unknown retention mode `{other}`"))),
            };
            eat_terminators(c);
        } else if c.at_kw("SET") && matches!(c.peek2(), Tok::Word(w) if w.eq_ignore_ascii_case("SELECTION"))
        {
            c.bump();
            c.bump();
            c.expect_kws(&["IS", "BY"])?;
            selection = parse_selection(c)?;
            eat_terminators(c);
        } else {
            break;
        }
    }

    let owner = owner.ok_or_else(|| {
        Error::InvalidSchema(format!("set `{name}` is missing its OWNER clause"))
    })?;
    let member = member.ok_or_else(|| {
        Error::InvalidSchema(format!("set `{name}` is missing its MEMBER clause"))
    })?;
    let mut set = SetType::new(name, owner, member, insertion, retention);
    set.selection = selection;
    schema.sets.push(set);
    Ok(())
}

fn parse_selection(c: &mut Cursor) -> Result<Selection> {
    let mode = c.name("selection mode")?;
    match mode.to_ascii_uppercase().as_str() {
        "APPLICATION" => Ok(Selection::Application),
        "VALUE" => {
            c.expect_kw("OF")?;
            let item = c.name("item name")?;
            c.expect_kw("IN")?;
            let record = c.name("record name")?;
            Ok(Selection::Value { item, record })
        }
        "STRUCTURAL" => {
            let item = c.name("item name")?;
            c.expect_kw("IN")?;
            let record1 = c.name("record name")?;
            c.expect_tok(Tok::Eq, "`=` in structural selection")?;
            let item2 = c.name("item name")?;
            if item2 != item {
                return Err(c.err("structural selection requires the same item on both sides"));
            }
            c.expect_kw("IN")?;
            let record2 = c.name("record name")?;
            Ok(Selection::Structural { item, record1, record2 })
        }
        other => Err(c.err(format!("unknown selection mode `{other}`"))),
    }
}

/// Print a schema as canonical DDL text (Figure 5.1 style).
pub fn print_schema(schema: &NetworkSchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SCHEMA NAME IS {}.", schema.name);
    for r in &schema.records {
        let _ = writeln!(out);
        let _ = writeln!(out, "RECORD NAME IS {}.", r.name);
        for a in &r.attrs {
            match &a.check {
                Some(check) => {
                    let _ =
                        writeln!(out, "  {:02} {} TYPE IS {} {check}.", a.level, a.name, a.typ);
                }
                None => {
                    let _ = writeln!(out, "  {:02} {} TYPE IS {}.", a.level, a.name, a.typ);
                }
            }
        }
        for group in &r.unique_groups {
            let _ = writeln!(out, "  DUPLICATES ARE NOT ALLOWED FOR {}.", group.join(", "));
        }
    }
    for s in &schema.sets {
        let _ = writeln!(out);
        let _ = writeln!(out, "SET NAME IS {}.", s.name);
        let _ = writeln!(out, "  OWNER IS {}.", s.owner);
        let _ = writeln!(out, "  MEMBER IS {}.", s.member);
        let _ = writeln!(out, "  INSERTION IS {}.", s.insertion);
        let _ = writeln!(out, "  RETENTION IS {}.", s.retention);
        let _ = writeln!(out, "  SET SELECTION IS {}.", s.selection);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SetOrigin;

    const UNIV: &str = "
SCHEMA NAME IS university.

RECORD NAME IS person.
  02 name TYPE IS CHARACTER 30.
  02 age TYPE IS FIXED.

RECORD NAME IS student.
  02 major TYPE IS CHARACTER 20.
  02 gpa TYPE IS FLOAT 2.
  DUPLICATES ARE NOT ALLOWED FOR major, gpa.

SET NAME IS system_person.
  OWNER IS SYSTEM.
  MEMBER IS person.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS person_student.
  OWNER IS person.
  MEMBER IS student.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.
";

    #[test]
    fn parses_university_fragment() {
        let s = parse_schema(UNIV).unwrap();
        assert_eq!(s.name, "university");
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.sets.len(), 2);
        let person = s.record("person").unwrap();
        assert_eq!(person.attrs[0].typ, NetAttrType::Char { len: 30 });
        assert_eq!(person.attrs[1].typ, NetAttrType::Int);
        let student = s.record("student").unwrap();
        assert!(!student.attr("major").unwrap().dup_allowed);
        assert_eq!(student.unique_groups, vec![vec!["major".to_owned(), "gpa".to_owned()]]);
        let sys = s.set("system_person").unwrap();
        assert_eq!(sys.owner, Owner::System);
        assert_eq!(sys.insertion, Insertion::Automatic);
        assert_eq!(sys.origin, SetOrigin::Native);
    }

    #[test]
    fn print_parse_round_trip() {
        let s = parse_schema(UNIV).unwrap();
        let printed = print_schema(&s);
        let reparsed = parse_schema(&printed).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn selection_modes_parse() {
        let src = "
SCHEMA NAME IS t.
RECORD NAME IS a.
  02 x TYPE IS FIXED.
RECORD NAME IS b.
  02 x TYPE IS FIXED.
SET NAME IS s1.
  OWNER IS a.
  MEMBER IS b.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY VALUE OF x IN a.
SET NAME IS s2.
  OWNER IS a.
  MEMBER IS b.
  SET SELECTION IS BY STRUCTURAL x IN a = x IN b.
";
        let s = parse_schema(src).unwrap();
        assert_eq!(
            s.set("s1").unwrap().selection,
            Selection::Value { item: "x".into(), record: "a".into() }
        );
        assert_eq!(
            s.set("s2").unwrap().selection,
            Selection::Structural { item: "x".into(), record1: "a".into(), record2: "b".into() }
        );
    }

    #[test]
    fn missing_owner_is_rejected() {
        let src = "SCHEMA NAME IS t. RECORD NAME IS a. 02 x TYPE IS FIXED. SET NAME IS s. MEMBER IS a.";
        assert!(matches!(parse_schema(src), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn unknown_type_is_rejected() {
        let src = "SCHEMA NAME IS t. RECORD NAME IS a. 02 x TYPE IS BLOB 4.";
        assert!(parse_schema(src).is_err());
    }

    #[test]
    fn dangling_set_member_is_rejected_by_validation() {
        let src = "SCHEMA NAME IS t. RECORD NAME IS a. 02 x TYPE IS FIXED.
                   SET NAME IS s. OWNER IS a. MEMBER IS ghost.";
        assert!(matches!(parse_schema(src), Err(Error::InvalidSchema(_))));
    }
}
