//! CODASYL-DML: statement AST and parser.
//!
//! "CODASYL-DML is a procedural language based upon the concept of
//! currency … CODASYL-DML tasks are generally executed in two phases.
//! First, a FIND command identifies a record to be manipulated and then
//! a second DML command is issued to perform an operation."
//!
//! The statement subset is the one the MLDS network interface supports:
//! FIND (all variants of Chapter VI), GET (three forms), STORE,
//! CONNECT, DISCONNECT, MODIFY, ERASE \[ALL\] — plus the host-language
//! `MOVE literal TO item IN record` that initializes the user work area
//! in every worked example of the thesis.

use crate::error::Result;
use crate::lex::{Cursor, Tok};
use abdl::Value;
use std::fmt;

/// Positional FIND variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    /// `FIND FIRST r WITHIN s`
    First,
    /// `FIND LAST r WITHIN s`
    Last,
    /// `FIND NEXT r WITHIN s`
    Next,
    /// `FIND PRIOR r WITHIN s`
    Prior,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Position::First => "FIRST",
            Position::Last => "LAST",
            Position::Next => "NEXT",
            Position::Prior => "PRIOR",
        })
    }
}

/// The three GET forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetSpec {
    /// `GET` — the entire current record of the run-unit.
    CurrentOfRunUnit,
    /// `GET record_type` — the current record, checked to be of the
    /// given type.
    Record(String),
    /// `GET item_1, …, item_n IN record_type`.
    Items {
        /// The requested data items.
        items: Vec<String>,
        /// Their record type.
        record: String,
    },
}

/// A CODASYL-DML statement (or the host-language MOVE).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `MOVE value TO item IN record` — host-language UWA assignment.
    Move {
        /// The literal value moved.
        value: Value,
        /// Target data item.
        item: String,
        /// Target record template in the UWA.
        record: String,
    },
    /// `FIND ANY r USING i1, …, in IN r`.
    FindAny {
        /// Record type sought.
        record: String,
        /// UWA items forming the search criteria.
        items: Vec<String>,
    },
    /// `FIND CURRENT r WITHIN s`.
    FindCurrent {
        /// Record type.
        record: String,
        /// Set type whose current member becomes current of run-unit.
        set: String,
    },
    /// `FIND DUPLICATE WITHIN s USING i1, …, in IN r`.
    FindDuplicate {
        /// The set whose occurrence is searched.
        set: String,
        /// Items that must duplicate the current record's values.
        items: Vec<String>,
        /// Their record type.
        record: String,
    },
    /// `FIND FIRST/LAST/NEXT/PRIOR r WITHIN s`.
    FindPosition {
        /// Which position.
        pos: Position,
        /// Member record type.
        record: String,
        /// The set navigated.
        set: String,
    },
    /// `FIND OWNER WITHIN s`.
    FindOwner {
        /// The set whose current owner is sought.
        set: String,
    },
    /// `FIND r WITHIN s CURRENT USING i1, …, in IN r`.
    FindWithinCurrent {
        /// Member record type.
        record: String,
        /// The set searched (current occurrence).
        set: String,
        /// UWA items forming the search criteria.
        items: Vec<String>,
    },
    /// The GET statement (three forms).
    Get {
        /// Which form.
        spec: GetSpec,
    },
    /// `STORE r` — create a new record occurrence from the UWA.
    Store {
        /// Record type stored.
        record: String,
    },
    /// `CONNECT r TO s1, …, sn`.
    Connect {
        /// Member record type (the current of run-unit).
        record: String,
        /// Sets to connect into.
        sets: Vec<String>,
    },
    /// `DISCONNECT r FROM s1, …, sn`.
    Disconnect {
        /// Member record type (the current of run-unit).
        record: String,
        /// Sets to disconnect from.
        sets: Vec<String>,
    },
    /// `MODIFY r` — rewrite the whole current record from the UWA.
    ModifyRecord {
        /// Record type modified.
        record: String,
    },
    /// `MODIFY i1, …, in IN r` — rewrite specific items from the UWA.
    ModifyItems {
        /// Items to modify.
        items: Vec<String>,
        /// Their record type.
        record: String,
    },
    /// `ERASE r` / `ERASE ALL r`.
    Erase {
        /// Record type erased (the current of run-unit).
        record: String,
        /// True for the ERASE ALL option.
        all: bool,
    },
}

impl Statement {
    /// The verb, for diagnostics and the per-statement fan-out table.
    pub fn verb(&self) -> &'static str {
        match self {
            Statement::Move { .. } => "MOVE",
            Statement::FindAny { .. } => "FIND ANY",
            Statement::FindCurrent { .. } => "FIND CURRENT",
            Statement::FindDuplicate { .. } => "FIND DUPLICATE",
            Statement::FindPosition { pos, .. } => match pos {
                Position::First => "FIND FIRST",
                Position::Last => "FIND LAST",
                Position::Next => "FIND NEXT",
                Position::Prior => "FIND PRIOR",
            },
            Statement::FindOwner { .. } => "FIND OWNER",
            Statement::FindWithinCurrent { .. } => "FIND WITHIN CURRENT",
            Statement::Get { .. } => "GET",
            Statement::Store { .. } => "STORE",
            Statement::Connect { .. } => "CONNECT",
            Statement::Disconnect { .. } => "DISCONNECT",
            Statement::ModifyRecord { .. } | Statement::ModifyItems { .. } => "MODIFY",
            Statement::Erase { all: false, .. } => "ERASE",
            Statement::Erase { all: true, .. } => "ERASE ALL",
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Move { value, item, record } => {
                write!(f, "MOVE {value} TO {item} IN {record}")
            }
            Statement::FindAny { record, items } => {
                write!(f, "FIND ANY {record} USING {} IN {record}", items.join(", "))
            }
            Statement::FindCurrent { record, set } => {
                write!(f, "FIND CURRENT {record} WITHIN {set}")
            }
            Statement::FindDuplicate { set, items, record } => {
                write!(f, "FIND DUPLICATE WITHIN {set} USING {} IN {record}", items.join(", "))
            }
            Statement::FindPosition { pos, record, set } => {
                write!(f, "FIND {pos} {record} WITHIN {set}")
            }
            Statement::FindOwner { set } => write!(f, "FIND OWNER WITHIN {set}"),
            Statement::FindWithinCurrent { record, set, items } => {
                write!(
                    f,
                    "FIND {record} WITHIN {set} CURRENT USING {} IN {record}",
                    items.join(", ")
                )
            }
            Statement::Get { spec } => match spec {
                GetSpec::CurrentOfRunUnit => write!(f, "GET"),
                GetSpec::Record(r) => write!(f, "GET {r}"),
                GetSpec::Items { items, record } => {
                    write!(f, "GET {} IN {record}", items.join(", "))
                }
            },
            Statement::Store { record } => write!(f, "STORE {record}"),
            Statement::Connect { record, sets } => {
                write!(f, "CONNECT {record} TO {}", sets.join(", "))
            }
            Statement::Disconnect { record, sets } => {
                write!(f, "DISCONNECT {record} FROM {}", sets.join(", "))
            }
            Statement::ModifyRecord { record } => write!(f, "MODIFY {record}"),
            Statement::ModifyItems { items, record } => {
                write!(f, "MODIFY {} IN {record}", items.join(", "))
            }
            Statement::Erase { record, all } => {
                if *all {
                    write!(f, "ERASE ALL {record}")
                } else {
                    write!(f, "ERASE {record}")
                }
            }
        }
    }
}

/// Parse a whole CODASYL-DML transaction: a sequence of statements,
/// optionally separated by `;` or `.` (one statement per line in the
/// thesis's examples).
pub fn parse_statements(src: &str) -> Result<Vec<Statement>> {
    let mut c = Cursor::new(src)?;
    let mut out = Vec::new();
    eat_terminators(&mut c);
    while !c.at_eof() {
        out.push(parse_statement(&mut c)?);
        eat_terminators(&mut c);
    }
    Ok(out)
}

/// Parse exactly one statement from `src`.
pub fn parse_statement_str(src: &str) -> Result<Statement> {
    let mut c = Cursor::new(src)?;
    let stmt = parse_statement(&mut c)?;
    eat_terminators(&mut c);
    if !c.at_eof() {
        return Err(c.err(format!("unexpected trailing input: {:?}", c.peek())));
    }
    Ok(stmt)
}

fn eat_terminators(c: &mut Cursor) {
    while matches!(c.peek(), Tok::Semi | Tok::Period) {
        c.bump();
    }
}

fn parse_statement(c: &mut Cursor) -> Result<Statement> {
    let verb = c.name("DML verb")?;
    match verb.to_ascii_uppercase().as_str() {
        "MOVE" => parse_move(c),
        "FIND" => parse_find(c),
        "GET" => parse_get(c),
        "STORE" => Ok(Statement::Store { record: c.name("record type")? }),
        "CONNECT" => {
            let record = c.name("record type")?;
            c.expect_kw("TO")?;
            let sets = c.name_list("set name")?;
            Ok(Statement::Connect { record, sets })
        }
        "DISCONNECT" => {
            let record = c.name("record type")?;
            c.expect_kw("FROM")?;
            let sets = c.name_list("set name")?;
            Ok(Statement::Disconnect { record, sets })
        }
        "MODIFY" => {
            let names = c.name_list("record type or item")?;
            if c.eat_kw("IN") {
                let record = c.name("record type")?;
                Ok(Statement::ModifyItems { items: names, record })
            } else if names.len() == 1 {
                Ok(Statement::ModifyRecord {
                    record: names.into_iter().next().expect("one name"),
                })
            } else {
                Err(c.err("MODIFY item list requires `IN record_type`"))
            }
        }
        "ERASE" => {
            let mut all = false;
            if c.eat_kw("ALL") {
                all = true;
            }
            Ok(Statement::Erase { record: c.name("record type")?, all })
        }
        other => Err(c.err(format!("unknown DML verb `{other}`"))),
    }
}

fn parse_move(c: &mut Cursor) -> Result<Statement> {
    let value = match c.peek().clone() {
        Tok::Str(s) => {
            c.bump();
            Value::Str(s)
        }
        Tok::Int(i) => {
            c.bump();
            Value::Int(i)
        }
        Tok::Float(x) => {
            c.bump();
            Value::Float(x)
        }
        Tok::Word(w) if w.eq_ignore_ascii_case("NULL") => {
            c.bump();
            Value::Null
        }
        other => return Err(c.err(format!("expected literal after MOVE, found {other:?}"))),
    };
    c.expect_kw("TO")?;
    let item = c.name("data item")?;
    c.expect_kw("IN")?;
    let record = c.name("record type")?;
    Ok(Statement::Move { value, item, record })
}

fn parse_find(c: &mut Cursor) -> Result<Statement> {
    if c.eat_kw("ANY") {
        let record = c.name("record type")?;
        c.expect_kw("USING")?;
        let items = c.name_list("data item")?;
        c.expect_kw("IN")?;
        let record2 = c.name("record type")?;
        if record2 != record {
            return Err(c.err(format!(
                "FIND ANY item list must be IN {record}, found `{record2}`"
            )));
        }
        return Ok(Statement::FindAny { record, items });
    }
    if c.eat_kw("CURRENT") {
        let record = c.name("record type")?;
        c.expect_kw("WITHIN")?;
        return Ok(Statement::FindCurrent { record, set: c.name("set name")? });
    }
    if c.eat_kw("DUPLICATE") {
        c.expect_kw("WITHIN")?;
        let set = c.name("set name")?;
        c.expect_kw("USING")?;
        let items = c.name_list("data item")?;
        c.expect_kw("IN")?;
        let record = c.name("record type")?;
        return Ok(Statement::FindDuplicate { set, items, record });
    }
    if c.eat_kw("OWNER") {
        c.expect_kw("WITHIN")?;
        return Ok(Statement::FindOwner { set: c.name("set name")? });
    }
    for (kw, pos) in [
        ("FIRST", Position::First),
        ("LAST", Position::Last),
        ("NEXT", Position::Next),
        ("PRIOR", Position::Prior),
    ] {
        if c.eat_kw(kw) {
            let record = c.name("record type")?;
            c.expect_kw("WITHIN")?;
            return Ok(Statement::FindPosition { pos, record, set: c.name("set name")? });
        }
    }
    // FIND r WITHIN s CURRENT USING items IN r
    let record = c.name("record type")?;
    c.expect_kw("WITHIN")?;
    let set = c.name("set name")?;
    c.expect_kw("CURRENT")?;
    c.expect_kw("USING")?;
    let items = c.name_list("data item")?;
    c.expect_kw("IN")?;
    let record2 = c.name("record type")?;
    if record2 != record {
        return Err(c.err(format!(
            "FIND WITHIN CURRENT item list must be IN {record}, found `{record2}`"
        )));
    }
    Ok(Statement::FindWithinCurrent { record, set, items })
}

fn parse_get(c: &mut Cursor) -> Result<Statement> {
    // Three forms, disambiguated by lookahead:
    //   GET                      (next token is a verb, terminator or EOF)
    //   GET record_type
    //   GET i1, …, in IN record_type
    const VERBS: [&str; 9] =
        ["MOVE", "FIND", "GET", "STORE", "CONNECT", "DISCONNECT", "MODIFY", "ERASE", "PERFORM"];
    match c.peek().clone() {
        Tok::Word(w) if !VERBS.iter().any(|v| w.eq_ignore_ascii_case(v)) => {
            let names = c.name_list("record type or item")?;
            if c.eat_kw("IN") {
                let record = c.name("record type")?;
                Ok(Statement::Get { spec: GetSpec::Items { items: names, record } })
            } else if names.len() == 1 {
                Ok(Statement::Get {
                    spec: GetSpec::Record(names.into_iter().next().expect("one name")),
                })
            } else {
                Err(c.err("GET item list requires `IN record_type`"))
            }
        }
        _ => Ok(Statement::Get { spec: GetSpec::CurrentOfRunUnit }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_thesis_example_transaction() {
        let stmts = parse_statements(
            "MOVE 'Advanced Database' TO title IN course\n\
             FIND ANY course USING title IN course\n\
             GET course",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(
            stmts[0],
            Statement::Move {
                value: Value::str("Advanced Database"),
                item: "title".into(),
                record: "course".into()
            }
        );
        assert_eq!(
            stmts[1],
            Statement::FindAny { record: "course".into(), items: vec!["title".into()] }
        );
        assert_eq!(stmts[2], Statement::Get { spec: GetSpec::Record("course".into()) });
    }

    #[test]
    fn parses_all_find_variants() {
        let cases = [
            ("FIND ANY course USING title, dept IN course", "FIND ANY"),
            ("FIND CURRENT student WITHIN person_student", "FIND CURRENT"),
            ("FIND DUPLICATE WITHIN teaching USING title IN course", "FIND DUPLICATE"),
            ("FIND FIRST student WITHIN person_student", "FIND FIRST"),
            ("FIND LAST student WITHIN person_student", "FIND LAST"),
            ("FIND NEXT student WITHIN person_student", "FIND NEXT"),
            ("FIND PRIOR student WITHIN person_student", "FIND PRIOR"),
            ("FIND OWNER WITHIN dept", "FIND OWNER"),
            ("FIND student WITHIN person_student CURRENT USING major IN student", "FIND WITHIN CURRENT"),
        ];
        for (src, verb) in cases {
            let stmt = parse_statement_str(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(stmt.verb(), verb, "for {src}");
        }
    }

    #[test]
    fn parses_get_forms() {
        assert_eq!(
            parse_statement_str("GET").unwrap(),
            Statement::Get { spec: GetSpec::CurrentOfRunUnit }
        );
        assert_eq!(
            parse_statement_str("GET student").unwrap(),
            Statement::Get { spec: GetSpec::Record("student".into()) }
        );
        assert_eq!(
            parse_statement_str("GET name, major IN student").unwrap(),
            Statement::Get {
                spec: GetSpec::Items {
                    items: vec!["name".into(), "major".into()],
                    record: "student".into()
                }
            }
        );
    }

    #[test]
    fn get_followed_by_find_is_plain_get() {
        let stmts = parse_statements("GET\nFIND OWNER WITHIN dept").unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0], Statement::Get { spec: GetSpec::CurrentOfRunUnit });
    }

    #[test]
    fn parses_updates_and_erase() {
        assert_eq!(
            parse_statement_str("CONNECT support_staff TO supervisor, advisor").unwrap(),
            Statement::Connect {
                record: "support_staff".into(),
                sets: vec!["supervisor".into(), "advisor".into()]
            }
        );
        assert_eq!(
            parse_statement_str("DISCONNECT support_staff FROM supervisor").unwrap(),
            Statement::Disconnect {
                record: "support_staff".into(),
                sets: vec!["supervisor".into()]
            }
        );
        assert_eq!(
            parse_statement_str("MODIFY title, credits IN course").unwrap(),
            Statement::ModifyItems {
                items: vec!["title".into(), "credits".into()],
                record: "course".into()
            }
        );
        assert_eq!(
            parse_statement_str("MODIFY course").unwrap(),
            Statement::ModifyRecord { record: "course".into() }
        );
        assert_eq!(
            parse_statement_str("ERASE course").unwrap(),
            Statement::Erase { record: "course".into(), all: false }
        );
        assert_eq!(
            parse_statement_str("ERASE ALL course").unwrap(),
            Statement::Erase { record: "course".into(), all: true }
        );
    }

    #[test]
    fn move_accepts_all_literal_kinds() {
        for (src, v) in [
            ("MOVE 'CS' TO major IN student", Value::str("CS")),
            ("MOVE 21 TO age IN person", Value::Int(21)),
            ("MOVE 3.8 TO gpa IN student", Value::Float(3.8)),
            ("MOVE NULL TO advisor IN student", Value::Null),
        ] {
            match parse_statement_str(src).unwrap() {
                Statement::Move { value, .. } => assert_eq!(value, v, "for {src}"),
                other => panic!("wrong statement: {other:?}"),
            }
        }
    }

    #[test]
    fn mismatched_using_record_is_rejected() {
        assert!(parse_statement_str("FIND ANY course USING title IN student").is_err());
    }

    #[test]
    fn display_round_trips() {
        let sources = [
            "MOVE 'CS' TO major IN student",
            "FIND ANY course USING title, dept IN course",
            "FIND CURRENT student WITHIN person_student",
            "FIND DUPLICATE WITHIN teaching USING title IN course",
            "FIND FIRST student WITHIN person_student",
            "FIND OWNER WITHIN dept",
            "FIND student WITHIN person_student CURRENT USING major IN student",
            "GET",
            "GET student",
            "GET name, major IN student",
            "STORE course",
            "CONNECT support_staff TO supervisor",
            "DISCONNECT support_staff FROM supervisor",
            "MODIFY course",
            "MODIFY title IN course",
            "ERASE course",
            "ERASE ALL course",
        ];
        for src in sources {
            let stmt = parse_statement_str(src).unwrap();
            let printed = stmt.to_string();
            let reparsed = parse_statement_str(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(stmt, reparsed, "round trip failed for `{src}`");
        }
    }
}
