//! Shared tokenizer for the network DDL and CODASYL-DML.
//!
//! COBOL-flavoured: words (case preserved, matched case-insensitively
//! for keywords), single-quoted strings with `''` escaping, signed
//! numbers, and the punctuation `.` `,` `;` `=` `(` `)`.

use crate::error::{Error, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A word: keyword, record/set/item name.
    Word(String),
    /// A quoted string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `.` clause terminator.
    Period,
    /// `..` range constructor (integrity-check clauses).
    DotDot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// End of input.
    Eof,
}

/// A token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Tokenize `src` completely (trailing [`Tok::Eof`] included).
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        // Skip whitespace and `--`/`*>` comments.
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos + 1 < bytes.len()
                && ((bytes[pos] == b'-' && bytes[pos + 1] == b'-')
                    || (bytes[pos] == b'*' && bytes[pos + 1] == b'>'))
            {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let offset = pos;
        if pos >= bytes.len() {
            out.push(SpannedTok { tok: Tok::Eof, offset });
            return Ok(out);
        }
        let c = bytes[pos];
        let tok = match c {
            b',' => {
                pos += 1;
                Tok::Comma
            }
            b';' => {
                pos += 1;
                Tok::Semi
            }
            b'=' => {
                pos += 1;
                Tok::Eq
            }
            b'(' => {
                pos += 1;
                Tok::LParen
            }
            b')' => {
                pos += 1;
                Tok::RParen
            }
            b'.' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'.') {
                    pos += 1;
                    Tok::DotDot
                } else {
                    Tok::Period
                }
            }
            b'\'' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(Error::Parse {
                            msg: "unterminated string literal".into(),
                            offset,
                        });
                    }
                    if bytes[pos] == b'\'' {
                        if bytes.get(pos + 1) == Some(&b'\'') {
                            s.push('\'');
                            pos += 2;
                        } else {
                            pos += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[pos] as char);
                        pos += 1;
                    }
                }
                Tok::Str(s)
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let start = pos;
                if matches!(bytes[pos], b'-' | b'+') {
                    pos += 1;
                }
                if pos >= bytes.len() || !bytes[pos].is_ascii_digit() {
                    return Err(Error::Parse { msg: "expected digits".into(), offset });
                }
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let mut is_float = false;
                if pos + 1 < bytes.len() && bytes[pos] == b'.' && bytes[pos + 1].is_ascii_digit() {
                    is_float = true;
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("ascii");
                if is_float {
                    Tok::Float(text.parse().map_err(|e| Error::Parse {
                        msg: format!("bad float: {e}"),
                        offset,
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|e| Error::Parse {
                        msg: format!("bad integer: {e}"),
                        offset,
                    })?)
                }
            }
            c if c == b'_' || (c as char).is_alphabetic() => {
                let start = pos;
                while pos < bytes.len() {
                    let c = bytes[pos];
                    if c == b'_' || (c as char).is_alphanumeric() {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                Tok::Word(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
            }
            other => {
                return Err(Error::Parse {
                    msg: format!("unexpected character `{}`", other as char),
                    offset,
                })
            }
        };
        out.push(SpannedTok { tok, offset });
    }
}

/// A cursor over tokens with COBOL-keyword helpers, shared by the DDL
/// and DML parsers.
pub struct Cursor {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Cursor {
    /// Tokenize and wrap.
    pub fn new(src: &str) -> Result<Self> {
        Ok(Cursor { toks: tokenize(src)?, pos: 0 })
    }

    /// Current token.
    pub fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    /// Token after the current one.
    pub fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    /// Offset of the current token.
    pub fn offset(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].offset
    }

    /// Advance and return the consumed token.
    pub fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// At end of input?
    pub fn at_eof(&self) -> bool {
        *self.peek() == Tok::Eof
    }

    /// Parse error at the current offset.
    pub fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse { msg: msg.into(), offset: self.offset() }
    }

    /// Is the current token the given keyword (case-insensitive)?
    pub fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Require the keyword.
    pub fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    /// Require a sequence of keywords.
    pub fn expect_kws(&mut self, kws: &[&str]) -> Result<()> {
        for kw in kws {
            self.expect_kw(kw)?;
        }
        Ok(())
    }

    /// Require a name (word), returned verbatim.
    pub fn name(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Word(w) => {
                self.bump();
                Ok(w)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Require a specific punctuation token.
    pub fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// Consume a period if present (clause terminators are tolerant).
    pub fn eat_period(&mut self) -> bool {
        if *self.peek() == Tok::Period {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parse a comma-separated list of names.
    pub fn name_list(&mut self, what: &str) -> Result<Vec<String>> {
        let mut names = vec![self.name(what)?];
        while *self.peek() == Tok::Comma {
            self.bump();
            names.push(self.name(what)?);
        }
        Ok(names)
    }

    /// Require an integer literal.
    pub fn int(&mut self, what: &str) -> Result<i64> {
        match *self.peek() {
            Tok::Int(i) => {
                self.bump();
                Ok(i)
            }
            _ => Err(self.err(format!("expected {what}, found {:?}", self.peek()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn tokenizes_ddl_clause() {
        assert_eq!(
            toks("02 name TYPE IS CHARACTER 30."),
            vec![
                Tok::Int(2),
                Tok::Word("name".into()),
                Tok::Word("TYPE".into()),
                Tok::Word("IS".into()),
                Tok::Word("CHARACTER".into()),
                Tok::Int(30),
                Tok::Period,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn period_does_not_eat_floats() {
        assert_eq!(toks("3.5."), vec![Tok::Float(3.5), Tok::Period, Tok::Eof]);
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            toks("MOVE 'O''Brien' -- comment\n TO"),
            vec![
                Tok::Word("MOVE".into()),
                Tok::Str("O'Brien".into()),
                Tok::Word("TO".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn cursor_keyword_helpers() {
        let mut c = Cursor::new("SET NAME IS advisor.").unwrap();
        assert!(c.at_kw("set"));
        c.expect_kws(&["SET", "NAME", "IS"]).unwrap();
        assert_eq!(c.name("set name").unwrap(), "advisor");
        assert!(c.eat_period());
        assert!(c.at_eof());
    }
}
