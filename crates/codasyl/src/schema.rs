//! The network schema: record types and set types.
//!
//! Mirrors the shared data structures of Chapter IV.A.1 of the thesis
//! (`net_dbid_node`, `nset_node`, `set_select_node`, `nrec_node`,
//! `nattr_node`) in idiomatic Rust.

use crate::error::{Error, Result};
use crate::SYSTEM;
use std::fmt;

/// A network data-item type (the `nan_type`/`nan_length` pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAttrType {
    /// `FIXED` — an integer.
    Int,
    /// `FLOAT` — a floating-point number with a maximum decimal length.
    Float {
        /// Maximum length of the decimal portion (`nan_dec_length`).
        dec: u16,
    },
    /// `CHARACTER n` — a string of maximum length `n`.
    Char {
        /// Maximum length in characters.
        len: u16,
    },
}

impl fmt::Display for NetAttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAttrType::Int => write!(f, "FIXED"),
            NetAttrType::Float { dec } => write!(f, "FLOAT {dec}"),
            NetAttrType::Char { len } => write!(f, "CHARACTER {len}"),
        }
    }
}

/// An integrity check carried from the functional schema's non-entity
/// types (§V.C: "the task is to maintain the integrity constraints of
/// the non-entity types as they are mapped into the network data
/// types").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueCheck {
    /// An integer range `RANGE lo..hi`.
    Range {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// An enumeration: `VALUES (lit1, …, litn)`.
    OneOf {
        /// The permitted literals.
        literals: Vec<String>,
    },
}

impl ValueCheck {
    /// Does `v` satisfy the check? (NULL always does.)
    pub fn allows(&self, v: &abdl::Value) -> bool {
        match (self, v) {
            (_, abdl::Value::Null) => true,
            (ValueCheck::Range { lo, hi }, abdl::Value::Int(i)) => i >= lo && i <= hi,
            (ValueCheck::Range { .. }, _) => false,
            (ValueCheck::OneOf { literals }, abdl::Value::Str(s)) => {
                literals.iter().any(|l| l == s)
            }
            (ValueCheck::OneOf { .. }, _) => false,
        }
    }
}

impl fmt::Display for ValueCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueCheck::Range { lo, hi } => write!(f, "RANGE {lo}..{hi}"),
            ValueCheck::OneOf { literals } => write!(f, "VALUES ({})", literals.join(", ")),
        }
    }
}

/// A data item (attribute) of a record type — the `nattr_node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrType {
    /// Attribute name.
    pub name: String,
    /// COBOL-style level number (the thesis keeps flat `02` items).
    pub level: u8,
    /// Data type.
    pub typ: NetAttrType,
    /// `nan_dup_flag`: initialized to allow duplicates; cleared by
    /// uniqueness constraints and scalar multi-valued functions.
    pub dup_allowed: bool,
    /// Carried-over integrity check (range or enumeration).
    pub check: Option<ValueCheck>,
}

impl AttrType {
    /// A level-02 attribute that allows duplicates.
    pub fn new(name: impl Into<String>, typ: NetAttrType) -> Self {
        AttrType { name: name.into(), level: 2, typ, dup_allowed: true, check: None }
    }

    /// Builder: attach an integrity check.
    pub fn with_check(mut self, check: ValueCheck) -> Self {
        self.check = Some(check);
        self
    }
}

/// A record type — the `nrec_node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordType {
    /// Record type name.
    pub name: String,
    /// The data items, in declaration order.
    pub attrs: Vec<AttrType>,
    /// `DUPLICATES ARE NOT ALLOWED FOR a, b, …` groups: each group is a
    /// set of attributes whose combined values must be unique.
    pub unique_groups: Vec<Vec<String>>,
}

impl RecordType {
    /// An empty record type.
    pub fn new(name: impl Into<String>) -> Self {
        RecordType { name: name.into(), attrs: Vec::new(), unique_groups: Vec::new() }
    }

    /// Find a data item by name.
    pub fn attr(&self, name: &str) -> Option<&AttrType> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Require a data item by name.
    pub fn require_attr(&self, name: &str) -> Result<&AttrType> {
        self.attr(name).ok_or_else(|| Error::UnknownItem {
            record: self.name.clone(),
            item: name.to_owned(),
        })
    }
}

/// Set insertion mode (`nsn_insert_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insertion {
    /// `AUTOMATIC` — a newly stored member record is inserted into the
    /// current set occurrence automatically.
    Automatic,
    /// `MANUAL` — membership is established by explicit CONNECT.
    Manual,
}

impl fmt::Display for Insertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Insertion::Automatic => "AUTOMATIC",
            Insertion::Manual => "MANUAL",
        })
    }
}

/// Set retention mode (`nsn_retent_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// `FIXED` — records connected to a set occurrence remain in it.
    Fixed,
    /// `OPTIONAL` — members may be disconnected and reconnected.
    Optional,
    /// `MANUAL` — members may change owners manually.
    Manual,
}

impl fmt::Display for Retention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Retention::Fixed => "FIXED",
            Retention::Optional => "OPTIONAL",
            Retention::Manual => "MANUAL",
        })
    }
}

/// Set selection mode (the `set_select_node`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// `BY APPLICATION` — the current set occurrence is used.
    Application,
    /// `BY VALUE OF item IN record`.
    Value {
        /// Item whose value selects the occurrence.
        item: String,
        /// Record carrying the item.
        record: String,
    },
    /// `BY STRUCTURAL item IN record1 = item IN record2`.
    Structural {
        /// Item name equated between the two records.
        item: String,
        /// First record.
        record1: String,
        /// Second record.
        record2: String,
    },
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selection::Application => write!(f, "BY APPLICATION"),
            Selection::Value { item, record } => write!(f, "BY VALUE OF {item} IN {record}"),
            Selection::Structural { item, record1, record2 } => {
                write!(f, "BY STRUCTURAL {item} IN {record1} = {item} IN {record2}")
            }
        }
    }
}

/// A set owner: SYSTEM or a record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Owner {
    /// The schema-defined SYSTEM owner (singular sets).
    System,
    /// An ordinary record type.
    Record(String),
}

impl Owner {
    /// The owner record-type name, when not SYSTEM.
    pub fn record(&self) -> Option<&str> {
        match self {
            Owner::System => None,
            Owner::Record(r) => Some(r),
        }
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::System => f.write_str(SYSTEM),
            Owner::Record(r) => f.write_str(r),
        }
    }
}

/// Provenance of a set type.
///
/// Native network schemas carry [`SetOrigin::Native`]; the functional→
/// network transformer records what each synthesized set *represents*,
/// because the Chapter-VI translation differs per flavor ("Recalling the
/// two types of sets in the functional data model, ISA relationships and
/// Daplex functions…").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetOrigin {
    /// Declared directly in network DDL.
    Native,
    /// The SYSTEM-owned set every transformed entity type belongs to.
    SystemOwned {
        /// The entity record type.
        entity: String,
    },
    /// An ISA (subtype) relationship: owner = supertype, member = subtype.
    Isa {
        /// Supertype record name.
        supertype: String,
        /// Subtype record name.
        subtype: String,
    },
    /// A single-valued entity function `f : domain → range`;
    /// owner = range record, member = domain record.
    SingleValuedFn {
        /// Function name (also the set name).
        function: String,
        /// Domain entity (the member record; the function is declared
        /// on it — "the function belongs to the member record type").
        domain: String,
        /// Range entity (the owner record).
        range: String,
    },
    /// A one-to-many multi-valued function `f : domain → set of range`;
    /// owner = domain record, member = range record.
    MultiValuedFn {
        /// Function name (also the set name).
        function: String,
        /// Domain entity (the owner record; the function "belongs to
        /// the owner record type").
        domain: String,
        /// Range entity (the member record).
        range: String,
    },
    /// One side of a many-to-many pair realized through a `LINK_X`
    /// record: owner = domain record, member = the link record.
    ManyToManyFn {
        /// Function name (also the set name).
        function: String,
        /// Domain entity (the owner record).
        domain: String,
        /// The synthesized link record type name (`LINK_X`).
        link: String,
    },
}

/// A set type — the `nset_node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetType {
    /// Set name.
    pub name: String,
    /// Owner (SYSTEM or a record type).
    pub owner: Owner,
    /// Member record type. (A full CODASYL set may have several member
    /// record types; the thesis's transformed schemas always have one,
    /// and the MLDS network interface restricts itself accordingly.)
    pub member: String,
    /// Insertion mode.
    pub insertion: Insertion,
    /// Retention mode.
    pub retention: Retention,
    /// Set-selection mode.
    pub selection: Selection,
    /// Provenance recorded by the schema transformer.
    pub origin: SetOrigin,
}

impl SetType {
    /// A native set with the given modes.
    pub fn new(
        name: impl Into<String>,
        owner: Owner,
        member: impl Into<String>,
        insertion: Insertion,
        retention: Retention,
    ) -> Self {
        SetType {
            name: name.into(),
            owner,
            member: member.into(),
            insertion,
            retention,
            selection: Selection::Application,
            origin: SetOrigin::Native,
        }
    }
}

/// An overlap constraint group carried over from a functional schema:
/// members of any subtype on the `left` may also belong to subtypes on
/// the `right` (and vice versa).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapGroup {
    /// Left subtype record names.
    pub left: Vec<String>,
    /// Right subtype record names.
    pub right: Vec<String>,
}

impl OverlapGroup {
    /// True when subtypes `a` and `b` are declared overlappable by this
    /// group (in either direction).
    pub fn allows(&self, a: &str, b: &str) -> bool {
        let l = |s: &str| self.left.iter().any(|x| x == s);
        let r = |s: &str| self.right.iter().any(|x| x == s);
        (l(a) && r(b)) || (l(b) && r(a))
    }
}

/// A network database schema — the `net_dbid_node`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkSchema {
    /// Schema (database) name.
    pub name: String,
    /// Record types, in declaration order.
    pub records: Vec<RecordType>,
    /// Set types, in declaration order.
    pub sets: Vec<SetType>,
    /// The overlap table (empty for native network schemas).
    pub overlaps: Vec<OverlapGroup>,
}

impl NetworkSchema {
    /// An empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkSchema { name: name.into(), ..Default::default() }
    }

    /// Look a record type up by name.
    pub fn record(&self, name: &str) -> Option<&RecordType> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Look a record type up by name, mutably.
    pub fn record_mut(&mut self, name: &str) -> Option<&mut RecordType> {
        self.records.iter_mut().find(|r| r.name == name)
    }

    /// Require a record type.
    pub fn require_record(&self, name: &str) -> Result<&RecordType> {
        self.record(name).ok_or_else(|| Error::UnknownRecord(name.to_owned()))
    }

    /// Look a set type up by name.
    pub fn set(&self, name: &str) -> Option<&SetType> {
        self.sets.iter().find(|s| s.name == name)
    }

    /// Require a set type.
    pub fn require_set(&self, name: &str) -> Result<&SetType> {
        self.set(name).ok_or_else(|| Error::UnknownSet(name.to_owned()))
    }

    /// All sets in which `record` is the member.
    pub fn sets_with_member<'a>(&'a self, record: &'a str) -> impl Iterator<Item = &'a SetType> {
        self.sets.iter().filter(move |s| s.member == record)
    }

    /// All sets owned by `record`.
    pub fn sets_with_owner<'a>(&'a self, record: &'a str) -> impl Iterator<Item = &'a SetType> {
        self.sets.iter().filter(move |s| s.owner.record() == Some(record))
    }

    /// True when the schema was produced by the functional→network
    /// transformer (any set has non-native provenance).
    pub fn is_transformed(&self) -> bool {
        self.sets.iter().any(|s| s.origin != SetOrigin::Native)
    }

    /// Validate referential consistency of the schema.
    pub fn validate(&self) -> Result<()> {
        let mut names = std::collections::HashSet::new();
        for r in &self.records {
            if r.name.eq_ignore_ascii_case(SYSTEM) {
                return Err(Error::InvalidSchema("record type may not be named SYSTEM".into()));
            }
            if !names.insert(&r.name) {
                return Err(Error::InvalidSchema(format!("duplicate record type `{}`", r.name)));
            }
            let mut attrs = std::collections::HashSet::new();
            for a in &r.attrs {
                if !attrs.insert(&a.name) {
                    return Err(Error::InvalidSchema(format!(
                        "duplicate data item `{}` in record `{}`",
                        a.name, r.name
                    )));
                }
            }
            for group in &r.unique_groups {
                if group.is_empty() {
                    return Err(Error::InvalidSchema(format!(
                        "empty uniqueness group in record `{}`",
                        r.name
                    )));
                }
                for item in group {
                    r.require_attr(item).map_err(|_| {
                        Error::InvalidSchema(format!(
                            "uniqueness constraint on `{}` names unknown item `{}`",
                            r.name, item
                        ))
                    })?;
                }
            }
        }
        let mut set_names = std::collections::HashSet::new();
        for s in &self.sets {
            if !set_names.insert(&s.name) {
                return Err(Error::InvalidSchema(format!("duplicate set type `{}`", s.name)));
            }
            if let Owner::Record(owner) = &s.owner {
                self.require_record(owner).map_err(|_| {
                    Error::InvalidSchema(format!(
                        "set `{}` owned by unknown record `{}`",
                        s.name, owner
                    ))
                })?;
            }
            self.require_record(&s.member).map_err(|_| {
                Error::InvalidSchema(format!(
                    "set `{}` has unknown member record `{}`",
                    s.name, s.member
                ))
            })?;
        }
        for o in &self.overlaps {
            for sub in o.left.iter().chain(&o.right) {
                self.require_record(sub).map_err(|_| {
                    Error::InvalidSchema(format!("overlap group names unknown record `{sub}`"))
                })?;
            }
        }
        // Kernel-attribute collision check: in the AB representation a
        // record's kernel file carries its key attribute (named after
        // the record type), one keyword per data item, and one keyword
        // per set the record is a *member* of. All of these must be
        // distinct.
        for r in &self.records {
            let mut attrs = std::collections::HashSet::new();
            attrs.insert(r.name.as_str());
            for a in &r.attrs {
                if !attrs.insert(a.name.as_str()) {
                    return Err(Error::InvalidSchema(format!(
                        "data item `{}` of record `{}` collides with its kernel key attribute",
                        a.name, r.name
                    )));
                }
            }
            for s in self.sets_with_member(&r.name) {
                if !attrs.insert(s.name.as_str()) {
                    return Err(Error::InvalidSchema(format!(
                        "set `{}` collides with an attribute of its member record `{}` \
                         in the kernel representation",
                        s.name, r.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NetworkSchema {
        let mut s = NetworkSchema::new("univ");
        let mut person = RecordType::new("person");
        person.attrs.push(AttrType::new("name", NetAttrType::Char { len: 30 }));
        person.attrs.push(AttrType::new("age", NetAttrType::Int));
        let mut student = RecordType::new("student");
        student.attrs.push(AttrType::new("major", NetAttrType::Char { len: 20 }));
        s.records.push(person);
        s.records.push(student);
        s.sets.push(SetType::new(
            "person_student",
            Owner::Record("person".into()),
            "student",
            Insertion::Automatic,
            Retention::Fixed,
        ));
        s.sets.push(SetType::new(
            "system_person",
            Owner::System,
            "person",
            Insertion::Automatic,
            Retention::Fixed,
        ));
        s
    }

    #[test]
    fn lookup_and_membership_queries() {
        let s = sample();
        assert!(s.record("person").is_some());
        assert!(s.require_record("ghost").is_err());
        assert_eq!(s.sets_with_member("student").count(), 1);
        assert_eq!(s.sets_with_owner("person").count(), 1);
        assert_eq!(s.set("system_person").unwrap().owner, Owner::System);
    }

    #[test]
    fn validate_accepts_good_schema() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_member() {
        let mut s = sample();
        s.sets.push(SetType::new(
            "bad",
            Owner::Record("person".into()),
            "ghost",
            Insertion::Manual,
            Retention::Optional,
        ));
        assert!(matches!(s.validate(), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn validate_rejects_duplicate_records_and_items() {
        let mut s = sample();
        s.records.push(RecordType::new("person"));
        assert!(s.validate().is_err());

        let mut s = sample();
        let r = s.record_mut("person").unwrap();
        r.attrs.push(AttrType::new("name", NetAttrType::Int));
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_unique_group() {
        let mut s = sample();
        s.record_mut("person").unwrap().unique_groups.push(vec!["ghost".into()]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn overlap_allows_is_symmetric() {
        let g = OverlapGroup { left: vec!["faculty".into()], right: vec!["support_staff".into()] };
        assert!(g.allows("faculty", "support_staff"));
        assert!(g.allows("support_staff", "faculty"));
        assert!(!g.allows("faculty", "student"));
    }

    #[test]
    fn transformed_detection() {
        let mut s = sample();
        assert!(!s.is_transformed());
        s.sets[0].origin =
            SetOrigin::Isa { supertype: "person".into(), subtype: "student".into() };
        assert!(s.is_transformed());
    }
}
