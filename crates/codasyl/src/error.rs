//! Errors for network schema handling and CODASYL-DML parsing.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the network-model layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Syntax error in schema DDL or DML text.
    Parse {
        /// What went wrong.
        msg: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// Schema validation failure (dangling set owner/member, duplicate
    /// names, bad uniqueness group, …).
    InvalidSchema(String),
    /// A statement referenced an unknown record type.
    UnknownRecord(String),
    /// A statement referenced an unknown set type.
    UnknownSet(String),
    /// A statement referenced an unknown data item of a record type.
    UnknownItem {
        /// The record type searched.
        record: String,
        /// The missing item.
        item: String,
    },
    /// A supplied value does not fit the declared data-item type.
    TypeMismatch {
        /// The record type.
        record: String,
        /// The data item.
        item: String,
        /// The declared type, rendered.
        expected: String,
        /// The offending value, rendered.
        got: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, offset } => write!(f, "syntax error at byte {offset}: {msg}"),
            Error::InvalidSchema(msg) => write!(f, "invalid network schema: {msg}"),
            Error::UnknownRecord(r) => write!(f, "unknown record type `{r}`"),
            Error::UnknownSet(s) => write!(f, "unknown set type `{s}`"),
            Error::UnknownItem { record, item } => {
                write!(f, "record type `{record}` has no data item `{item}`")
            }
            Error::TypeMismatch { record, item, expected, got } => {
                write!(f, "value {got} does not fit `{record}.{item}` (declared {expected})")
            }
        }
    }
}

impl std::error::Error for Error {}
