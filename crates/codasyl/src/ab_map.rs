//! The network→ABDM mapping: the `AB(network)` kernel layout.
//!
//! "The key point in the mapping process is the retention of the network
//! records and sets; the mapping algorithm does, in fact, retain those
//! notions through the use of attribute-based constructs."
//!
//! Layout (after Banerjee/Wortherly, normalized as described in
//! `DESIGN.md`):
//!
//! * one kernel file per record type `R`;
//! * every occurrence carries `<FILE, R>` and `<R, key>` where `key` is
//!   the occurrence's entity key (a unique integer per record type);
//! * one keyword per data item;
//! * for every set `S` in which `R` participates **as a member**, a
//!   keyword `<S, owner-key>` — the entity key of the owner of the set
//!   occurrence the record is connected to, or `NULL` when disconnected.
//!   SYSTEM-owned sets use the distinguished owner key
//!   [`SYSTEM_OWNER_KEY`], so "connected to the (single) SYSTEM
//!   occurrence" is expressible uniformly.
//!
//! Uniqueness groups of a record type become `DUPLICATES ARE NOT
//! ALLOWED` constraints of the kernel file.

use crate::error::{Error, Result};
use crate::schema::{NetAttrType, NetworkSchema, Owner, RecordType};
use abdl::{Kernel, Record, Value, FILE_ATTR};

/// The entity key representing the SYSTEM owner of singular sets.
pub const SYSTEM_OWNER_KEY: i64 = 0;

/// The attribute holding a record occurrence's own entity key is named
/// after its record type (`<course, 17>`).
pub fn key_attr(record_type: &str) -> &str {
    record_type
}

/// Create the kernel files and uniqueness constraints for a network
/// schema (native or transformed).
pub fn install<K: Kernel>(schema: &NetworkSchema, store: &mut K) {
    for r in &schema.records {
        store.create_file(&r.name);
        for group in &r.unique_groups {
            store.add_unique_constraint(&r.name, group.clone());
        }
    }
}

/// Coerce a value into the declared type of a data item.
///
/// Integers widen to floats, numbers stringify into CHARACTER items
/// (the thesis's C implementation stores everything as strings, so this
/// is lenient by design), and CHARACTER values are truncated to the
/// declared maximum length. NULL is always accepted.
pub fn coerce(record: &RecordType, item: &str, value: Value) -> Result<Value> {
    let attr = record.require_attr(item)?;
    if value.is_null() {
        return Ok(Value::Null);
    }
    let mismatch = |value: &Value| Error::TypeMismatch {
        record: record.name.clone(),
        item: item.to_owned(),
        expected: attr.typ.to_string(),
        got: value.to_string(),
    };
    let coerced = coerce_type(record, attr, item, value, &mismatch)?;
    // Integrity checks carried from the functional schema (§V.C).
    if let Some(check) = &attr.check {
        if !check.allows(&coerced) {
            return Err(Error::TypeMismatch {
                record: record.name.clone(),
                item: item.to_owned(),
                expected: format!("{} {check}", attr.typ),
                got: coerced.to_string(),
            });
        }
    }
    Ok(coerced)
}

fn coerce_type(
    record: &RecordType,
    attr: &crate::schema::AttrType,
    item: &str,
    value: Value,
    mismatch: &dyn Fn(&Value) -> Error,
) -> Result<Value> {
    let _ = (record, item);
    match (&attr.typ, value) {
        (NetAttrType::Int, Value::Int(i)) => Ok(Value::Int(i)),
        (NetAttrType::Int, Value::Float(f)) if f.fract() == 0.0 => Ok(Value::Int(f as i64)),
        (NetAttrType::Int, Value::Str(s)) => {
            s.trim().parse::<i64>().map(Value::Int).map_err(|_| mismatch(&Value::Str(s.clone())))
        }
        (NetAttrType::Int, v) => Err(mismatch(&v)),
        (NetAttrType::Float { .. }, Value::Int(i)) => Ok(Value::Float(i as f64)),
        (NetAttrType::Float { .. }, Value::Float(f)) => Ok(Value::Float(f)),
        (NetAttrType::Float { .. }, Value::Str(s)) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| mismatch(&Value::Str(s.clone()))),
        (NetAttrType::Float { .. }, v) => Err(mismatch(&v)),
        (NetAttrType::Char { len }, v) => {
            let mut s = match v {
                Value::Str(s) => s,
                other => other.to_string(),
            };
            if s.len() > *len as usize {
                s.truncate(*len as usize);
            }
            Ok(Value::Str(s))
        }
    }
}

/// Build the kernel record for a new occurrence of `record_type`.
///
/// `items` are (item, value) pairs (values are coerced); `set_links`
/// are (set-name, owner-key-or-NULL) pairs for every set the record
/// type is a member of.
pub fn build_record(
    schema: &NetworkSchema,
    record_type: &str,
    key: i64,
    items: &[(String, Value)],
    set_links: &[(String, Value)],
) -> Result<Record> {
    let rt = schema.require_record(record_type)?;
    let mut rec = Record::new();
    rec.set(FILE_ATTR, Value::str(record_type));
    rec.set(key_attr(record_type).to_owned(), Value::Int(key));
    for (item, value) in items {
        rec.set(item.clone(), coerce(rt, item, value.clone())?);
    }
    for (set, owner) in set_links {
        schema.require_set(set)?;
        rec.set(set.clone(), owner.clone());
    }
    Ok(rec)
}

/// Extract the (item, value) view of a kernel record according to the
/// record type's declared data items (drops FILE / key / set keywords).
pub fn data_items(rt: &RecordType, rec: &Record) -> Vec<(String, Value)> {
    rt.attrs.iter().map(|a| (a.name.clone(), rec.get_or_null(&a.name).clone())).collect()
}

/// The set-membership keywords of a record: which sets the occurrence
/// is connected to and their owner keys.
pub fn set_links(schema: &NetworkSchema, record_type: &str, rec: &Record) -> Vec<(String, Value)> {
    schema
        .sets_with_member(record_type)
        .map(|s| (s.name.clone(), rec.get_or_null(&s.name).clone()))
        .collect()
}

/// For every set a record type is a member of, the initial link value
/// for a freshly stored occurrence: AUTOMATIC sets connect immediately
/// (SYSTEM sets to the SYSTEM occurrence, record-owned sets to the
/// current occurrence per the CIT), MANUAL sets start NULL.
///
/// `current_owner` resolves the current occurrence owner key for a
/// record-owned set (from the CIT); returning `None` leaves the link
/// NULL (no current occurrence).
pub fn initial_links<F>(
    schema: &NetworkSchema,
    record_type: &str,
    mut current_owner: F,
) -> Vec<(String, Value)>
where
    F: FnMut(&str) -> Option<i64>,
{
    schema
        .sets_with_member(record_type)
        .map(|s| {
            let v = match (&s.insertion, &s.owner) {
                (crate::schema::Insertion::Automatic, Owner::System) => {
                    Value::Int(SYSTEM_OWNER_KEY)
                }
                (crate::schema::Insertion::Automatic, Owner::Record(_)) => {
                    current_owner(&s.name).map(Value::Int).unwrap_or(Value::Null)
                }
                (crate::schema::Insertion::Manual, _) => Value::Null,
            };
            (s.name.clone(), v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Insertion, Retention, SetType};
    use abdl::Store;

    fn schema() -> NetworkSchema {
        let mut s = NetworkSchema::new("t");
        let mut course = RecordType::new("course");
        course.attrs.push(AttrType::new("title", NetAttrType::Char { len: 10 }));
        course.attrs.push(AttrType::new("credits", NetAttrType::Int));
        course.attrs.push(AttrType::new("gpa", NetAttrType::Float { dec: 2 }));
        course.unique_groups.push(vec!["title".into()]);
        s.records.push(course);
        s.sets.push(SetType::new(
            "system_course",
            Owner::System,
            "course",
            Insertion::Automatic,
            Retention::Fixed,
        ));
        let mut dept = RecordType::new("department");
        dept.attrs.push(AttrType::new("dname", NetAttrType::Char { len: 10 }));
        s.records.push(dept);
        s.sets.push(SetType::new(
            "offered_by",
            Owner::Record("department".into()),
            "course",
            Insertion::Manual,
            Retention::Optional,
        ));
        s
    }

    #[test]
    fn install_creates_files_and_constraints() {
        let s = schema();
        let mut store = Store::new();
        install(&s, &mut store);
        assert_eq!(store.file_names().count(), 2);
        // Unique title is enforced.
        let rec =
            build_record(&s, "course", 1, &[("title".into(), Value::str("DB"))], &[]).unwrap();
        store.execute(&abdl::Request::Insert { record: rec }).unwrap();
        let rec2 =
            build_record(&s, "course", 2, &[("title".into(), Value::str("DB"))], &[]).unwrap();
        assert!(store.execute(&abdl::Request::Insert { record: rec2 }).is_err());
    }

    #[test]
    fn coercion_rules() {
        let s = schema();
        let rt = s.record("course").unwrap();
        assert_eq!(coerce(rt, "credits", Value::str("4")).unwrap(), Value::Int(4));
        assert_eq!(coerce(rt, "credits", Value::Float(4.0)).unwrap(), Value::Int(4));
        assert!(coerce(rt, "credits", Value::Float(4.5)).is_err());
        assert!(coerce(rt, "credits", Value::str("four")).is_err());
        assert_eq!(coerce(rt, "gpa", Value::Int(3)).unwrap(), Value::Float(3.0));
        // CHARACTER truncates to declared length.
        assert_eq!(
            coerce(rt, "title", Value::str("Advanced Database")).unwrap(),
            Value::str("Advanced D")
        );
        // NULL always accepted; unknown item rejected.
        assert_eq!(coerce(rt, "title", Value::Null).unwrap(), Value::Null);
        assert!(coerce(rt, "ghost", Value::Int(1)).is_err());
    }

    #[test]
    fn build_record_layout() {
        let s = schema();
        let rec = build_record(
            &s,
            "course",
            17,
            &[("title".into(), Value::str("DB")), ("credits".into(), Value::Int(4))],
            &[("system_course".into(), Value::Int(SYSTEM_OWNER_KEY)),
              ("offered_by".into(), Value::Null)],
        )
        .unwrap();
        assert_eq!(rec.file(), Some("course"));
        assert_eq!(rec.get("course"), Some(&Value::Int(17)));
        assert_eq!(rec.get("system_course"), Some(&Value::Int(0)));
        assert!(rec.get("offered_by").unwrap().is_null());
    }

    #[test]
    fn initial_links_follow_insertion_modes() {
        let s = schema();
        let links = initial_links(&s, "course", |_| Some(99));
        let get = |n: &str| links.iter().find(|(k, _)| k == n).unwrap().1.clone();
        assert_eq!(get("system_course"), Value::Int(SYSTEM_OWNER_KEY));
        // offered_by is MANUAL: stays NULL even with a current occurrence.
        assert!(get("offered_by").is_null());
    }

    #[test]
    fn data_items_and_set_links_views() {
        let s = schema();
        let rec = build_record(
            &s,
            "course",
            1,
            &[("title".into(), Value::str("DB"))],
            &[("offered_by".into(), Value::Int(5))],
        )
        .unwrap();
        let rt = s.record("course").unwrap();
        let items = data_items(rt, &rec);
        assert_eq!(items.len(), 3); // title, credits (NULL), gpa (NULL)
        assert_eq!(items[0], ("title".to_owned(), Value::str("DB")));
        let links = set_links(&s, "course", &rec);
        assert!(links.iter().any(|(k, v)| k == "offered_by" && *v == Value::Int(5)));
    }
}
