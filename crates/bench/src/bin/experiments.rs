//! The experiment harness binary: regenerates every table and figure of
//! the thesis (see DESIGN.md's experiment index and EXPERIMENTS.md for
//! paper-vs-measured).
//!
//! ```sh
//! cargo run --release -p mlds-bench --bin experiments          # all
//! cargo run --release -p mlds-bench --bin experiments -- e7 e8 # subset
//! ```

use mlds_bench::{
    e15_report, e16_report, e17_report, e18_report, e19_report, e20_report, e21_report,
    run_experiment, EXPERIMENTS,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in selected {
        let Some((_, desc)) = EXPERIMENTS.iter().find(|(eid, _)| *eid == id) else {
            let last = EXPERIMENTS.last().map(|(eid, _)| *eid).unwrap_or("e1");
            eprintln!("unknown experiment `{id}`; known: e1..{last}");
            std::process::exit(1);
        };
        println!("============================================================");
        println!("{} — {desc}", id.to_uppercase());
        println!("============================================================");
        if id == "e15" {
            // e15 also emits its raw numbers for CI to archive.
            let report = e15_report();
            println!("{}", report.table);
            match std::fs::write("BENCH_PR4.json", &report.json) {
                Ok(()) => eprintln!("wrote BENCH_PR4.json"),
                Err(e) => eprintln!("could not write BENCH_PR4.json: {e}"),
            }
            continue;
        }
        if id == "e16" {
            // e16 also emits its raw numbers for CI to archive.
            let report = e16_report();
            println!("{}", report.table);
            match std::fs::write("BENCH_PR5.json", &report.json) {
                Ok(()) => eprintln!("wrote BENCH_PR5.json"),
                Err(e) => eprintln!("could not write BENCH_PR5.json: {e}"),
            }
            continue;
        }
        if id == "e17" {
            // e17 also emits its raw numbers for CI to archive.
            let report = e17_report();
            println!("{}", report.table);
            match std::fs::write("BENCH_PR6.json", &report.json) {
                Ok(()) => eprintln!("wrote BENCH_PR6.json"),
                Err(e) => eprintln!("could not write BENCH_PR6.json: {e}"),
            }
            continue;
        }
        if id == "e18" {
            // e18 also emits its raw numbers for CI to archive.
            let report = e18_report();
            println!("{}", report.table);
            match std::fs::write("BENCH_PR7.json", &report.json) {
                Ok(()) => eprintln!("wrote BENCH_PR7.json"),
                Err(e) => eprintln!("could not write BENCH_PR7.json: {e}"),
            }
            continue;
        }
        if id == "e20" {
            // e20 also emits its raw numbers for CI to archive.
            let report = e20_report();
            println!("{}", report.table);
            match std::fs::write("BENCH_PR9.json", &report.json) {
                Ok(()) => eprintln!("wrote BENCH_PR9.json"),
                Err(e) => eprintln!("could not write BENCH_PR9.json: {e}"),
            }
            continue;
        }
        if id == "e21" {
            // e21 also emits its raw numbers for CI to archive.
            let report = e21_report();
            println!("{}", report.table);
            match std::fs::write("BENCH_PR10.json", &report.json) {
                Ok(()) => eprintln!("wrote BENCH_PR10.json"),
                Err(e) => eprintln!("could not write BENCH_PR10.json: {e}"),
            }
            continue;
        }
        if id == "e19" {
            // e19 also emits its raw numbers for CI to archive.
            let report = e19_report();
            println!("{}", report.table);
            match std::fs::write("BENCH_PR8.json", &report.json) {
                Ok(()) => eprintln!("wrote BENCH_PR8.json"),
                Err(e) => eprintln!("could not write BENCH_PR8.json: {e}"),
            }
            continue;
        }
        match run_experiment(id) {
            Some(out) => println!("{out}"),
            None => eprintln!("experiment `{id}` failed to run"),
        }
    }
}
