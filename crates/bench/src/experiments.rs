//! The experiment harness: one function per table/figure of the thesis
//! (E1–E10 of DESIGN.md). Each returns the rendered table; the
//! `experiments` binary prints them.

use crate::workload;
use abdl::{Kernel, Store};
use std::fmt::Write as _;
use std::time::Instant;

/// Experiment ids with one-line descriptions.
pub const EXPERIMENTS: [(&str, &str); 21] = [
    ("e1", "Figure 2.1/2.2 — the University Daplex schema census"),
    ("e2", "Figure 2.3 — ABDM records, keyword predicates and DNF queries"),
    ("e3", "Figure 3.3 — the AB(functional) University kernel layout"),
    ("e4", "Figure 5.1 — the transformed network schema"),
    ("e5", "Figures 5.2–5.5 — per-construct transformation examples"),
    ("e6", "Chapter VI — worked CODASYL-DML→ABDL translations"),
    ("e7", "MBDS claim 1 — response time vs number of backends"),
    ("e8", "MBDS claim 2 — response-time invariance under proportional growth"),
    ("e9", "§III.B — mapping-strategy ablation (one-step vs per-transaction)"),
    ("e10", "Chapter VI — ABDL request fan-out per CODASYL-DML statement"),
    ("e11", "Figure 1.2 — one kernel, five languages: per-interface ABDL fan-out"),
    ("e12", "Directory-index ablation — records examined, indexed vs full scan"),
    ("e13", "Fault tolerance — availability vs replication factor, and recovery cost"),
    ("e14", "Durability — controller recovery time vs WAL length and snapshot interval"),
    ("e15", "Broadcast-tax ablation — unique index, scoped routing, parallel writes, group commit"),
    ("e16", "Failover — hot-standby promotion vs cold recovery under churn"),
    ("e17", "Socket transport — out-of-process overhead and retry cost under frame loss"),
    ("e18", "Concurrent front door — throughput and latency vs session count"),
    ("e19", "Model checker — failover state-space growth and mutation kill table"),
    ("e20", "Parallel read flights — throughput vs read fraction, sessions and backends"),
    ("e21", "Elastic cluster — rebalance throughput vs foreground degradation"),
];

/// Run one experiment by id.
pub fn run_experiment(id: &str) -> Option<String> {
    match id {
        "e1" => Some(e1()),
        "e2" => Some(e2()),
        "e3" => Some(e3()),
        "e4" => Some(e4()),
        "e5" => Some(e5()),
        "e6" => Some(e6()),
        "e7" => Some(e7()),
        "e8" => Some(e8()),
        "e9" => Some(e9()),
        "e10" => Some(e10()),
        "e11" => Some(e11()),
        "e12" => Some(e12()),
        "e13" => Some(e13()),
        "e14" => Some(e14()),
        "e15" => Some(e15()),
        "e16" => Some(e16()),
        "e17" => Some(e17()),
        "e18" => Some(e18()),
        "e19" => Some(e19()),
        "e20" => Some(e20()),
        "e21" => Some(e21()),
        _ => None,
    }
}

// ----- E1 -------------------------------------------------------------

/// Schema census of the University database.
pub fn e1() -> String {
    let s = daplex::university::schema();
    let mut out = String::new();
    let _ = writeln!(out, "database: {}", s.name);
    let _ = writeln!(out, "{:<16} {:<14} {:<30}", "construct", "kind", "detail");
    for n in &s.non_entities {
        let kind = if n.constant { "constant" } else { "non-entity" };
        let _ = writeln!(out, "{:<16} {:<14} {:?}", n.name, kind, n.kind);
    }
    for e in &s.entities {
        let fns: Vec<&str> = e.functions.iter().map(|f| f.name.as_str()).collect();
        let _ = writeln!(out, "{:<16} {:<14} functions: {}", e.name, "entity", fns.join(", "));
    }
    for sub in &s.subtypes {
        let fns: Vec<&str> = sub.functions.iter().map(|f| f.name.as_str()).collect();
        let _ = writeln!(
            out,
            "{:<16} {:<14} ISA {}; functions: {}",
            sub.name,
            "subtype",
            sub.supertypes.join(", "),
            fns.join(", ")
        );
    }
    for u in &s.uniques {
        let _ = writeln!(out, "{:<16} {:<14} {} WITHIN {}", "UNIQUE", "constraint", u.functions.join(", "), u.within);
    }
    for o in &s.overlaps {
        let _ = writeln!(out, "{:<16} {:<14} {} WITH {}", "OVERLAP", "constraint", o.left.join(", "), o.right.join(", "));
    }
    let pairs = s.m2m_pairs();
    for p in &pairs {
        let _ = writeln!(
            out,
            "{:<16} {:<14} {}.{} ↔ {}.{}",
            p.link, "m:n pair", p.left_entity, p.left_function, p.right_entity, p.right_function
        );
    }
    out
}

// ----- E2 -------------------------------------------------------------

/// The ABDM record format and query semantics, demonstrated.
pub fn e2() -> String {
    use abdl::{Predicate, Query, Record, RelOp, Value};
    let mut out = String::new();
    let mut rec = Record::from_pairs([
        ("FILE", Value::str("course")),
        ("course", Value::Int(17)),
        ("title", Value::str("Advanced Database")),
        ("credits", Value::Int(4)),
    ]);
    rec.body = Some("offered in Spanagel Hall".into());
    let _ = writeln!(out, "an ABDM record (attribute-value pairs + record body):");
    let _ = writeln!(out, "  {rec}");
    let queries = [
        "((FILE = course) and (title = 'Advanced Database'))",
        "((FILE = course) and (credits > 4))",
        "(((FILE = course) and (credits >= 4)) or ((FILE = course) and (title = 'x')))",
    ];
    let _ = writeln!(out, "\nkeyword predicates / DNF queries against it:");
    for q in queries {
        let query: Query = match abdl::parse::parse_request(&format!("RETRIEVE {q} (*)")) {
            Ok(abdl::Request::Retrieve { query, .. }) => query,
            _ => unreachable!("static query"),
        };
        let _ = writeln!(out, "  {q:<75} -> {}", query.matches(&rec));
    }
    let p = Predicate::new("credits", RelOp::Le, Value::Float(4.5));
    let _ = writeln!(out, "  cross-type numeric predicate (credits <= 4.5)               -> {}", p.matches(&rec));
    out
}

// ----- E3 -------------------------------------------------------------

/// The `AB(functional)` layout: per-file kernel attributes, observed
/// from a populated store (asterisked values of Figure 3.3 are the
/// relationship-dependent entity keys).
pub fn e3() -> String {
    let (_, mut store, _) = daplex::university::sample_database().expect("sample db");
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} {:>8}  kernel attributes", "file", "records");
    let files: Vec<String> = store.file_names().map(str::to_owned).collect();
    for file in files {
        let resp = store
            .execute(&abdl::Request::retrieve_all(abdl::Query::conjunction(vec![
                abdl::Predicate::eq(abdl::FILE_ATTR, abdl::Value::str(file.clone())),
            ])))
            .expect("retrieve all");
        let mut attrs: Vec<String> = Vec::new();
        for (_, rec) in resp.records() {
            for a in rec.attrs() {
                if !attrs.iter().any(|x| x == a) {
                    attrs.push(a.to_owned());
                }
            }
        }
        let _ = writeln!(out, "{:<16} {:>8}  <{}>", file, resp.records().len(), attrs.join(">, <"));
    }
    out
}

// ----- E4 -------------------------------------------------------------

/// Figure 5.1: the transformed network schema, in DDL.
pub fn e4() -> String {
    let net = transform::transform(&daplex::university::schema()).expect("transform");
    codasyl::ddl::print_schema(&net)
}

// ----- E5 -------------------------------------------------------------

/// Figures 5.2–5.5: one entity type and one subtype with their network
/// representations.
pub fn e5() -> String {
    let s = daplex::university::schema();
    let net = transform::transform(&s).expect("transform");
    let mut out = String::new();

    let _ = writeln!(out, "-- Figure 5.2/5.3: the `course` entity type --");
    let _ = writeln!(out, "functional declaration:");
    for f in s.own_functions("course") {
        let set = if f.set_valued { "SET OF " } else { "" };
        let _ = writeln!(out, "    {} : {set}{:?};", f.name, f.range);
    }
    let _ = writeln!(out, "network representation:");
    let course = net.record("course").expect("course record");
    for a in &course.attrs {
        let dup = if a.dup_allowed { "" } else { "   [DUPLICATES NOT ALLOWED]" };
        let _ = writeln!(out, "    02 {} TYPE IS {}.{dup}", a.name, a.typ);
    }
    for set in net.sets.iter().filter(|x| x.member == "course" || x.owner.record() == Some("course")) {
        let _ = writeln!(
            out,
            "    SET {} (owner {}, member {}, {}/{})",
            set.name, set.owner, set.member, set.insertion, set.retention
        );
    }

    let _ = writeln!(out, "\n-- Figure 5.4/5.5: the `student` entity subtype --");
    let _ = writeln!(out, "functional declaration: ENTITY SUBTYPE OF person");
    for f in s.own_functions("student") {
        let _ = writeln!(out, "    {} : {:?};", f.name, f.range);
    }
    let _ = writeln!(out, "network representation:");
    let student = net.record("student").expect("student record");
    for a in &student.attrs {
        let _ = writeln!(out, "    02 {} TYPE IS {}.", a.name, a.typ);
    }
    for set in net.sets.iter().filter(|x| x.member == "student") {
        let _ = writeln!(
            out,
            "    SET {} (owner {}, member {}, {}/{})",
            set.name, set.owner, set.member, set.insertion, set.retention
        );
    }
    out
}

// ----- E6 -------------------------------------------------------------

/// The worked Chapter-VI examples with their generated ABDL.
pub fn e6() -> String {
    let mut m = mlds::Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).expect("create");
    m.populate_university("university").expect("populate");
    let mut s = m.connect_codasyl("coker", "university").expect("connect");

    let scripts = [
        ("FIND ANY (§VI.B.1)", "MOVE 'Advanced Database' TO title IN course\nFIND ANY course USING title IN course"),
        ("GET (§VI.C)", "GET course"),
        ("FIND FIRST (§VI.B.4)", "FIND FIRST course WITHIN system_course"),
        ("FIND NEXT (from RB)", "FIND NEXT course WITHIN system_course"),
        ("FIND CURRENT (§VI.B.2)", "FIND CURRENT course WITHIN system_course"),
        ("FIND OWNER (§VI.B.5)", "MOVE 'Computer Science' TO major IN student\nFIND ANY student USING major IN student\nFIND OWNER WITHIN advisor"),
        ("STORE (§VI.G)", "MOVE 'Compilers' TO title IN course\nMOVE 'S88' TO semester IN course\nMOVE 3 TO credits IN course\nSTORE course"),
        ("MODIFY (§VI.F)", "MOVE 4 TO credits IN course\nMODIFY credits IN course"),
        ("DISCONNECT (§VI.E)", "MOVE 'Mathematics' TO major IN student\nFIND ANY student USING major IN student\nDISCONNECT student FROM advisor"),
        ("CONNECT (§VI.D)", "CONNECT student TO advisor"),
        ("ERASE (§VI.H)", "MOVE 'Compilers' TO title IN course\nFIND ANY course USING title IN course\nERASE course"),
    ];
    let mut out = String::new();
    for (label, script) in scripts {
        let _ = writeln!(out, "== {label} ==");
        match m.execute_codasyl(&mut s, script) {
            Ok(results) => {
                for r in results {
                    let _ = writeln!(out, "  > {}", r.statement);
                    for req in &r.abdl {
                        let _ = writeln!(out, "      {req}");
                    }
                    if !r.display.is_empty() {
                        let _ = writeln!(out, "      => {}", r.display);
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "  !! {e}");
            }
        }
    }
    out
}

// ----- E7 / E8 ---------------------------------------------------------

const E7_DB: usize = 40_000;
const E7_SELECT: usize = 4_000;
const BACKENDS: [usize; 7] = [1, 2, 4, 6, 8, 12, 16];

/// MBDS claim 1: response time vs backends, fixed database.
pub fn e7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "database: {E7_DB} records; retrieval selects {E7_SELECT}");
    let _ = writeln!(out, "{:>9} {:>16} {:>9} {:>7}", "backends", "response (ms)", "speedup", "ideal");
    let mut base = None;
    for n in BACKENDS {
        let mut cluster = mbds::SimCluster::unreplicated(n);
        workload::load_flat(&mut cluster, E7_DB);
        cluster.reset_clock();
        cluster.execute(&workload::range_retrieval(E7_SELECT)).expect("retrieval");
        let ms = cluster.last_response_us() / 1000.0;
        let base_ms = *base.get_or_insert(ms);
        let _ = writeln!(out, "{n:>9} {ms:>16.1} {:>8.2}x {n:>6}x", base_ms / ms);
    }
    out
}

/// MBDS claim 2: response-time invariance under proportional growth.
pub fn e8() -> String {
    let per_backend = E7_DB / 8;
    let mut out = String::new();
    let _ = writeln!(out, "{per_backend} records and {} selected per backend", E7_SELECT / 8);
    let _ = writeln!(out, "{:>9} {:>10} {:>16} {:>8}", "backends", "records", "response (ms)", "ratio");
    let mut base = None;
    for n in BACKENDS {
        let mut cluster = mbds::SimCluster::unreplicated(n);
        workload::load_flat(&mut cluster, per_backend * n);
        cluster.reset_clock();
        cluster.execute(&workload::range_retrieval((E7_SELECT / 8) * n)).expect("retrieval");
        let ms = cluster.last_response_us() / 1000.0;
        let base_ms = *base.get_or_insert(ms);
        let _ = writeln!(out, "{n:>9} {:>10} {ms:>16.1} {:>8.3}", per_backend * n, ms / base_ms);
    }
    out
}

// ----- E9 -------------------------------------------------------------

/// Mapping-strategy ablation: the thesis chose the direct language
/// interface for its "one-step schema transformation". Compare
/// transform-once-then-run against retransform-per-transaction (the
/// high-level-preprocessing proxy) over K transactions.
pub fn e9() -> String {
    let schema = daplex::university::schema();
    let script = "MOVE 'CS' TO major IN student\nFIND ANY student USING major IN student";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>22} {:>26} {:>9}",
        "K txns", "direct one-step (ms)", "per-transaction remap (ms)", "overhead"
    );
    for k in [1usize, 10, 100, 1000] {
        // Shared data store for both strategies.
        let mut store = Store::new();
        daplex::ab_map::install(&schema, &mut store);
        workload::load_university_scaled(&mut store, workload::Scale::of(200), 1);
        let stmts = codasyl::dml::parse_statements(script).expect("script");

        // Direct: transform once, run K transactions.
        let start = Instant::now();
        let net = transform::transform(&schema).expect("transform");
        let t = translator::Translator::for_functional(net);
        for _ in 0..k {
            let mut ru = translator::RunUnit::new();
            for stmt in &stmts {
                let _ = t.execute(&mut ru, &mut store, stmt);
            }
        }
        let direct = start.elapsed().as_secs_f64() * 1000.0;

        // Proxy: retransform the schema for every transaction.
        let start = Instant::now();
        for _ in 0..k {
            let net = transform::transform(&schema).expect("transform");
            let t = translator::Translator::for_functional(net);
            let mut ru = translator::RunUnit::new();
            for stmt in &stmts {
                let _ = t.execute(&mut ru, &mut store, stmt);
            }
        }
        let per_txn = start.elapsed().as_secs_f64() * 1000.0;
        let _ = writeln!(
            out,
            "{k:>6} {direct:>22.2} {per_txn:>26.2} {:>8.2}x",
            per_txn / direct.max(1e-9)
        );
    }
    out
}

// ----- E10 ------------------------------------------------------------

/// ABDL request fan-out per CODASYL-DML statement type over a generated
/// workload.
pub fn e10() -> String {
    let mut store = Store::new();
    daplex::ab_map::install(&daplex::university::schema(), &mut store);
    workload::load_university_scaled(&mut store, workload::Scale::of(200), 42);
    let net = transform::transform(&daplex::university::schema()).expect("transform");
    let t = translator::Translator::for_functional(net);
    let mut ru = translator::RunUnit::new();

    let script = workload::codasyl_script(2_000, 9);
    let stmts = codasyl::dml::parse_statements(&script).expect("generated script");
    let mut per_verb: std::collections::BTreeMap<&'static str, (usize, usize, usize, usize)> =
        Default::default();
    for stmt in &stmts {
        if let Ok(out) = t.execute(&mut ru, &mut store, stmt) {
            let n = out.requests.len();
            let e = per_verb.entry(stmt.verb()).or_insert((0, usize::MAX, 0, 0));
            e.0 += 1; // count
            e.1 = e.1.min(n);
            e.2 = e.2.max(n);
            e.3 += n; // total
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>6} {:>6} {:>8}",
        "statement", "executed", "min", "max", "avg ABDL"
    );
    for (verb, (count, min, max, total)) in per_verb {
        let _ = writeln!(
            out,
            "{verb:<22} {count:>8} {min:>6} {max:>6} {:>8.2}",
            total as f64 / count as f64
        );
    }
    out
}

// ----- E11 ------------------------------------------------------------

/// The Figure-1.2 claim made measurable: the same MLDS instance serves
/// all four model-based languages (plus raw ABDL); this table shows a
/// canonical workload per interface and the ABDL requests each
/// statement generated.
pub fn e11() -> String {
    let mut m = mlds::Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).expect("functional db");
    m.populate_university("university").expect("populate");
    m.create_database(
        "CREATE DATABASE suppliers;
         CREATE TABLE supplier (sno INTEGER NOT NULL, sname CHAR(20), city CHAR(15),
                                PRIMARY KEY (sno));",
    )
    .expect("relational db");
    m.create_database(
        "HIERARCHY NAME IS school.
         SEGMENT department.
           02 dno TYPE IS FIXED.
           SEQUENCE IS dno.
         SEGMENT course PARENT IS department.
           02 cno TYPE IS FIXED.
           02 title TYPE IS CHARACTER 30.",
    )
    .expect("hierarchical db");

    let mut out = String::new();
    let _ = writeln!(out, "{:<12} {:<58} {:>6}", "language", "statement", "ABDL");

    // CODASYL-DML (cross-model, on the functional database).
    let mut net = m.connect_codasyl("u", "university").expect("connect");
    let net_script = "MOVE 'F87' TO semester IN course
                      FIND ANY course USING semester IN course
                      GET course";
    for r in m.execute_codasyl(&mut net, net_script).expect("codasyl") {
        let _ = writeln!(out, "{:<12} {:<58} {:>6}", "CODASYL-DML", r.statement, r.abdl.len());
    }

    // Daplex.
    let mut dap = m.connect_daplex("u", "university").expect("connect");
    for (label, script) in [
        ("FOR EACH student SUCH THAT … PRINT …",
         "FOR EACH student SUCH THAT major(student) = 'Computer Science' PRINT name(student);"),
        ("CREATE person (…)", "CREATE person (name := 'E11', age := 30);"),
    ] {
        let r = &m.execute_daplex(&mut dap, script).expect("daplex")[0];
        let _ = writeln!(out, "{:<12} {:<58} {:>6}", "Daplex", label, "n/a");
        let _ = (r,);
    }

    // SQL.
    let mut sql = m.connect_sql("u", "suppliers").expect("connect");
    for script in [
        "INSERT INTO supplier (sno, sname, city) VALUES (1, 'Smith', 'London');",
        "SELECT sname FROM supplier WHERE city = 'London';",
        "UPDATE supplier SET city = 'Paris', sname = 'S' WHERE sno = 1;",
        "DELETE FROM supplier WHERE sno = 1;",
    ] {
        let r = &m.execute_sql(&mut sql, script).expect("sql")[0];
        let _ = writeln!(out, "{:<12} {:<58} {:>6}", "SQL", script.trim_end_matches(';'), r.abdl.len());
    }

    // DL/I.
    let mut ims = m.connect_dli("u", "school").expect("connect");
    for script in [
        "ISRT department (dno = 1)",
        "ISRT course (cno = 10, title = 'Databases')",
        "GU department (dno = 1) course (cno = 10)",
        "REPL course (title = 'DB II')",
        "DLET course",
    ] {
        let r = &m.execute_dli(&mut ims, script).expect("dli")[0];
        let _ = writeln!(out, "{:<12} {:<58} {:>6}", "DL/I", script, r.abdl.len());
    }
    out
}

// ----- E12 ------------------------------------------------------------

/// The directory-index design decision (DESIGN.md §2), measured
/// deterministically: per-request records examined by the kernel with
/// directory indexes vs full scans, over growing files.
pub fn e12() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>9} {:<28} {:>14} {:>12} {:>9}",
        "records", "request", "scan examined", "indexed", "ratio"
    );
    for n in [1_000usize, 10_000, 40_000] {
        for (label, req_text) in [
            ("point (payload = 7)", "RETRIEVE ((FILE = f) and (payload = 7)) (*)"),
            ("range (f < 100)", "RETRIEVE ((FILE = f) and (f < 100)) (*)"),
        ] {
            let req = abdl::parse::parse_request(req_text).expect("static request");
            let mut scan_examined = 0;
            let mut idx_examined = 0;
            for (indexing, slot) in
                [(false, &mut scan_examined), (true, &mut idx_examined)]
            {
                let mut store = Store::with_indexing(indexing);
                store.create_file("f");
                for i in 0..n {
                    let rec = abdl::Record::from_pairs([("FILE", abdl::Value::str("f"))])
                        .with("f", abdl::Value::Int(i as i64))
                        .with("payload", abdl::Value::Int(((i * 37) % 1000) as i64));
                    store.execute(&abdl::Request::Insert { record: rec }).expect("load");
                }
                let resp = store.execute(&req).expect("query");
                *slot = resp.stats.records_examined;
            }
            let _ = writeln!(
                out,
                "{n:>9} {label:<28} {scan_examined:>14} {idx_examined:>12} {:>8.0}x",
                scan_examined as f64 / idx_examined.max(1) as f64
            );
        }
    }
    out
}

// ----- E13 ------------------------------------------------------------

/// Fault tolerance in the deterministic simulator: what fraction of a
/// database stays answerable as backends fail, for replication factors
/// k = 1 (the paper's unreplicated MBDS), 2 (the default) and 3 — and
/// what recovery (restart + re-replication from surviving replicas)
/// costs in simulated time. Failures kill adjacent backends, the worst
/// case for adjacent replica groups.
pub fn e13() -> String {
    const N: usize = 8;
    const DB: usize = 8_000;
    let mut out = String::new();
    let _ = writeln!(out, "{N} backends, {DB} records; killed backends are adjacent");
    let _ = writeln!(
        out,
        "{:>2} {:>9} {:>18} {:>10} {:>9}",
        "k", "failures", "records visible", "coverage", "degraded"
    );
    for k in [1usize, 2, 3] {
        for failures in [0usize, 1, 2, 3] {
            let mut cluster =
                mbds::SimCluster::with_config(N, k, mbds::CostModel::default());
            workload::load_flat(&mut cluster, DB);
            for b in 0..failures {
                cluster.kill_backend(b);
            }
            let resp = cluster
                .execute(&workload::range_retrieval(DB))
                .expect("a live backend remains");
            let visible = resp.records().len();
            let _ = writeln!(
                out,
                "{k:>2} {failures:>9} {visible:>13}/{DB} {:>9.1}% {:>9}",
                100.0 * visible as f64 / DB as f64,
                resp.degraded
            );
        }
    }
    let _ = writeln!(out, "\nrecovery (k = 2): restart one backend, re-replicate from survivors");
    let _ = writeln!(out, "{:>9} {:>22}", "records", "recovery time (sim ms)");
    for db in [1_000usize, 4_000, 16_000] {
        let mut cluster = mbds::SimCluster::with_config(N, 2, mbds::CostModel::default());
        workload::load_flat(&mut cluster, db);
        cluster.kill_backend(0);
        cluster.reset_clock();
        cluster.restart_backend(0).expect("restart");
        let _ = writeln!(out, "{db:>9} {:>22.1}", cluster.last_response_us() / 1000.0);
    }
    out
}

// ----- E14 ------------------------------------------------------------

/// Durability cost: wall-clock time for `Controller::recover` as a
/// function of write-ahead-log length, with and without snapshot
/// compaction.
///
/// Two regimes. A growing database (insert-only log): the snapshot
/// holds the same records the log would replay, so compaction shortens
/// the log but recovery stays linear in *database size* either way. A
/// stable database under churn (update-heavy log): without snapshots
/// recovery re-executes every update and grows linearly with the log;
/// with compaction it is bounded by snapshot interval + database size
/// — the textbook case for checkpointing.
pub fn e14() -> String {
    let recover_ms = |inserts: usize, updates: usize, snapshot_every: u64| {
        let log = mbds::MemLog::new();
        let mut c =
            mbds::Controller::durable_with(4, 2, log.clone()).expect("durable controller");
        c.set_snapshot_every(snapshot_every);
        workload::load_flat(&mut c, inserts);
        for u in 0..updates {
            let req = abdl::parse::parse_request(&format!(
                "UPDATE ((FILE = f) and (f = {})) (payload = {})",
                u % inserts,
                u % 1000
            ))
            .expect("static update");
            c.execute(&req).expect("update");
        }
        drop(c);
        let entries = log.log_len();
        let start = Instant::now();
        drop(mbds::Controller::recover_with(log).expect("recover"));
        (entries, start.elapsed().as_secs_f64() * 1000.0)
    };
    let cadence = |n: u64| if n == 0 { "off".to_owned() } else { n.to_string() };

    let mut out = String::new();
    let _ = writeln!(out, "4 backends, k = 2; durable controller over an in-memory log\n");
    let _ = writeln!(out, "growing database: N inserts, log length = N");
    let _ = writeln!(
        out,
        "{:>8} {:>15} {:>13} {:>14}",
        "inserts", "snapshot every", "log entries", "recovery (ms)"
    );
    for inserts in [500usize, 2_000, 8_000] {
        for snapshot_every in [0u64, 1_000] {
            let (entries, ms) = recover_ms(inserts, 0, snapshot_every);
            let _ = writeln!(
                out,
                "{inserts:>8} {:>15} {entries:>13} {ms:>14.1}",
                cadence(snapshot_every)
            );
        }
    }
    let _ = writeln!(out, "\nstable database (500 records) under churn: log length = updates");
    let _ = writeln!(
        out,
        "{:>8} {:>15} {:>13} {:>14}",
        "updates", "snapshot every", "log entries", "recovery (ms)"
    );
    for updates in [1_000usize, 4_000, 16_000] {
        for snapshot_every in [0u64, 1_000] {
            let (entries, ms) = recover_ms(500, updates, snapshot_every);
            let _ = writeln!(
                out,
                "{updates:>8} {:>15} {entries:>13} {ms:>14.1}",
                cadence(snapshot_every)
            );
        }
    }
    out
}

// ----- E15 ------------------------------------------------------------

/// Raw numbers from the E15 broadcast-tax ablation, plus the rendered
/// table. The `experiments` binary writes `json` to `BENCH_PR4.json`
/// whenever e15 is selected so CI can archive the run.
pub struct E15Report {
    /// The human-readable table (what [`e15`] returns).
    pub table: String,
    /// The same numbers as a machine-readable JSON document.
    pub json: String,
    /// Wall-clock speedup of unique-constrained inserts with every
    /// optimisation on versus the legacy probe+broadcast+serial
    /// configuration, measured in the same run.
    pub unique_insert_speedup: f64,
    /// Backend messages per point retrieval under scoped routing.
    pub scoped_messages_per_query: f64,
    /// Backend messages per point retrieval under broadcast routing.
    pub broadcast_messages_per_query: f64,
}

fn e15_insert(u: i64) -> abdl::Request {
    abdl::Request::Insert {
        record: abdl::Record::from_pairs([("FILE", abdl::Value::str("f"))])
            .with("u", abdl::Value::Int(u))
            .with("v", abdl::Value::Int((u * 7) % 1000)),
    }
}

/// A fresh 8-backend, k = 2 threaded controller holding file `f` with
/// the three optimisation toggles set explicitly.
fn e15_controller(unique: bool, index: bool, scoped: bool, parallel: bool) -> mbds::Controller {
    let mut c = mbds::Controller::with_replication(8, 2);
    c.set_unique_via_index(index);
    c.set_scoped_routing(scoped);
    c.set_parallel_writes(parallel);
    c.try_create_file("f").expect("create f");
    if unique {
        c.add_unique_constraint("f", vec!["u".to_owned()]);
    }
    c
}

/// Best-of-two wall-clock milliseconds for `n` inserts into the
/// unique-constrained file under one toggle configuration.
fn e15_unique_insert_ms(index: bool, scoped: bool, parallel: bool, n: i64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let mut c = e15_controller(true, index, scoped, parallel);
        let start = Instant::now();
        for u in 0..n {
            c.execute(&e15_insert(u)).expect("unique insert");
        }
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// Per-query (messages sent, records examined) for point retrievals on
/// the unique attribute, with routing scoped or broadcast.
fn e15_retrieval_counters(scoped: bool) -> (f64, f64) {
    const LOAD: i64 = 256;
    const QUERIES: usize = 64;
    let mut c = e15_controller(true, true, scoped, true);
    for u in 0..LOAD {
        c.execute(&e15_insert(u)).expect("load");
    }
    let before = c.exec_totals();
    for i in 0..QUERIES {
        let q = abdl::parse::parse_request(&format!(
            "RETRIEVE ((FILE = f) and (u = {})) (*)",
            (i as i64 * 5) % LOAD
        ))
        .expect("static query");
        let resp = c.execute(&q).expect("point query");
        assert_eq!(resp.records().len(), 1, "point query must hit exactly one record");
    }
    let after = c.exec_totals();
    (
        (after.messages_sent - before.messages_sent) as f64 / QUERIES as f64,
        (after.records_examined - before.records_examined) as f64 / QUERIES as f64,
    )
}

/// Wall-clock milliseconds and WAL append count for 120 durable inserts
/// over a file-backed log, committed either as ten 12-request
/// transactions (one sync each, group commit) or one request at a time
/// (one sync per insert).
fn e15_wal_ms(grouped: bool) -> (f64, u64) {
    const INSERTS: i64 = 120;
    const BATCH: i64 = 12;
    let dir = std::env::temp_dir().join(format!(
        "mlds-e15-{}-{}",
        std::process::id(),
        if grouped { "txn" } else { "single" }
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = mbds::Controller::durable(4, 2, &dir).expect("durable controller");
    c.try_create_file("f").expect("create f");
    let start = Instant::now();
    if grouped {
        for b in 0..(INSERTS / BATCH) {
            let txn =
                abdl::Transaction::new((0..BATCH).map(|i| e15_insert(b * BATCH + i)).collect());
            c.execute_transaction(&txn).expect("transaction");
        }
    } else {
        for u in 0..INSERTS {
            c.execute(&e15_insert(u)).expect("insert");
        }
    }
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    let appends = c.wal_appends();
    drop(c);
    let _ = std::fs::remove_dir_all(&dir);
    (ms, appends)
}

/// Run the E15 ablation: every optimisation of the broadcast-tax PR
/// measured against its own baseline in a single run.
pub fn e15_report() -> E15Report {
    const INSERTS: i64 = 400;
    let optimised = e15_unique_insert_ms(true, true, true, INSERTS);
    let legacy = e15_unique_insert_ms(false, false, false, INSERTS);
    let no_index = e15_unique_insert_ms(false, true, true, INSERTS);
    let no_scope = e15_unique_insert_ms(true, false, true, INSERTS);
    let no_parallel = e15_unique_insert_ms(true, true, false, INSERTS);
    let speedup = legacy / optimised;

    let (scoped_msgs, scoped_exam) = e15_retrieval_counters(true);
    let (bcast_msgs, bcast_exam) = e15_retrieval_counters(false);

    let (txn_ms, txn_appends) = e15_wal_ms(true);
    let (single_ms, single_appends) = e15_wal_ms(false);

    let rate = |ms: f64| (INSERTS as f64 / (ms / 1000.0)) as u64;
    let mut out = String::new();
    let _ = writeln!(out, "8 threaded backends, k = 2; every row measured in this run\n");
    let _ = writeln!(out, "unique-constrained inserts ({INSERTS} records, best of 2 runs)");
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>11} {:>8}",
        "configuration", "ms", "inserts/s", "speedup"
    );
    for (name, ms) in [
        ("all optimisations", optimised),
        ("legacy (probe+broadcast+serial)", legacy),
        ("  ablate unique index only", no_index),
        ("  ablate scoped routing only", no_scope),
        ("  ablate parallel writes only", no_parallel),
    ] {
        let _ =
            writeln!(out, "{name:<34} {ms:>8.1} {:>11} {:>7.2}x", rate(ms), legacy / ms);
    }
    let _ = writeln!(out, "\npoint retrieval on the unique attribute (64 queries, 256 records)");
    let _ = writeln!(out, "{:<11} {:>11} {:>22}", "routing", "msgs/query", "records examined/qry");
    let _ = writeln!(out, "{:<11} {scoped_msgs:>11.1} {scoped_exam:>22.1}", "scoped");
    let _ = writeln!(out, "{:<11} {bcast_msgs:>11.1} {bcast_exam:>22.1}", "broadcast");
    let _ = writeln!(out, "\nWAL group commit (file-backed log, 120 inserts, 4 backends)");
    let _ = writeln!(out, "{:<24} {:>8} {:>12}", "commit discipline", "ms", "wal appends");
    let _ = writeln!(out, "{:<24} {txn_ms:>8.1} {txn_appends:>12}", "10 transactions of 12");
    let _ = writeln!(out, "{:<24} {single_ms:>8.1} {single_appends:>12}", "per-request sync");

    let json = format!(
        "{{\n  \"experiment\": \"e15\",\n  \"backends\": 8,\n  \"replication\": 2,\n  \
         \"unique_insert\": {{\n    \"inserts\": {INSERTS},\n    \
         \"optimised_ms\": {optimised:.3},\n    \"legacy_probe_ms\": {legacy:.3},\n    \
         \"speedup\": {speedup:.3},\n    \"ablate_unique_index_ms\": {no_index:.3},\n    \
         \"ablate_scoped_routing_ms\": {no_scope:.3},\n    \
         \"ablate_parallel_writes_ms\": {no_parallel:.3}\n  }},\n  \
         \"point_retrieval\": {{\n    \"queries\": 64,\n    \"records\": 256,\n    \
         \"scoped_messages_per_query\": {scoped_msgs:.2},\n    \
         \"broadcast_messages_per_query\": {bcast_msgs:.2},\n    \
         \"scoped_examined_per_query\": {scoped_exam:.2},\n    \
         \"broadcast_examined_per_query\": {bcast_exam:.2}\n  }},\n  \
         \"group_commit\": {{\n    \"inserts\": 120,\n    \"transaction_ms\": {txn_ms:.3},\n    \
         \"per_request_ms\": {single_ms:.3},\n    \"speedup\": {:.3},\n    \
         \"transaction_appends\": {txn_appends},\n    \
         \"per_request_appends\": {single_appends}\n  }}\n}}\n",
        single_ms / txn_ms
    );

    E15Report {
        table: out,
        json,
        unique_insert_speedup: speedup,
        scoped_messages_per_query: scoped_msgs,
        broadcast_messages_per_query: bcast_msgs,
    }
}

/// The broadcast-tax ablation table; [`e15_report`] has the raw numbers.
pub fn e15() -> String {
    e15_report().table
}

// ----- E16 ------------------------------------------------------------

/// Raw numbers from the E16 failover comparison, plus the rendered
/// table. The `experiments` binary writes `json` to `BENCH_PR5.json`
/// whenever e16 is selected so CI can archive the run.
pub struct E16Report {
    /// The human-readable table (what [`e16`] returns).
    pub table: String,
    /// The same numbers as a machine-readable JSON document.
    pub json: String,
    /// Promotion speedup over cold recovery at the heaviest churn
    /// (16 000 updates) with snapshot compaction off — the regime where
    /// cold recovery replays the entire log and the warm standby has
    /// already absorbed it.
    pub promotion_speedup_16k: f64,
}

/// One E16 regime: a stable 500-record database under `updates` of
/// churn, a standby tailing the log throughout. Returns (log entries,
/// records shipped to the standby, promotion ms, cold-recovery ms).
///
/// Both paths are measured on the *same* log: promotion first (the
/// primary is still alive, so its drop detaches from the shared
/// backends), then `Controller::recover_with` replaying the identical
/// snapshot + suffix into a fresh cluster.
fn e16_measure(updates: usize, snapshot_every: u64) -> (usize, u64, f64, f64) {
    const RECORDS: usize = 500;
    let log = mbds::MemLog::new();
    let mut c = mbds::Controller::durable_with(4, 2, log.clone()).expect("durable controller");
    c.set_snapshot_every(snapshot_every);
    workload::load_flat(&mut c, RECORDS);
    let mut sb = c.standby(Box::new(log.clone())).expect("standby");
    for u in 0..updates {
        let req = abdl::parse::parse_request(&format!(
            "UPDATE ((FILE = f) and (f = {})) (payload = {})",
            u % RECORDS,
            u % 1000
        ))
        .expect("static update");
        c.execute(&req).expect("update");
        // Continuous tailing at a realistic cadence: the standby stays
        // warm, so promotion has at most a batch of entries to absorb.
        if u % 64 == 0 {
            sb.poll().expect("poll");
        }
    }
    sb.poll().expect("final poll");
    let shipped = sb.lag().records_shipped;
    let entries = log.log_len();

    let start = Instant::now();
    let p = sb.promote().expect("promote");
    let promote_ms = start.elapsed().as_secs_f64() * 1000.0;
    drop(c); // demoted: detaches from the backends the promoted controller now owns
    drop(p);

    let start = Instant::now();
    drop(mbds::Controller::recover_with(log).expect("recover"));
    let recover_ms = start.elapsed().as_secs_f64() * 1000.0;
    (entries, shipped, promote_ms, recover_ms)
}

/// Run the E16 comparison: epoch-fenced hot-standby promotion versus
/// cold WAL replay, over the same stable-database churn regimes as E14.
pub fn e16_report() -> E16Report {
    let cadence = |n: u64| if n == 0 { "off".to_owned() } else { n.to_string() };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "4 backends, k = 2; stable database (500 records) under churn;\n\
         standby tails the log during the run, then the primary dies\n"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>15} {:>12} {:>10} {:>13} {:>12} {:>9}",
        "updates", "snapshot every", "log entries", "shipped", "promote (ms)", "recover (ms)", "speedup"
    );
    let mut rows = String::new();
    let mut speedup_16k = 0.0;
    for updates in [1_000usize, 4_000, 16_000] {
        for snapshot_every in [0u64, 1_000] {
            let (entries, shipped, promote_ms, recover_ms) =
                e16_measure(updates, snapshot_every);
            let speedup = recover_ms / promote_ms;
            if updates == 16_000 && snapshot_every == 0 {
                speedup_16k = speedup;
            }
            let _ = writeln!(
                out,
                "{updates:>8} {:>15} {entries:>12} {shipped:>10} {promote_ms:>13.2} \
                 {recover_ms:>12.1} {:>8.0}x",
                cadence(snapshot_every),
                speedup
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{ \"updates\": {updates}, \"snapshot_every\": {snapshot_every}, \
                 \"log_entries\": {entries}, \"records_shipped\": {shipped}, \
                 \"promote_ms\": {promote_ms:.4}, \"recover_ms\": {recover_ms:.3}, \
                 \"speedup\": {speedup:.1} }}"
            );
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"e16\",\n  \"backends\": 4,\n  \"replication\": 2,\n  \
         \"records\": 500,\n  \"promotion_speedup_16k\": {speedup_16k:.1},\n  \
         \"regimes\": [\n{rows}\n  ]\n}}\n"
    );
    E16Report { table: out, json, promotion_speedup_16k: speedup_16k }
}

/// The failover comparison table; [`e16_report`] has the raw numbers.
pub fn e16() -> String {
    e16_report().table
}

// ----- E17 ------------------------------------------------------------

/// Raw numbers from the E17 socket-transport comparison, plus the
/// rendered table. The `experiments` binary writes `json` to
/// `BENCH_PR6.json` whenever e17 is selected so CI can archive the run.
pub struct E17Report {
    /// The human-readable table (what [`e17`] returns).
    pub table: String,
    /// The same numbers as a machine-readable JSON document.
    pub json: String,
    /// Wall-clock ratio of the socket transport over the in-process
    /// channel bus on the clean workload (0.0 when skipped).
    pub tcp_overhead_x: f64,
    /// Every lossy regime reproduced the clean run's state digest.
    pub lossy_converged: bool,
    /// Retransmissions summed over the lossy regimes — zero would mean
    /// the fault plans never actually cost anything.
    pub lossy_retries: u64,
    /// True when the `mbds-backend` binary was not found (the harness
    /// was built without `mlds-core`'s bins) and the measurement was
    /// skipped.
    pub skipped: bool,
}

/// Load the flat file and drive the mixed workload, returning wall ms.
fn e17_run(c: &mut mbds::Controller, records: usize, reqs: &[abdl::Request]) -> f64 {
    let start = Instant::now();
    workload::load_flat(c, records);
    for req in reqs {
        c.execute(req).expect("e17 request");
    }
    start.elapsed().as_secs_f64() * 1000.0
}

/// Run the E17 comparison: the same mixed workload on the in-process
/// channel bus, the clean socket transport, and the socket transport
/// under seeded frame loss (drops + duplicates + delays + reorders) —
/// measuring the overhead of real processes and what retry/backoff
/// costs when the network misbehaves.
pub fn e17_report() -> E17Report {
    const RECORDS: usize = 400;
    const REQS: usize = 300;
    // The backend binary may not exist in this build (the bench package
    // alone does not build `mlds-core`'s bins); degrade to a skip note.
    if mbds::Controller::over_tcp(1, 1).is_err() {
        let table = "socket transport unavailable (`mbds-backend` binary not built) — E17 \
                     skipped;\nbuild it with `cargo build --release -p mlds-core --bin \
                     mbds-backend` and re-run\n"
            .to_owned();
        let json = "{\n  \"experiment\": \"e17\",\n  \"available\": false\n}\n".to_owned();
        return E17Report {
            table,
            json,
            tcp_overhead_x: 0.0,
            lossy_converged: false,
            lossy_retries: 0,
            skipped: true,
        };
    }
    let reqs = workload::mixed_requests(REQS, RECORDS, 0xE17);
    let per_req = |ms: f64| ms * 1000.0 / (RECORDS + REQS) as f64;

    let mut chan = mbds::Controller::with_replication(4, 2);
    let chan_ms = e17_run(&mut chan, RECORDS, &reqs);

    let mut clean = mbds::Controller::over_tcp(4, 2).expect("tcp controller");
    let clean_ms = e17_run(&mut clean, RECORDS, &reqs);
    let clean_digest = clean.state_digest().expect("clean digest");
    let overhead = clean_ms / chan_ms;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "4 backends, k = 2; {RECORDS} inserts + {REQS} mixed requests per run\n"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>12} {:>9} {:>12} {:>10}",
        "transport", "total (ms)", "per-req (µs)", "retries", "backoff (ms)", "converged"
    );
    let _ = writeln!(
        out,
        "{:<22} {chan_ms:>10.1} {:>12.1} {:>9} {:>12} {:>10}",
        "in-process bus",
        per_req(chan_ms),
        0,
        0,
        "-"
    );
    let _ = writeln!(
        out,
        "{:<22} {clean_ms:>10.1} {:>12.1} {:>9} {:>12} {:>10}",
        "tcp, clean",
        per_req(clean_ms),
        0,
        0,
        "ref"
    );

    let mut rows = String::new();
    let mut all_converged = true;
    let mut total_retries = 0u64;
    for (label, seed, bursts) in [("tcp, light loss", 0x5EED1u64, 2u64), ("tcp, heavy loss", 0x5EED2, 6)]
    {
        let mut lossy = mbds::Controller::over_tcp(4, 2).expect("tcp controller");
        lossy.set_reply_timeout(std::time::Duration::from_millis(300));
        lossy.set_retry_budget(4);
        let mut plan = mbds::NetFaultPlan::seeded(seed, 4, 200);
        // Guaranteed early bursts on top of the seeded background, so
        // even an unlucky seed provably loses frames.
        for b in 0..bursts {
            plan = plan
                .with((b % 4) as usize, mbds::LinkDir::Send, 5 + 11 * b, mbds::NetFaultKind::Drop)
                .with(
                    ((b + 1) % 4) as usize,
                    mbds::LinkDir::Recv,
                    9 + 7 * b,
                    mbds::NetFaultKind::Duplicate,
                );
        }
        lossy.set_net_fault_plan(plan);
        let ms = e17_run(&mut lossy, RECORDS, &reqs);
        let t = lossy.exec_totals();
        let converged = lossy.state_digest().expect("lossy digest") == clean_digest;
        all_converged &= converged;
        total_retries += t.retries;
        let _ = writeln!(
            out,
            "{label:<22} {ms:>10.1} {:>12.1} {:>9} {:>12} {:>10}",
            per_req(ms),
            t.retries,
            t.backoff_ms,
            if converged { "yes" } else { "NO" }
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{ \"label\": \"{label}\", \"ms\": {ms:.2}, \"retries\": {}, \
             \"backoff_ms\": {}, \"reply_timeouts\": {}, \"converged\": {converged} }}",
            t.retries, t.backoff_ms, t.reply_timeouts
        );
    }
    let _ = writeln!(
        out,
        "\nsocket transport overhead: {overhead:.2}x per request; all lossy runs \
         {}",
        if all_converged { "converged to the clean digest" } else { "DIVERGED" }
    );

    let json = format!(
        "{{\n  \"experiment\": \"e17\",\n  \"available\": true,\n  \"backends\": 4,\n  \
         \"replication\": 2,\n  \"records\": {RECORDS},\n  \"requests\": {REQS},\n  \
         \"in_process_ms\": {chan_ms:.2},\n  \"tcp_clean_ms\": {clean_ms:.2},\n  \
         \"tcp_overhead_x\": {overhead:.3},\n  \"lossy_converged\": {all_converged},\n  \
         \"lossy\": [\n{rows}\n  ]\n}}\n"
    );
    E17Report {
        table: out,
        json,
        tcp_overhead_x: overhead,
        lossy_converged: all_converged,
        lossy_retries: total_retries,
        skipped: false,
    }
}

/// The socket-transport comparison table; [`e17_report`] has the raw
/// numbers.
pub fn e17() -> String {
    e17_report().table
}

// ----- E18 ------------------------------------------------------------

/// Raw numbers from the E18 concurrent-front-door scaling run, plus the
/// rendered table. The `experiments` binary writes `json` to
/// `BENCH_PR7.json` whenever e18 is selected so CI can archive the run.
pub struct E18Report {
    /// The human-readable table (what [`e18`] returns).
    pub table: String,
    /// The same numbers as a machine-readable JSON document.
    pub json: String,
    /// Aggregate insert throughput with 64 concurrent sessions divided
    /// by the one-session (sequential) throughput, measured in the same
    /// run on the same durable controller configuration.
    pub speedup_64: f64,
    /// Serial replay of each run's admission log reproduced every
    /// per-request outcome.
    pub replay_equivalent: bool,
}

/// One E18 measurement: `sessions` threads each drive `per_session`
/// seeded unique-keyed inserts through an [`mlds::MldsService`] over a
/// durable 4-backend controller. Returns (wall seconds, merged latency
/// histogram, replay-equivalence flag, scheduler flights, WAL syncs).
fn e18_run(sessions: u64, per_session: u64) -> (f64, crate::timing::Histogram, bool, u64, u64) {
    use crate::timing::Histogram;
    let dir = std::env::temp_dir().join(format!("mlds-e18-{}-{sessions}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut mlds = mlds::Mlds::durable_backend(4, &dir).expect("durable controller");
    {
        let mut ns = mlds::NamespacedKernel::new(mlds.kernel_mut(), "db");
        ns.create_file("t");
        ns.add_unique_constraint("t", vec!["t".to_owned()]);
    }
    let mut svc = mlds::MldsService::start(mlds);
    let handles: Vec<mlds::ServiceSession> =
        (0..sessions).map(|s| svc.open(&format!("u{s}"), "db")).collect();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions as usize + 1));
    let mut joins = Vec::new();
    for (s, session) in handles.into_iter().enumerate() {
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            // Seeded per-session key order: unique across sessions,
            // unordered within one, like independent users would be.
            let mut rng = abdl::prng::Prng::seed_from_u64(0xE18 + s as u64);
            let mut keys: Vec<i64> =
                (0..per_session).map(|i| (s as u64 * 1_000_000 + i) as i64).collect();
            for i in (1..keys.len()).rev() {
                keys.swap(i, rng.index(i + 1));
            }
            let mut hist = Histogram::new();
            barrier.wait();
            for key in keys {
                let rec = abdl::Record::from_pairs([("FILE", abdl::Value::str("t"))])
                    .with("t", abdl::Value::Int(key))
                    .with("v", abdl::Value::Int(key % 997));
                let start = Instant::now();
                session.submit(abdl::Request::Insert { record: rec }).expect("e18 insert");
                hist.record(start.elapsed().as_nanos() as u64);
            }
            hist
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut hist = Histogram::new();
    for j in joins {
        hist.merge(&j.join().expect("e18 session thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    let (mlds, report) = svc.into_parts();
    let totals = mlds.exec_totals();

    // Equivalence spot-check: replay the admission log serially on a
    // fresh in-memory system and compare every normalized outcome.
    let mut fresh = mlds::Mlds::multi_backend(4);
    {
        let mut ns = mlds::NamespacedKernel::new(fresh.kernel_mut(), "db");
        ns.create_file("t");
        ns.add_unique_constraint("t", vec!["t".to_owned()]);
    }
    let replay_equivalent = report.admissions.iter().all(|entry| {
        let mut ns = mlds::NamespacedKernel::new(fresh.kernel_mut(), &entry.db);
        mlds::service::outcome_of(&ns.execute(&entry.request)) == entry.outcome
    });
    drop(mlds);
    let _ = std::fs::remove_dir_all(&dir);
    (secs, hist, replay_equivalent, totals.sched_flights, totals.wal_syncs)
}

/// Run the E18 scaling sweep: the same per-session workload at 1, 8
/// and 64 concurrent sessions over one durable controller
/// configuration.
pub fn e18_report() -> E18Report {
    const PER_SESSION: u64 = 48;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "4 durable backends (file-backed WAL), k = 2; {PER_SESSION} unique-keyed inserts \
         per session\n"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>12} {:>10} {:>10} {:>10} {:>9} {:>10}",
        "sessions", "inserts", "inserts/s", "p50 (µs)", "p99 (µs)", "flights", "syncs", "replay=="
    );
    let mut rows = String::new();
    let mut thr_1 = 0.0f64;
    let mut thr_64 = 0.0f64;
    let mut all_equivalent = true;
    for sessions in [1u64, 8, 64] {
        let (secs, hist, equivalent, flights, syncs) = e18_run(sessions, PER_SESSION);
        let inserts = sessions * PER_SESSION;
        let thr = inserts as f64 / secs;
        if sessions == 1 {
            thr_1 = thr;
        }
        if sessions == 64 {
            thr_64 = thr;
        }
        all_equivalent &= equivalent;
        let us = |ns: u64| ns as f64 / 1000.0;
        let _ = writeln!(
            out,
            "{sessions:>8} {inserts:>8} {:>12.0} {:>10.1} {:>10.1} {flights:>10} {syncs:>9} \
             {:>10}",
            thr,
            us(hist.p50()),
            us(hist.p99()),
            if equivalent { "yes" } else { "NO" }
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{ \"sessions\": {sessions}, \"inserts\": {inserts}, \
             \"throughput_per_s\": {thr:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}, \"sched_flights\": {flights}, \"wal_syncs\": {syncs}, \
             \"replay_equivalent\": {equivalent} }}",
            hist.p50(),
            hist.p99(),
            hist.max_ns()
        );
    }
    let speedup = thr_64 / thr_1;
    let _ = writeln!(
        out,
        "\naggregate throughput at 64 sessions: {speedup:.2}x the sequential baseline; \
         admission-log replays {}",
        if all_equivalent { "matched every outcome" } else { "DIVERGED" }
    );
    let json = format!(
        "{{\n  \"experiment\": \"e18\",\n  \"backends\": 4,\n  \"replication\": 2,\n  \
         \"per_session_inserts\": {PER_SESSION},\n  \"speedup_64_sessions\": {speedup:.3},\n  \
         \"replay_equivalent\": {all_equivalent},\n  \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    E18Report { table: out, json, speedup_64: speedup, replay_equivalent: all_equivalent }
}

/// The concurrent-front-door scaling table; [`e18_report`] has the raw
/// numbers.
pub fn e18() -> String {
    e18_report().table
}

// ----- E19 ------------------------------------------------------------

/// Raw numbers from the E19 model-checking run, plus the JSON the
/// `experiments` binary writes to `BENCH_PR8.json` whenever e19 is
/// selected so CI can archive the run.
pub struct E19Report {
    /// The human-readable tables (what [`e19`] returns).
    pub table: String,
    /// Machine-readable record of the same numbers.
    pub json: String,
    /// True when the unmutated protocol held both invariants at every
    /// swept depth.
    pub protocol_holds: bool,
    /// True when every catalogued mutation produced a counterexample.
    pub all_mutations_caught: bool,
}

/// Run the E19 sweep: exhaust the failover model at growing depth
/// bounds (the real protocol — both invariants must hold), then kill
/// every mutation in the catalogue at the CI depth and record how
/// short its counterexample trace is.
pub fn e19_report() -> E19Report {
    use mbds::model::{check, ModelConfig, Mutation};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "failover model: 1 primary, 1 standby, 2 backends, 4 writes, 1 crash, 1 snapshot\n"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>12} {:>9} {:>9} {:>10}",
        "depth", "states", "transitions", "frontier", "ms", "verdict"
    );
    let mut protocol_holds = true;
    let mut depth_rows = String::new();
    for depth in [8u32, 10, 12, 13, 14, 16] {
        let config = ModelConfig { depth, ..ModelConfig::small() };
        let report = check(&config);
        let holds = report.counterexample.is_none();
        protocol_holds &= holds;
        let _ = writeln!(
            out,
            "{depth:>6} {:>10} {:>12} {:>9} {:>9} {:>10}",
            report.states,
            report.transitions,
            report.frontier_peak,
            report.elapsed.as_millis(),
            if holds { "holds" } else { "VIOLATED" }
        );
        if !depth_rows.is_empty() {
            depth_rows.push_str(",\n");
        }
        let _ = write!(
            depth_rows,
            "    {{ \"depth\": {depth}, \"states\": {}, \"transitions\": {}, \
             \"frontier_peak\": {}, \"elapsed_ms\": {}, \"holds\": {holds} }}",
            report.states,
            report.transitions,
            report.frontier_peak,
            report.elapsed.as_millis()
        );
    }

    let _ = writeln!(
        out,
        "\nmutation kill table (CI depth {}):",
        ModelConfig::small().depth
    );
    let _ = writeln!(
        out,
        "{:<28} {:>9} {:>10} {:>9} {:>10}",
        "mutation", "invariant", "trace len", "states", "verdict"
    );
    let mut caught_count = 0usize;
    let mut mutation_rows = String::new();
    for mutation in Mutation::ALL {
        let report = check(&ModelConfig::with_mutation(mutation));
        let (invariant, trace_len, caught) = match &report.counterexample {
            Some(ce) => (ce.violation.invariant(), ce.trace.len(), true),
            None => (0, 0, false),
        };
        caught_count += usize::from(caught);
        let _ = writeln!(
            out,
            "{:<28} {:>9} {:>10} {:>9} {:>10}",
            mutation.name(),
            if caught { format!("I{invariant}") } else { "-".to_owned() },
            trace_len,
            report.states,
            if caught { "caught" } else { "MISSED" }
        );
        if !mutation_rows.is_empty() {
            mutation_rows.push_str(",\n");
        }
        let _ = write!(
            mutation_rows,
            "    {{ \"mutation\": \"{}\", \"caught\": {caught}, \"invariant\": {invariant}, \
             \"trace_len\": {trace_len}, \"states_searched\": {} }}",
            mutation.name(),
            report.states
        );
    }
    let all_caught = caught_count == Mutation::ALL.len();
    let _ = writeln!(
        out,
        "\nprotocol {} both invariants at every depth; {caught_count} of {} mutations caught",
        if protocol_holds { "holds" } else { "VIOLATES" },
        Mutation::ALL.len()
    );
    let json = format!(
        "{{\n  \"experiment\": \"e19\",\n  \"protocol_holds\": {protocol_holds},\n  \
         \"all_mutations_caught\": {all_caught},\n  \"depth_sweep\": [\n{depth_rows}\n  ],\n  \
         \"mutations\": [\n{mutation_rows}\n  ]\n}}\n"
    );
    E19Report { table: out, json, protocol_holds, all_mutations_caught: all_caught }
}

/// The model-checker state-space table; [`e19_report`] has the raw
/// numbers.
pub fn e19() -> String {
    e19_report().table
}


// ----- E20 ------------------------------------------------------------

/// Raw numbers from the E20 parallel-read-flight sweep, plus the
/// rendered tables. The `experiments` binary writes `json` to
/// `BENCH_PR9.json` whenever e20 is selected so CI can archive the run.
pub struct E20Report {
    /// The human-readable tables (what [`e20`] returns).
    pub table: String,
    /// The same numbers as a machine-readable JSON document.
    pub json: String,
    /// Read-pipeline speedup, measured at the controller: batches of
    /// 64 key-scoped point reads with parallel read flights on vs. the
    /// serial (one-probe-at-a-time) path, best of three trials.
    pub pipeline_speedup_read_only: f64,
    /// The same controller-level comparison on a 90% read / 10%
    /// fresh-unique-insert batch (one mixed flight per batch).
    pub pipeline_speedup_90_10: f64,
    /// End-to-end aggregate throughput on the 90%-read mix at 64
    /// sessions with parallel read flights on, divided by the same run
    /// with reads forced back onto the serial path. On a single-core
    /// host this measures pipelining only, not backend overlap.
    pub speedup_90_64: f64,
    /// CPUs the host exposed; wall-clock backend overlap needs > 1.
    pub cores: usize,
    /// Serial replay of each run's admission log reproduced every
    /// per-request outcome.
    pub replay_equivalent: bool,
}

/// Working set for the controller-level pipeline benchmark and the
/// point probes of the service sweep.
const E20_ROWS: i64 = 512;

/// A 4-backend in-memory controller with `E20_ROWS` unique-keyed rows
/// in file `t`, seeded through the batch path.
fn e20_controller() -> mbds::Controller {
    let mut c = mbds::Controller::new(4);
    c.create_file("t");
    c.add_unique_constraint("t", vec!["u".to_owned()]);
    let rows: Vec<abdl::Request> = (0..E20_ROWS)
        .map(|u| abdl::Request::Insert {
            record: abdl::Record::from_pairs([("FILE", abdl::Value::str("t"))])
                .with("u", abdl::Value::Int(u))
                .with("v", abdl::Value::Int(u * 37 % 997)),
        })
        .collect();
    for chunk in rows.chunks(64) {
        for res in c.execute_batch(chunk) {
            res.expect("e20 seed insert");
        }
    }
    c
}

/// Best-of-`trials` throughput (requests/s) of `batches` fresh batches
/// produced by `make`, through `execute_batch`. Best-of keeps a single
/// descheduling stall on a loaded host from polluting the measurement.
fn e20_pipeline_throughput(
    c: &mut mbds::Controller,
    mut make: impl FnMut() -> Vec<abdl::Request>,
    batches: usize,
    trials: usize,
) -> f64 {
    // Warm caches and the WAL batch path once, untimed.
    for res in c.execute_batch(&make()) {
        res.expect("e20 warmup");
    }
    let mut best = f64::MAX;
    let mut n = 0usize;
    for _ in 0..trials {
        let round: Vec<Vec<abdl::Request>> = (0..batches).map(|_| make()).collect();
        n = round.iter().map(Vec::len).sum();
        let start = Instant::now();
        for batch in &round {
            for res in c.execute_batch(batch) {
                res.expect("e20 pipeline request");
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    n as f64 / best
}

/// Controller-level pipeline comparison at one read fraction: returns
/// (parallel req/s, serial req/s). `read_pct` of each 64-request batch
/// are key-scoped point probes, the rest fresh unique-keyed inserts.
fn e20_pipeline_pair(read_pct: u64) -> (f64, f64) {
    let mut out = [0.0f64; 2];
    for (slot, parallel) in [(0usize, true), (1, false)] {
        let mut c = e20_controller();
        c.set_parallel_reads(parallel);
        // Fresh keys per batch: a repeated key would fail the unique
        // check and detour into the degraded-insert path.
        let mut next_key = E20_ROWS + 1 + slot as i64 * 1_000_000;
        let mut probe = 0i64;
        let make = || {
            let mut batch = Vec::with_capacity(64);
            for i in 0..64u64 {
                if i % 10 < read_pct / 10 {
                    probe += 61;
                    batch.push(
                        abdl::parse::parse_request(&format!(
                            "RETRIEVE ((FILE = t) and (u = {})) (*)",
                            probe % E20_ROWS
                        ))
                        .unwrap(),
                    );
                } else {
                    next_key += 1;
                    batch.push(abdl::Request::Insert {
                        record: abdl::Record::from_pairs([("FILE", abdl::Value::str("t"))])
                            .with("u", abdl::Value::Int(next_key))
                            .with("v", abdl::Value::Int(next_key % 997)),
                    });
                }
            }
            batch
        };
        out[slot] = e20_pipeline_throughput(&mut c, make, 10, 3);
    }
    (out[0], out[1])
}

/// One end-to-end E20 measurement: `sessions` threads each drive
/// `per_session` seeded requests — `read_pct`% reads (key-scoped point
/// probes on the working set; every 16th read a selective broadcast
/// scan), the rest unique-keyed inserts — through a database-sharded
/// [`mlds::MldsService`] over a durable `backends`-backend controller,
/// with parallel read flights toggled by `parallel`.
#[allow(clippy::type_complexity)]
fn e20_run(
    sessions: u64,
    per_session: u64,
    read_pct: u64,
    parallel: bool,
    backends: usize,
) -> (f64, crate::timing::Histogram, bool, abdl::ExecTotals) {
    use crate::timing::Histogram;
    const DBS: u64 = 4;
    let dir = std::env::temp_dir().join(format!(
        "mlds-e20-{}-{sessions}-{read_pct}-{}-{backends}",
        std::process::id(),
        u8::from(parallel)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut mlds = mlds::Mlds::durable_backend(backends, &dir).expect("durable controller");
    // Seed through `execute_batch` so the WAL batches its syncs —
    // thousands of serially fsynced inserts would dwarf the run.
    let seed_dbs = |k: &mut mbds::Controller| {
        for d in 0..DBS {
            let mut ns = mlds::NamespacedKernel::new(k, &format!("db{d}"));
            ns.create_file("t");
            ns.add_unique_constraint("t", vec!["u".to_owned()]);
            let rows: Vec<abdl::Request> = (0..E20_ROWS)
                .map(|u| abdl::Request::Insert {
                    record: abdl::Record::from_pairs([(
                        "FILE",
                        abdl::Value::str(format!("db{d}.t")),
                    )])
                    .with("u", abdl::Value::Int(u))
                    .with("v", abdl::Value::Int(u * 37 % 997)),
                })
                .collect();
            for chunk in rows.chunks(64) {
                for res in k.execute_batch(chunk) {
                    res.expect("e20 seed insert");
                }
            }
        }
    };
    seed_dbs(mlds.kernel_mut());
    mlds.kernel_mut().set_parallel_reads(parallel);
    let mut svc = mlds::MldsService::start_sharded(mlds, DBS as usize);
    let handles: Vec<mlds::ServiceSession> =
        (0..sessions).map(|s| svc.open(&format!("u{s}"), &format!("db{}", s % DBS))).collect();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions as usize + 1));
    let mut joins = Vec::new();
    for (s, session) in handles.into_iter().enumerate() {
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            let mut rng = abdl::prng::Prng::seed_from_u64(0xE20 + s as u64);
            let mut hist = Histogram::new();
            let mut next_key = (s as i64 + 1) * 1_000_000;
            barrier.wait();
            for i in 0..per_session {
                let req = if rng.gen_range(0, 100) < read_pct as i64 {
                    if i % 16 == 15 {
                        // A selective broadcast scan: every backend
                        // participates, few records come back.
                        abdl::parse::parse_request(
                            "RETRIEVE ((FILE = t) and (v < 40)) (*)",
                        )
                        .unwrap()
                    } else {
                        // A key-scoped point probe: a single-backend
                        // read the wave overlaps with its neighbours.
                        let u = rng.gen_range(0, E20_ROWS);
                        abdl::parse::parse_request(&format!(
                            "RETRIEVE ((FILE = t) and (u = {u})) (*)"
                        ))
                        .unwrap()
                    }
                } else {
                    next_key += 1;
                    abdl::Request::Insert {
                        record: abdl::Record::from_pairs([("FILE", abdl::Value::str("t"))])
                            .with("u", abdl::Value::Int(next_key))
                            .with("v", abdl::Value::Int(next_key % 997)),
                    }
                };
                let start = Instant::now();
                session.submit(req).expect("e20 request");
                hist.record(start.elapsed().as_nanos() as u64);
            }
            hist
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut hist = Histogram::new();
    for j in joins {
        hist.merge(&j.join().expect("e20 session thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    let (mlds, report) = svc.into_parts();
    let totals = mlds.exec_totals();

    // Equivalence spot-check: replay the admission log serially on a
    // fresh in-memory system and compare every normalized outcome.
    let mut fresh = mlds::Mlds::multi_backend(backends);
    seed_dbs(fresh.kernel_mut());
    let replay_equivalent = report.admissions.iter().all(|entry| {
        let mut ns = mlds::NamespacedKernel::new(fresh.kernel_mut(), &entry.db);
        mlds::service::outcome_of(&ns.execute(&entry.request)) == entry.outcome
    });
    drop(mlds);
    let _ = std::fs::remove_dir_all(&dir);
    (secs, hist, replay_equivalent, totals)
}

/// Run the E20 sweep: the controller-level read-pipeline comparison
/// (the headline), then the end-to-end service sweep — read fraction
/// (0/50/90/100%) x session count (1/8/64) with parallel read flights
/// on, the serial-read baseline at 64 sessions for every read
/// fraction, and a backend-count sweep on the 90%-read mix.
pub fn e20_report() -> E20Report {
    const PER_SESSION: u64 = 32;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();

    // --- Part 1: the read pipeline at the controller. -----------------
    let _ = writeln!(
        out,
        "read pipeline, controller level: 64-request batches, {E20_ROWS}-row working set, \
         4 in-memory backends, best of 3 trials\n"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>16} {:>14} {:>9}",
        "mix", "parallel req/s", "serial req/s", "speedup"
    );
    let (read_par, read_ser) = e20_pipeline_pair(100);
    let pipeline_speedup_read_only = read_par / read_ser;
    let _ = writeln!(
        out,
        "{:>10} {read_par:>16.0} {read_ser:>14.0} {pipeline_speedup_read_only:>8.2}x",
        "100% read"
    );
    let (mix_par, mix_ser) = e20_pipeline_pair(90);
    let pipeline_speedup_90_10 = mix_par / mix_ser;
    let _ = writeln!(
        out,
        "{:>10} {mix_par:>16.0} {mix_ser:>14.0} {pipeline_speedup_90_10:>8.2}x",
        "90/10 mix"
    );

    // --- Part 2: end to end through the sharded service. ---------------
    let _ = writeln!(
        out,
        "\nend to end: 4 durable backends (file-backed WAL), k = 2, 4 sharded admission \
         workers; {PER_SESSION} requests per session ({cores} core(s) available)\n"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>7} {:>8} {:>7} {:>9}",
        "read%", "sessions", "requests", "req/s", "p50 (us)", "p99 (us)", "rdflights", "mixed",
        "probes", "syncs", "replay=="
    );
    let mut rows = String::new();
    let mut all_equivalent = true;
    let mut thr_on = std::collections::BTreeMap::new();
    let us = |ns: u64| ns as f64 / 1000.0;
    let push_row = |rows: &mut String,
                        read_pct: u64,
                        sessions: u64,
                        backends: usize,
                        parallel: bool,
                        thr: f64,
                        hist: &crate::timing::Histogram,
                        t: &abdl::ExecTotals,
                        equivalent: bool| {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{ \"read_pct\": {read_pct}, \"sessions\": {sessions}, \
             \"backends\": {backends}, \"parallel_reads\": {parallel}, \
             \"throughput_per_s\": {thr:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"read_flights\": {}, \"mixed_flights\": {}, \"read_probes\": {}, \
             \"wal_syncs\": {}, \"replay_equivalent\": {equivalent} }}",
            hist.p50(),
            hist.p99(),
            t.sched_read_flights,
            t.sched_mixed_flights,
            t.read_probes,
            t.wal_syncs
        );
    };
    for read_pct in [0u64, 50, 90, 100] {
        for sessions in [1u64, 8, 64] {
            let (secs, hist, equivalent, t) = e20_run(sessions, PER_SESSION, read_pct, true, 4);
            let requests = sessions * PER_SESSION;
            let thr = requests as f64 / secs;
            thr_on.insert((read_pct, sessions), thr);
            all_equivalent &= equivalent;
            let _ = writeln!(
                out,
                "{read_pct:>6} {sessions:>8} {requests:>8} {thr:>10.0} {:>10.1} {:>10.1} \
                 {:>10} {:>7} {:>8} {:>7} {:>9}",
                us(hist.p50()),
                us(hist.p99()),
                t.sched_read_flights,
                t.sched_mixed_flights,
                t.read_probes,
                t.wal_syncs,
                if equivalent { "yes" } else { "NO" }
            );
            push_row(&mut rows, read_pct, sessions, 4, true, thr, &hist, &t, equivalent);
        }
    }

    let _ = writeln!(out, "\nserial-read baseline (parallel reads off) at 64 sessions:");
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>16} {:>9}",
        "read%", "serial req/s", "parallel req/s", "speedup"
    );
    let mut speedup_90_64 = 0.0f64;
    for read_pct in [0u64, 50, 90, 100] {
        let (secs, hist, equivalent, t) = e20_run(64, PER_SESSION, read_pct, false, 4);
        let thr = (64 * PER_SESSION) as f64 / secs;
        all_equivalent &= equivalent;
        let par = thr_on[&(read_pct, 64)];
        let speedup = par / thr;
        if read_pct == 90 {
            speedup_90_64 = speedup;
        }
        let _ = writeln!(out, "{read_pct:>6} {thr:>14.0} {par:>16.0} {speedup:>8.2}x");
        push_row(&mut rows, read_pct, 64, 4, false, thr, &hist, &t, equivalent);
    }

    let _ = writeln!(out, "\nbackend sweep, 90% reads, 64 sessions, parallel reads on:");
    let _ = writeln!(out, "{:>8} {:>10} {:>8}", "backends", "req/s", "probes");
    for backends in [2usize, 8] {
        let (secs, hist, equivalent, t) = e20_run(64, PER_SESSION, 90, true, backends);
        let thr = (64 * PER_SESSION) as f64 / secs;
        all_equivalent &= equivalent;
        let _ = writeln!(out, "{backends:>8} {thr:>10.0} {:>8}", t.read_probes);
        push_row(&mut rows, 90, 64, backends, true, thr, &hist, &t, equivalent);
    }

    let _ = writeln!(
        out,
        "\nread pipeline: {pipeline_speedup_read_only:.2}x read-only, \
         {pipeline_speedup_90_10:.2}x on the 90/10 mix; end-to-end 90%-read mix at 64 \
         sessions: {speedup_90_64:.2}x the serial-read baseline{}; admission-log replays {}",
        if cores == 1 {
            " (single-core host: pipelining only, no backend overlap)"
        } else {
            ""
        },
        if all_equivalent { "matched every outcome" } else { "DIVERGED" }
    );
    let json = format!(
        "{{\n  \"experiment\": \"e20\",\n  \"replication\": 2,\n  \"cores\": {cores},\n  \
         \"working_set_rows\": {E20_ROWS},\n  \"per_session_requests\": {PER_SESSION},\n  \
         \"pipeline_speedup_read_only\": {pipeline_speedup_read_only:.3},\n  \
         \"pipeline_speedup_90_10\": {pipeline_speedup_90_10:.3},\n  \
         \"speedup_90_read_64_sessions\": {speedup_90_64:.3},\n  \
         \"replay_equivalent\": {all_equivalent},\n  \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    E20Report {
        table: out,
        json,
        pipeline_speedup_read_only,
        pipeline_speedup_90_10,
        speedup_90_64,
        cores,
        replay_equivalent: all_equivalent,
    }
}

/// The parallel-read-flight sweep; [`e20_report`] has the raw numbers.
pub fn e20() -> String {
    e20_report().table
}

// ----- E21 ------------------------------------------------------------

/// Raw numbers from the E21 elastic-cluster sweep, plus the rendered
/// tables. The `experiments` binary writes `json` to `BENCH_PR10.json`
/// whenever e21 is selected so CI can archive the run.
pub struct E21Report {
    /// The human-readable tables (what [`e21`] returns).
    pub table: String,
    /// The same numbers as a machine-readable JSON document.
    pub json: String,
    /// Foreground throughput while the add-backend rebalance was in
    /// flight, as a fraction of the quiescent baseline, at the largest
    /// working set.
    pub fg_retained_add: f64,
    /// Same fraction while backend 0 was draining.
    pub fg_retained_drain: f64,
    /// Group-move shipping rate (MB/s) across add + drain at the
    /// largest working set.
    pub move_mb_per_s: f64,
    /// Flat-map bytes / interval-compressed resident bytes of the
    /// key→group directory map at the largest working set.
    pub compression_ratio: f64,
    /// The elastic run's logical digest matched a static cluster that
    /// executed the same workload with no membership changes.
    pub elastic_matches_static: bool,
}

/// One scale point of the E21 sweep.
struct E21Scale {
    rows: i64,
    /// Quiescent foreground throughput (req/s) before any rebalance.
    base_rps: f64,
    /// Foreground req/s while the add (resp. drain) queue was
    /// non-empty, and the wall-clock seconds of that window.
    add_rps: f64,
    add_secs: f64,
    drain_rps: f64,
    drain_secs: f64,
    /// Worst single 64-request batch (seconds) observed across the add
    /// and drain windows — the per-client stall bound the chunked
    /// brackets guarantee.
    worst_batch_secs: f64,
    /// Rebalance work across add + drain: groups retargeted, record
    /// bytes shipped, foreground batches stalled out of flight
    /// formation.
    groups: u64,
    bytes: u64,
    stalls: u64,
    compression: mbds::CompressionStats,
    /// `Some(matched)` when the static-cluster digest replay ran.
    matches_static: Option<bool>,
}

/// Foreground batch for the elastic sweep: 64 requests, 90% key-scoped
/// point reads over the seeded working set, 10% fresh unique inserts
/// (whose keys are pushed onto `inserted` so a static replay can
/// reproduce the run).
fn e21_batch(
    rows: i64,
    probe: &mut i64,
    next_key: &mut i64,
    inserted: &mut Vec<i64>,
) -> Vec<abdl::Request> {
    let mut batch = Vec::with_capacity(64);
    for i in 0..64 {
        if i % 10 == 9 {
            *next_key += 1;
            inserted.push(*next_key);
            batch.push(abdl::Request::Insert {
                record: abdl::Record::from_pairs([("FILE", abdl::Value::str("t"))])
                    .with("u", abdl::Value::Int(*next_key))
                    .with("v", abdl::Value::Int(*next_key % 997)),
            });
        } else {
            *probe += 7919; // a prime stride scatters probes over the set
            batch.push(
                abdl::parse::parse_request(&format!(
                    "RETRIEVE ((FILE = t) and (u = {})) (*)",
                    *probe % rows
                ))
                .unwrap(),
            );
        }
    }
    batch
}

/// A 3-backend in-memory controller with `rows` unique-keyed records
/// in file `t`, seeded through the batch path.
fn e21_controller(rows: i64) -> mbds::Controller {
    let mut c = mbds::Controller::new(3);
    // The bench measures throughput, not failure detection: at millions
    // of rows a snapshot-scale scan can outlast the default 1 s reply
    // window, and a wrongly-demoted backend would silently drop records
    // from the elastic run. Give the window benchmark-scale headroom.
    c.set_reply_timeout(std::time::Duration::from_secs(300));
    // Gentle rebalance pacing: each foreground request piggybacks at
    // most one 8-record move bracket, so the worst-case per-request
    // stall stays in the sub-millisecond range at the cost of a longer
    // rebalance window. (The default 512-record chunk optimizes for
    // window length instead and retains almost no foreground
    // throughput at this scale.)
    c.set_move_chunk(8);
    c.create_file("t");
    c.add_unique_constraint("t", vec!["u".to_owned()]);
    let seed: Vec<abdl::Request> = (0..rows)
        .map(|u| abdl::Request::Insert {
            record: abdl::Record::from_pairs([("FILE", abdl::Value::str("t"))])
                .with("u", abdl::Value::Int(u))
                .with("v", abdl::Value::Int(u * 37 % 997)),
        })
        .collect();
    for chunk in seed.chunks(256) {
        for res in c.execute_batch(chunk) {
            res.expect("e21 seed insert");
        }
    }
    c
}

/// Run foreground batches until `done(c)`, returning (req/s, secs,
/// worst single-batch seconds). At least one batch always runs so a
/// quiescent window still measures something. The worst-batch figure
/// is the degradation bound a client actually observes: no 64-request
/// batch stalls longer than this while moves are in flight.
fn e21_drive(
    c: &mut mbds::Controller,
    rows: i64,
    probe: &mut i64,
    next_key: &mut i64,
    inserted: &mut Vec<i64>,
    mut done: impl FnMut(&mbds::Controller) -> bool,
) -> (f64, f64, f64) {
    let mut n = 0u64;
    let mut worst = 0.0f64;
    let start = Instant::now();
    loop {
        let batch = e21_batch(rows, probe, next_key, inserted);
        n += batch.len() as u64;
        let batch_start = Instant::now();
        for res in c.execute_batch(&batch) {
            res.expect("e21 foreground request");
        }
        worst = worst.max(batch_start.elapsed().as_secs_f64());
        if done(c) {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (n as f64 / secs, secs, worst)
}

/// One E21 scale point: seed `rows` records on 3 backends, measure the
/// quiescent foreground baseline, then add a backend and drain backend
/// 0 with foreground traffic flowing — the controller amortizes the
/// queued group moves behind each request. With `check_static`, a
/// fresh 3-backend cluster replays the same logical workload and the
/// placement-independent digests are compared.
fn e21_measure(rows: i64, check_static: bool) -> E21Scale {
    const BASELINE_BATCHES: usize = 24;
    let mut c = e21_controller(rows);
    let compression = c.directory_compression();
    let mut probe = 0i64;
    let mut next_key = rows;
    let mut inserted: Vec<i64> = Vec::new();

    // Quiescent baseline (warm one batch untimed first).
    for res in c.execute_batch(&e21_batch(rows, &mut probe, &mut next_key, &mut inserted)) {
        res.expect("e21 warmup");
    }
    let mut left = BASELINE_BATCHES;
    let (base_rps, _, _) =
        e21_drive(&mut c, rows, &mut probe, &mut next_key, &mut inserted, |_| {
            left -= 1;
            left == 0
        });

    let t0 = c.exec_totals();
    c.add_backend().expect("e21 add backend");
    let (add_rps, add_secs, add_worst) =
        e21_drive(&mut c, rows, &mut probe, &mut next_key, &mut inserted, |c| {
            c.rebalance_pending() == 0
        });

    c.drain_backend(0).expect("e21 drain backend 0");
    let (drain_rps, drain_secs, drain_worst) =
        e21_drive(&mut c, rows, &mut probe, &mut next_key, &mut inserted, |c| {
            c.rebalance_pending() == 0
        });
    let t1 = c.exec_totals();

    let matches_static = check_static.then(|| {
        let mut s = e21_controller(rows);
        let extra: Vec<abdl::Request> = inserted
            .iter()
            .map(|&u| abdl::Request::Insert {
                record: abdl::Record::from_pairs([("FILE", abdl::Value::str("t"))])
                    .with("u", abdl::Value::Int(u))
                    .with("v", abdl::Value::Int(u % 997)),
            })
            .collect();
        for chunk in extra.chunks(256) {
            for res in s.execute_batch(chunk) {
                res.expect("e21 static replay insert");
            }
        }
        s.logical_digest().expect("static digest") == c.logical_digest().expect("elastic digest")
    });

    E21Scale {
        rows,
        base_rps,
        add_rps,
        add_secs,
        drain_rps,
        drain_secs,
        worst_batch_secs: add_worst.max(drain_worst),
        groups: t1.groups_moved - t0.groups_moved,
        bytes: t1.move_bytes - t0.move_bytes,
        stalls: t1.rebalance_stalls - t0.rebalance_stalls,
        compression,
        matches_static,
    }
}

/// Run the E21 sweep: three working-set sizes up to `MLDS_E21_ROWS`
/// records (default 1,000,000 — override the env var for a quicker or
/// deeper run), each measuring the quiescent foreground baseline, then
/// an online add-backend and a drain with traffic flowing; the largest
/// scale also replays the workload on a static cluster and compares
/// placement-independent digests.
pub fn e21_report() -> E21Report {
    let full: i64 = std::env::var("MLDS_E21_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1_000)
        .unwrap_or(1_000_000);
    let scales = [full / 10, full / 3, full];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "elastic cluster: 3 in-memory backends (k = 2), 64-request foreground batches \
         (90% point reads / 10% fresh inserts); .addbackend then .drain 0 with traffic \
         flowing, group moves amortized behind each request\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>10} {:>13} {:>8} {:>13} {:>8} {:>8} {:>7} {:>9} {:>7} {:>8}",
        "rows", "base req/s", "add-win req/s", "add s", "drain-win r/s", "drain s", "worst ms",
        "groups", "moved MB", "MB/s", "stalls"
    );
    let mut rows_json = String::new();
    let mut last: Option<E21Scale> = None;
    for (i, &rows) in scales.iter().enumerate() {
        let m = e21_measure(rows, i == scales.len() - 1);
        let mb = m.bytes as f64 / 1e6;
        let mbps = mb / (m.add_secs + m.drain_secs).max(1e-9);
        let _ = writeln!(
            out,
            "{:>9} {:>10.0} {:>13.0} {:>8.2} {:>13.0} {:>8.2} {:>8.1} {:>7} {:>9.1} {:>7.1} {:>8}",
            m.rows, m.base_rps, m.add_rps, m.add_secs, m.drain_rps, m.drain_secs,
            m.worst_batch_secs * 1e3, m.groups, mb, mbps, m.stalls
        );
        if !rows_json.is_empty() {
            rows_json.push_str(",\n");
        }
        let _ = write!(
            rows_json,
            "    {{ \"rows\": {}, \"baseline_rps\": {:.1}, \"add_window_rps\": {:.1}, \
             \"add_window_s\": {:.3}, \"drain_window_rps\": {:.1}, \"drain_window_s\": {:.3}, \
             \"worst_batch_s\": {:.4}, \
             \"groups_moved\": {}, \"move_bytes\": {}, \"rebalance_stalls\": {}, \
             \"dir_entries\": {}, \"dir_flat_bytes\": {}, \"dir_resident_bytes\": {}, \
             \"dir_runs\": {}, \"dir_overlay\": {}, \"matches_static\": {} }}",
            m.rows,
            m.base_rps,
            m.add_rps,
            m.add_secs,
            m.drain_rps,
            m.drain_secs,
            m.worst_batch_secs,
            m.groups,
            m.bytes,
            m.stalls,
            m.compression.entries,
            m.compression.flat_bytes,
            m.compression.resident_bytes,
            m.compression.runs,
            m.compression.overlay,
            m.matches_static.map_or("null".to_owned(), |b| b.to_string())
        );
        last = Some(m);
    }
    let m = last.expect("at least one scale ran");
    let fg_retained_add = m.add_rps / m.base_rps;
    let fg_retained_drain = m.drain_rps / m.base_rps;
    let move_mb_per_s = m.bytes as f64 / 1e6 / (m.add_secs + m.drain_secs).max(1e-9);
    let compression_ratio =
        m.compression.flat_bytes as f64 / m.compression.resident_bytes.max(1) as f64;
    let elastic_matches_static = m.matches_static.unwrap_or(false);
    let _ = writeln!(
        out,
        "\ndirectory map at {} rows: {} entries, flat ~{} B vs compressed ~{} B \
         ({compression_ratio:.1}x, {} run(s) + {} overlay)",
        m.rows,
        m.compression.entries,
        m.compression.flat_bytes,
        m.compression.resident_bytes,
        m.compression.runs,
        m.compression.overlay
    );
    let _ = writeln!(
        out,
        "foreground retained during rebalance: {:.0}% (add), {:.0}% (drain); \
         worst 64-request batch stalled {:.1} ms; moves shipped at {move_mb_per_s:.1} MB/s; \
         elastic digest {} the static cluster's",
        fg_retained_add * 100.0,
        fg_retained_drain * 100.0,
        m.worst_batch_secs * 1e3,
        if elastic_matches_static { "matches" } else { "DIVERGED from" }
    );
    let json = format!(
        "{{\n  \"experiment\": \"e21\",\n  \"backends\": 3,\n  \"replication\": 2,\n  \
         \"fg_retained_add\": {fg_retained_add:.3},\n  \
         \"fg_retained_drain\": {fg_retained_drain:.3},\n  \
         \"move_mb_per_s\": {move_mb_per_s:.2},\n  \
         \"compression_ratio\": {compression_ratio:.2},\n  \
         \"elastic_matches_static\": {elastic_matches_static},\n  \"runs\": [\n{rows_json}\n  ]\n}}\n"
    );
    E21Report {
        table: out,
        json,
        fg_retained_add,
        fg_retained_drain,
        move_mb_per_s,
        compression_ratio,
        elastic_matches_static,
    }
}

/// The elastic-cluster sweep; [`e21_report`] has the raw numbers.
pub fn e21() -> String {
    e21_report().table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs() {
        for (id, _) in EXPERIMENTS {
            if id == "e9" || id == "e20" || id == "e21" {
                continue; // timing sweeps; covered by their own tests
            }
            let out = run_experiment(id).unwrap_or_else(|| panic!("missing {id}"));
            assert!(!out.trim().is_empty(), "{id} produced no output");
        }
    }

    #[test]
    fn e7_shape_is_reciprocal_and_e8_flat() {
        let e7 = e7();
        // Extract speedups from the table: last backend row should be
        // close to 16x.
        let last = e7.lines().last().unwrap();
        let speedup: f64 = last
            .split_whitespace()
            .nth(2)
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(speedup > 10.0, "E7 final speedup too small: {speedup} in\n{e7}");

        let e8 = e8();
        let last = e8.lines().last().unwrap();
        let ratio: f64 = last.split_whitespace().nth(3).unwrap().parse().unwrap();
        assert!((0.9..1.2).contains(&ratio), "E8 drifted: {ratio} in\n{e8}");
    }

    #[test]
    fn e15_optimisations_beat_the_legacy_configuration() {
        let r = e15_report();
        // Floor well below the typical 3–6x so scheduler noise cannot
        // flake the suite; BENCH_PR4.json records the measured number.
        assert!(
            r.unique_insert_speedup >= 1.5,
            "unique-insert speedup collapsed: {:.2}x\n{}",
            r.unique_insert_speedup,
            r.table
        );
        assert!(
            r.scoped_messages_per_query < r.broadcast_messages_per_query,
            "scoped routing sent no fewer messages: {} vs {}",
            r.scoped_messages_per_query,
            r.broadcast_messages_per_query
        );
        assert!(r.json.contains("\"speedup\""), "JSON missing speedup:\n{}", r.json);
    }

    #[test]
    fn e16_promotion_beats_cold_recovery() {
        let r = e16_report();
        // Typical speedups are orders of magnitude (promotion replays
        // nothing); a 5x floor keeps scheduler noise from flaking the
        // suite while BENCH_PR5.json records the measured number.
        assert!(
            r.promotion_speedup_16k >= 5.0,
            "promotion speedup collapsed: {:.1}x\n{}",
            r.promotion_speedup_16k,
            r.table
        );
        assert!(r.json.contains("\"promotion_speedup_16k\""), "JSON malformed:\n{}", r.json);
    }

    #[test]
    fn e17_lossy_socket_runs_converge() {
        let r = e17_report();
        if r.skipped {
            // The bench package alone does not build the backend
            // binary; the report must say so rather than panic.
            assert!(r.table.contains("skipped"), "skip note missing:\n{}", r.table);
            return;
        }
        assert!(r.lossy_converged, "a lossy run diverged:\n{}", r.table);
        assert!(r.lossy_retries > 0, "fault plans never cost a retry:\n{}", r.table);
        assert!(r.tcp_overhead_x > 0.0);
        assert!(r.json.contains("\"tcp_overhead_x\""), "JSON malformed:\n{}", r.json);
    }

    #[test]
    fn e18_concurrent_sessions_beat_the_sequential_baseline() {
        let r = e18_report();
        // Group commit alone collapses 64 sessions' syncs; typical
        // speedups are well above the 2x acceptance bar. Floor at 1.5
        // so scheduler noise cannot flake the suite; BENCH_PR7.json
        // records the measured number.
        assert!(
            r.speedup_64 >= 1.5,
            "64-session speedup collapsed: {:.2}x\n{}",
            r.speedup_64,
            r.table
        );
        assert!(r.replay_equivalent, "an admission-log replay diverged:\n{}", r.table);
        assert!(r.json.contains("\"speedup_64_sessions\""), "JSON malformed:\n{}", r.json);
    }

    #[test]
    fn e20_parallel_read_pipeline_beats_serial_reads() {
        let r = e20_report();
        // The controller-level pipeline comparison is the asserted
        // floor: it holds on any host, single-core included, because
        // staging a wave removes the per-read send/block/wake round
        // trip even when backend work cannot overlap. Typical measured
        // speedups are 2-3.5x read-only; floor at 1.5 so scheduler
        // noise cannot flake the suite, while BENCH_PR9.json records
        // the measured numbers (including the end-to-end sweep, which
        // on a multi-core host also shows backend overlap).
        assert!(
            r.pipeline_speedup_read_only >= 1.5,
            "read-only pipeline speedup collapsed: {:.2}x\n{}",
            r.pipeline_speedup_read_only,
            r.table
        );
        assert!(
            r.pipeline_speedup_90_10 >= 1.2,
            "90/10 mixed-flight speedup collapsed: {:.2}x\n{}",
            r.pipeline_speedup_90_10,
            r.table
        );
        assert!(r.replay_equivalent, "an admission-log replay diverged:\n{}", r.table);
        assert!(r.speedup_90_64 > 0.0);
        assert!(
            r.json.contains("\"pipeline_speedup_read_only\"")
                && r.json.contains("\"speedup_90_read_64_sessions\""),
            "JSON malformed:\n{}",
            r.json
        );
    }

    #[test]
    fn e21_elastic_run_matches_the_static_cluster() {
        // A CI-scale point of the E21 sweep: the timing columns are
        // whatever the host gives, but the correctness columns are
        // asserted — groups actually moved, bytes actually shipped,
        // and the elastic run's placement-independent digest matches
        // a static cluster that executed the same workload.
        let m = e21_measure(2_000, true);
        assert!(m.groups > 0, "add + drain moved no groups");
        assert!(m.bytes > 0, "group moves shipped no record bytes");
        assert_eq!(
            m.matches_static,
            Some(true),
            "elastic digest diverged from the static cluster"
        );
        assert!(m.base_rps > 0.0 && m.add_rps > 0.0 && m.drain_rps > 0.0);
        assert_eq!(m.compression.entries, 2_000);
    }

    #[test]
    fn e10_fanout_matches_chapter_vi_expectations() {
        let table = e10();
        // FIND CURRENT must be 0 requests; FIND ANY exactly 1.
        for line in table.lines() {
            if line.starts_with("FIND CURRENT") {
                assert!(line.contains(" 0 "), "FIND CURRENT row: {line}");
            }
            if line.starts_with("FIND ANY") {
                let avg: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
                assert!((avg - 1.0).abs() < 1e-9, "FIND ANY avg: {line}");
            }
        }
    }
}
