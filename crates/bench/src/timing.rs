//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the Criterion dependency was
//! replaced with this self-contained runner: each `[[bench]]` target is
//! a plain `fn main()` (the manifests set `harness = false`) that calls
//! [`bench`] per case. The runner warms the case up, then adaptively
//! picks an iteration count that fills a fixed measurement window and
//! reports mean ns/iter. It is deliberately simple — no outlier
//! rejection or statistics — but stable enough for the relative
//! comparisons (indexed vs scan, 1 vs N backends, one-step vs
//! per-transaction) the experiment write-ups rely on.

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(250);

/// Time `f` and print `label: <mean> ns/iter (<iters> iters)`.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) {
    // Warm-up: run until the warm-up window elapses, counting runs to
    // estimate a batch size for the measurement phase.
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < WARMUP || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = WARMUP.as_nanos().max(1) / u128::from(warm_iters.max(1));
    let target = (MEASURE.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000) as u64;

    let start = Instant::now();
    for _ in 0..target {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() / u128::from(target);
    println!("{label}: {ns} ns/iter ({target} iters)");
}

/// Print a group header so related cases read as a block.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

/// Sub-bucket resolution of [`Histogram`]: each power-of-two range is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantile error at `1 / 2^SUB_BITS` (12.5%).
const SUB_BITS: u32 = 3;
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// A fixed-memory log-linear latency histogram (nanoseconds).
///
/// Values land in log-spaced buckets — one group of eight linear
/// sub-buckets per power of two — so the whole structure is a flat
/// 496-slot array: no allocation per sample, mergeable across threads,
/// and quantiles in one pass. Exact `min`/`max` are tracked on the
/// side; `p50`/`p90`/`p99` are bucket upper bounds, accurate to the
/// sub-bucket width. This is all the concurrent workload driver (E18)
/// needs, without a statistics dependency.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn index(v: u64) -> usize {
        if v < (1 << SUB_BITS) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let exp = msb - SUB_BITS;
        let sub = (v >> exp) & ((1 << SUB_BITS) - 1);
        (((exp + 1) as usize) << SUB_BITS) + sub as usize
    }

    /// Upper bound (inclusive) of bucket `i` — the value reported for
    /// quantiles landing in it.
    fn upper_bound(i: usize) -> u64 {
        let sub = (i as u64) & ((1 << SUB_BITS) - 1);
        let exp = (i >> SUB_BITS) as u32;
        if exp == 0 {
            sub
        } else {
            // The top bucket's bound exceeds u64; widen and clamp.
            let bound = ((1u128 << SUB_BITS) + sub as u128 + 1) << (exp - 1);
            (bound - 1).min(u64::MAX as u128) as u64
        }
    }

    /// Record one sample (nanoseconds).
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Fold `other`'s samples into `self` (per-thread merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at percentile `p` (0–100): the upper bound of the
    /// bucket holding the `ceil(p% · count)`-th smallest sample,
    /// clamped to the exact observed min/max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// One-line summary in microseconds: `p50=… p90=… p99=… max=…`.
    pub fn summary_us(&self) -> String {
        let us = |ns: u64| ns as f64 / 1000.0;
        format!(
            "p50={:.1}µs p90={:.1}µs p99={:.1}µs max={:.1}µs (n={})",
            us(self.p50()),
            us(self.p90()),
            us(self.p99()),
            us(self.max_ns()),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 7);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn quantiles_are_within_sub_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50() as f64;
        assert!((430.0..=580.0).contains(&p50), "p50 off: {p50}");
        let p99 = h.p99() as f64;
        assert!((920.0..=1000.0).contains(&p99), "p99 off: {p99}");
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99(), "quantiles must be monotone");
        assert_eq!(h.mean_ns(), 500);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 70, 900, 12_345, 999_999] {
            a.record(v);
            whole.record(v);
        }
        for v in [17u64, 250_000, 8] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min_ns(), whole.min_ns());
        assert_eq!(a.max_ns(), whole.max_ns());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn wide_range_buckets_stay_in_bounds() {
        let mut h = Histogram::new();
        for shift in 0..63 {
            h.record(1u64 << shift);
        }
        h.record(u64::MAX);
        assert_eq!(h.count(), 64);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }
}
