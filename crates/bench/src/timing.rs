//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the Criterion dependency was
//! replaced with this self-contained runner: each `[[bench]]` target is
//! a plain `fn main()` (the manifests set `harness = false`) that calls
//! [`bench`] per case. The runner warms the case up, then adaptively
//! picks an iteration count that fills a fixed measurement window and
//! reports mean ns/iter. It is deliberately simple — no outlier
//! rejection or statistics — but stable enough for the relative
//! comparisons (indexed vs scan, 1 vs N backends, one-step vs
//! per-transaction) the experiment write-ups rely on.

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(250);

/// Time `f` and print `label: <mean> ns/iter (<iters> iters)`.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) {
    // Warm-up: run until the warm-up window elapses, counting runs to
    // estimate a batch size for the measurement phase.
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < WARMUP || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = WARMUP.as_nanos().max(1) / u128::from(warm_iters.max(1));
    let target = (MEASURE.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000) as u64;

    let start = Instant::now();
    for _ in 0..target {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() / u128::from(target);
    println!("{label}: {ns} ns/iter ({target} iters)");
}

/// Print a group header so related cases read as a block.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
