//! Synthetic workload generators.
//!
//! The thesis has no machine-readable workloads; these generators
//! produce (a) scaled University-like populations for the MBDS
//! experiments and (b) random-but-valid CODASYL-DML scripts for the
//! translation experiments. Everything is seeded for reproducibility.

use abdl::{Kernel, Record, Request, Value};
use abdl::prng::Prng;

/// Scale factor → population sizes (roughly the University schema's
/// shape: many students, fewer courses/faculty).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of student entities.
    pub students: usize,
    /// Number of course entities.
    pub courses: usize,
    /// Number of faculty entities.
    pub faculty: usize,
}

impl Scale {
    /// A scale with `n` students and proportional everything else.
    pub fn of(n: usize) -> Self {
        Scale { students: n, courses: n / 5 + 1, faculty: n / 10 + 1 }
    }

    /// Total entities.
    pub fn total(&self) -> usize {
        self.students + self.courses + self.faculty
    }
}

/// Majors used by the generator; selection predicates hit ~1/8 of the
/// students regardless of placement (the values cycle with period 8,
/// coprime with none of the usual backend counts mattering because
/// selection is by key range in the MBDS experiments).
pub const MAJORS: [&str; 8] =
    ["CS", "Math", "Physics", "History", "Biology", "Chemistry", "Music", "Art"];

/// Load a University-shaped population straight into a kernel in the
/// `AB(functional)` layout (files must exist — use
/// [`daplex::ab_map::install`] first). Returns the student keys.
pub fn load_university_scaled<K: Kernel>(kernel: &mut K, scale: Scale, seed: u64) -> Vec<i64> {
    let mut rng = Prng::seed_from_u64(seed);
    let schema = daplex::university::schema();
    let mut loader = daplex::ab_map::Loader::new(schema);

    let mut faculty = Vec::with_capacity(scale.faculty);
    for i in 0..scale.faculty {
        let k = loader
            .create_entity(
                kernel,
                "faculty",
                &[
                    ("ename", Value::str(format!("faculty_{i}"))),
                    ("salary", Value::Float(40_000.0 + rng.gen_range(0, 30_000) as f64)),
                    ("rank", Value::str(["instructor", "assistant", "associate", "full"][i % 4])),
                ],
            )
            .expect("faculty generation");
        faculty.push(k);
    }
    let mut courses = Vec::with_capacity(scale.courses);
    for i in 0..scale.courses {
        let k = loader
            .create_entity(
                kernel,
                "course",
                &[
                    ("title", Value::str(format!("course_{i}"))),
                    ("semester", Value::str(if i % 2 == 0 { "F87" } else { "S88" })),
                    ("credits", Value::Int(rng.gen_range(1, 6))),
                ],
            )
            .expect("course generation");
        courses.push(k);
    }
    let mut students = Vec::with_capacity(scale.students);
    for i in 0..scale.students {
        let k = loader
            .create_entity(
                kernel,
                "student",
                &[
                    ("name", Value::str(format!("student_{i}"))),
                    ("age", Value::Int(rng.gen_range(17, 30))),
                    ("major", Value::str(MAJORS[i % MAJORS.len()])),
                    ("gpa", Value::Float((rng.gen_range(200, 400) as f64) / 100.0)),
                ],
            )
            .expect("student generation");
        if !faculty.is_empty() {
            let adv = faculty[rng.index(faculty.len())];
            loader.link(kernel, "student", k, "advisor", adv).expect("advisor link");
        }
        students.push(k);
    }
    // teaching pairs: each course taught by 1–2 faculty.
    for &c in &courses {
        let n = rng.gen_range(1, 2i64.min(faculty.len().max(1) as i64) + 1);
        for _ in 0..n {
            let f = faculty[rng.index(faculty.len())];
            loader.link(kernel, "faculty", f, "teaching", c).expect("teaching link");
        }
    }
    students
}

/// Load a flat keyed file (`f` with integer keys and a payload) for
/// kernel-level experiments. Key-range predicates over it parallelize
/// evenly under round-robin placement.
pub fn load_flat<K: Kernel>(kernel: &mut K, records: usize) {
    kernel.create_file("f");
    for i in 0..records {
        let rec = Record::from_pairs([("FILE", Value::str("f"))])
            .with("f", Value::Int(i as i64))
            .with("payload", Value::Int(((i * 37) % 1000) as i64));
        kernel.execute(&Request::Insert { record: rec }).expect("flat load");
    }
}

/// The retrieval used by the MBDS response-time experiments: a key
/// range selecting `select` records.
pub fn range_retrieval(select: usize) -> Request {
    abdl::parse::parse_request(&format!("RETRIEVE ((FILE = f) and (f < {select})) (*)"))
        .expect("static request")
}

/// A mixed kernel workload (reads, updates, deletes) for throughput
/// benches.
pub fn mixed_requests(n: usize, keyspace: usize, seed: u64) -> Vec<Request> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.index(keyspace);
            match rng.index(10) {
                0..=6 => abdl::parse::parse_request(&format!(
                    "RETRIEVE ((FILE = f) and (f >= {k}) and (f < {})) (*)",
                    k + 20
                )),
                7 | 8 => abdl::parse::parse_request(&format!(
                    "UPDATE ((FILE = f) and (f = {k})) (payload = {})",
                    rng.gen_range(0, 1000)
                )),
                _ => abdl::parse::parse_request(&format!(
                    "RETRIEVE ((FILE = f) and (payload = {})) (COUNT(f))",
                    rng.gen_range(0, 1000)
                )),
            }
            .expect("static request")
        })
        .collect()
}

/// A generated CODASYL-DML script over the University database: a
/// random but *valid* statement sequence (currency is established
/// before statements that need it).
pub fn codasyl_script(statements: usize, seed: u64) -> String {
    let mut rng = Prng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(statements);
    let mut store_no = 0usize;
    while out.len() < statements {
        match rng.index(10) {
            0 | 1 => {
                let major = *rng.pick(&MAJORS);
                out.push(format!("MOVE '{major}' TO major IN student"));
                out.push("FIND ANY student USING major IN student".to_owned());
                out.push("GET student".to_owned());
            }
            2 => {
                out.push("FIND FIRST course WITHIN system_course".to_owned());
                out.push("FIND NEXT course WITHIN system_course".to_owned());
            }
            3 => {
                let major = *rng.pick(&MAJORS);
                out.push(format!("MOVE '{major}' TO major IN student"));
                out.push("FIND ANY student USING major IN student".to_owned());
                out.push("FIND OWNER WITHIN person_student".to_owned());
            }
            4 => {
                let major = *rng.pick(&MAJORS);
                out.push(format!("MOVE '{major}' TO major IN student"));
                out.push("FIND ANY student USING major IN student".to_owned());
                out.push("FIND OWNER WITHIN advisor".to_owned());
                out.push("FIND FIRST student WITHIN advisor".to_owned());
            }
            5 => {
                store_no += 1;
                out.push(format!("MOVE 'gen_{seed}_{store_no}' TO name IN person"));
                out.push(format!("MOVE {} TO age IN person", rng.gen_range(17, 60)));
                out.push("STORE person".to_owned());
            }
            6 => {
                let major = *rng.pick(&MAJORS);
                out.push(format!("MOVE '{major}' TO major IN student"));
                out.push("FIND ANY student USING major IN student".to_owned());
                out.push(format!("MOVE {} TO gpa IN student", rng.gen_range(20, 40) as f64 / 10.0));
                out.push("MODIFY gpa IN student".to_owned());
            }
            7 => {
                let major = *rng.pick(&MAJORS);
                out.push(format!("MOVE '{major}' TO major IN student"));
                out.push("FIND ANY student USING major IN student".to_owned());
                out.push("FIND CURRENT student WITHIN person_student".to_owned());
            }
            8 => {
                out.push("FIND FIRST person WITHIN system_person".to_owned());
                out.push("GET name IN person".to_owned());
            }
            _ => {
                let major = *rng.pick(&MAJORS);
                out.push(format!("MOVE '{major}' TO major IN student"));
                out.push("FIND ANY student USING major IN student".to_owned());
                out.push("DISCONNECT student FROM advisor".to_owned());
                out.push("FIND OWNER WITHIN person_student".to_owned());
            }
        }
    }
    out.truncate(statements);
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::Store;

    #[test]
    fn scaled_population_loads_and_queries() {
        let mut store = Store::new();
        daplex::ab_map::install(&daplex::university::schema(), &mut store);
        let students = load_university_scaled(&mut store, Scale::of(100), 7);
        assert_eq!(students.len(), 100);
        assert_eq!(store.file_len("student"), 100);
        assert_eq!(store.file_len("person"), 100);
        assert!(store.file_len("LINK_1") >= 21);
    }

    #[test]
    fn generated_scripts_parse_and_mostly_run() {
        let mut store = Store::new();
        daplex::ab_map::install(&daplex::university::schema(), &mut store);
        load_university_scaled(&mut store, Scale::of(50), 11);
        let net = transform::transform(&daplex::university::schema()).unwrap();
        let t = translator::Translator::for_functional(net);
        let mut ru = translator::RunUnit::new();
        let script = codasyl_script(120, 3);
        let stmts = codasyl::dml::parse_statements(&script).unwrap();
        let mut ok = 0usize;
        for s in &stmts {
            // End-of-set and no-currency conditions are legitimate
            // outcomes of a random walk; translation failures are not.
            match t.execute(&mut ru, &mut store, s) {
                Ok(_) => ok += 1,
                Err(translator::Error::EndOfSet { .. })
                | Err(translator::Error::NoCurrency { .. }) => {}
                Err(e) => panic!("generated statement `{s}` failed: {e}"),
            }
        }
        assert!(ok > stmts.len() / 2, "most statements should succeed ({ok}/{})", stmts.len());
    }

    #[test]
    fn mixed_requests_execute() {
        let mut store = Store::new();
        load_flat(&mut store, 500);
        for req in mixed_requests(100, 500, 5) {
            store.execute(&req).unwrap();
        }
    }
}
