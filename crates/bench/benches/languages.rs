//! Per-language-interface benchmarks: the same logical operations
//! through SQL and DL/I (the CODASYL and Daplex paths live in
//! `translation.rs`).

use abdl::Store;
use mlds_bench::timing::{bench, group};

fn sql_fixture() -> (relational::SqlTranslator, Store) {
    let schema = relational::ddl::parse_schema(
        "CREATE DATABASE bench;
         CREATE TABLE customer (cid INTEGER NOT NULL, cname CHAR(20), city CHAR(15),
                                PRIMARY KEY (cid));
         CREATE TABLE orders (oid INTEGER NOT NULL, cid INTEGER, total FLOAT,
                              PRIMARY KEY (oid));",
    )
    .unwrap();
    let mut store = Store::new();
    relational::ab_map::install(&schema, &mut store);
    let t = relational::SqlTranslator::new(schema);
    for i in 0..2_000i64 {
        let stmt = relational::dml::parse_statement_str(&format!(
            "INSERT INTO customer (cid, cname, city) VALUES ({i}, 'c{i}', 'city{}');",
            i % 50
        ))
        .unwrap();
        t.execute(&mut store, &stmt).unwrap();
        let stmt = relational::dml::parse_statement_str(&format!(
            "INSERT INTO orders (oid, cid, total) VALUES ({i}, {}, {}.5);",
            i % 2_000,
            (i * 13) % 997
        ))
        .unwrap();
        t.execute(&mut store, &stmt).unwrap();
    }
    (t, store)
}

fn dli_fixture() -> (dli::DliSession, Store) {
    let schema = dli::ddl::parse_schema(
        "HIERARCHY NAME IS bench.
         SEGMENT region.
           02 rno TYPE IS FIXED.
           SEQUENCE IS rno.
         SEGMENT store PARENT IS region.
           02 sno TYPE IS FIXED.
           02 sales TYPE IS FIXED.
           SEQUENCE IS sno.",
    )
    .unwrap();
    let mut store = Store::new();
    dli::ab_map::install(&schema, &mut store);
    let mut session = dli::DliSession::new(schema);
    for r in 0..20i64 {
        let calls =
            dli::calls::parse_calls(&format!("ISRT region (rno = {r})")).unwrap();
        session.execute(&mut store, &calls[0]).unwrap();
        for s in 0..50i64 {
            let calls = dli::calls::parse_calls(&format!(
                "ISRT store (sno = {s}, sales = {})",
                (r * 50 + s) % 313
            ))
            .unwrap();
            session.execute(&mut store, &calls[0]).unwrap();
        }
    }
    session.reset_position();
    (session, store)
}

fn main() {
    group("sql");
    {
        let (t, mut store) = sql_fixture();
        let select = relational::dml::parse_statement_str(
            "SELECT cname FROM customer WHERE city = 'city7';",
        )
        .unwrap();
        bench("select_point", || t.execute(&mut store, &select).unwrap().rows.len());
        let agg = relational::dml::parse_statement_str(
            "SELECT city, COUNT(cid) FROM customer GROUP BY city;",
        )
        .unwrap();
        bench("group_by", || t.execute(&mut store, &agg).unwrap().rows.len());
        let join = relational::dml::parse_statement_str(
            "SELECT c.cname, o.total FROM customer c, orders o \
             WHERE c.cid = o.cid AND c.city = 'city7';",
        )
        .unwrap();
        bench("equi_join", || t.execute(&mut store, &join).unwrap().rows.len());
    }

    group("dli");
    {
        let (mut session, mut store) = dli_fixture();
        let gu = dli::calls::parse_calls("GU region (rno = 13) store (sno = 37)").unwrap();
        bench("gu_path", || session.execute(&mut store, &gu[0]).unwrap().affected);
        let gu_root = dli::calls::parse_calls("GU region (rno = 5)").unwrap();
        let gnp = dli::calls::parse_calls("GNP store").unwrap();
        bench("gnp_sweep_50", || {
            session.execute(&mut store, &gu_root[0]).unwrap();
            let mut n = 0;
            while session.execute(&mut store, &gnp[0]).is_ok() {
                n += 1;
            }
            n
        });
    }
}
