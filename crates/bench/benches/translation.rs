//! CODASYL-DML→ABDL translation benchmarks (E10's timing side): per
//! statement-type execution cost against the AB(functional) store, and
//! DML parsing throughput.

use abdl::Store;
use mlds_bench::timing::{bench, group};
use mlds_bench::workload;

fn fixture() -> (translator::Translator, Store) {
    let mut store = Store::new();
    daplex::ab_map::install(&daplex::university::schema(), &mut store);
    workload::load_university_scaled(&mut store, workload::Scale::of(1_000), 13);
    let net = transform::transform(&daplex::university::schema()).unwrap();
    (translator::Translator::for_functional(net), store)
}

fn main() {
    group("translation/statement");
    {
        let (t, mut store) = fixture();
        let cases = [
            ("find_any", "MOVE 'CS' TO major IN student\nFIND ANY student USING major IN student"),
            (
                "find_owner",
                "MOVE 'CS' TO major IN student\nFIND ANY student USING major IN student\n\
                 FIND OWNER WITHIN person_student",
            ),
            ("find_first", "FIND FIRST course WITHIN system_course"),
            (
                "get",
                "MOVE 'CS' TO major IN student\nFIND ANY student USING major IN student\nGET student",
            ),
            (
                "modify",
                "MOVE 'CS' TO major IN student\nFIND ANY student USING major IN student\n\
                 MOVE 3.9 TO gpa IN student\nMODIFY gpa IN student",
            ),
        ];
        for (label, script) in cases {
            let stmts = codasyl::dml::parse_statements(script).unwrap();
            bench(label, || {
                let mut ru = translator::RunUnit::new();
                for s in &stmts {
                    t.execute(&mut ru, &mut store, s).unwrap();
                }
            });
        }
    }

    group("translation/store_erase");
    {
        let (t, mut store) = fixture();
        let mut i = 0usize;
        bench("person_store_erase", || {
            i += 1;
            let mut ru = translator::RunUnit::new();
            let script = format!(
                "MOVE 'bench_{i}' TO name IN person\nMOVE 30 TO age IN person\nSTORE person\nERASE person"
            );
            for s in &codasyl::dml::parse_statements(&script).unwrap() {
                t.execute(&mut ru, &mut store, s).unwrap();
            }
        });
    }

    group("translation/mixed_script");
    {
        let (t, mut store) = fixture();
        let script = workload::codasyl_script(200, 17);
        let stmts = codasyl::dml::parse_statements(&script).unwrap();
        bench("200_statements", || {
            let mut ru = translator::RunUnit::new();
            let mut executed = 0usize;
            for s in &stmts {
                if t.execute(&mut ru, &mut store, s).is_ok() {
                    executed += 1;
                }
            }
            executed
        });
    }

    group("translation/parse");
    {
        let script = workload::codasyl_script(500, 23);
        bench("500_statements", || codasyl::dml::parse_statements(&script).unwrap().len());
    }
}
