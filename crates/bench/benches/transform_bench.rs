//! Schema-handling benchmarks: Daplex/CODASYL DDL parsing, the
//! functional→network transformation, and the E9 strategy ablation
//! (one-step vs per-transaction transformation).

use mlds_bench::timing::{bench, group};
use mlds_bench::workload;

fn main() {
    group("schema/parse");
    bench("daplex_university", || {
        daplex::ddl::parse_schema(daplex::university::UNIVERSITY_DDL).unwrap()
    });
    let net = transform::transform(&daplex::university::schema()).unwrap();
    let net_ddl = codasyl::ddl::print_schema(&net);
    bench("codasyl_university", || codasyl::ddl::parse_schema(&net_ddl).unwrap());

    group("schema/transform");
    let schema = daplex::university::schema();
    bench("university", || transform::transform(&schema).unwrap());

    // E9: the thesis's chosen strategy amortizes the transformation.
    group("schema/strategy_ablation");
    let mut store = abdl::Store::new();
    daplex::ab_map::install(&schema, &mut store);
    workload::load_university_scaled(&mut store, workload::Scale::of(200), 1);
    let stmts = codasyl::dml::parse_statements(
        "MOVE 'CS' TO major IN student\nFIND ANY student USING major IN student",
    )
    .unwrap();
    for k in [1usize, 10, 100] {
        bench(&format!("direct_one_step/{k}"), || {
            let net = transform::transform(&schema).unwrap();
            let t = translator::Translator::for_functional(net);
            for _ in 0..k {
                let mut ru = translator::RunUnit::new();
                for s in &stmts {
                    let _ = t.execute(&mut ru, &mut store, s);
                }
            }
        });
        bench(&format!("per_transaction/{k}"), || {
            for _ in 0..k {
                let net = transform::transform(&schema).unwrap();
                let t = translator::Translator::for_functional(net);
                let mut ru = translator::RunUnit::new();
                for s in &stmts {
                    let _ = t.execute(&mut ru, &mut store, s);
                }
            }
        });
    }
}
