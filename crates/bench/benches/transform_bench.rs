//! Schema-handling benchmarks: Daplex/CODASYL DDL parsing, the
//! functional→network transformation, and the E9 strategy ablation
//! (one-step vs per-transaction transformation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlds_bench::workload;

fn bench_ddl_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema/parse");
    group.bench_function("daplex_university", |b| {
        b.iter(|| daplex::ddl::parse_schema(daplex::university::UNIVERSITY_DDL).unwrap())
    });
    let net = transform::transform(&daplex::university::schema()).unwrap();
    let net_ddl = codasyl::ddl::print_schema(&net);
    group.bench_function("codasyl_university", |b| {
        b.iter(|| codasyl::ddl::parse_schema(&net_ddl).unwrap())
    });
    group.finish();
}

fn bench_transform(c: &mut Criterion) {
    let schema = daplex::university::schema();
    let mut group = c.benchmark_group("schema/transform");
    group.bench_function("university", |b| b.iter(|| transform::transform(&schema).unwrap()));
    group.finish();
}

/// E9: the thesis's chosen strategy amortizes the transformation.
fn bench_strategy_ablation(c: &mut Criterion) {
    let schema = daplex::university::schema();
    let mut store = abdl::Store::new();
    daplex::ab_map::install(&schema, &mut store);
    workload::load_university_scaled(&mut store, workload::Scale::of(200), 1);
    let stmts = codasyl::dml::parse_statements(
        "MOVE 'CS' TO major IN student\nFIND ANY student USING major IN student",
    )
    .unwrap();

    let mut group = c.benchmark_group("schema/strategy_ablation");
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("direct_one_step", k), &k, |b, &k| {
            b.iter(|| {
                let net = transform::transform(&schema).unwrap();
                let t = translator::Translator::for_functional(net);
                for _ in 0..k {
                    let mut ru = translator::RunUnit::new();
                    for s in &stmts {
                        let _ = t.execute(&mut ru, &mut store, s);
                    }
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("per_transaction", k), &k, |b, &k| {
            b.iter(|| {
                for _ in 0..k {
                    let net = transform::transform(&schema).unwrap();
                    let t = translator::Translator::for_functional(net);
                    let mut ru = translator::RunUnit::new();
                    for s in &stmts {
                        let _ = t.execute(&mut ru, &mut store, s);
                    }
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ddl_parsing, bench_transform, bench_strategy_ablation);
criterion_main!(benches);
