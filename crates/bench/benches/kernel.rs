//! Kernel (ABDL engine) microbenchmarks, including the directory-index
//! ablation called out in DESIGN.md.

use abdl::{Record, Request, Store, Value};
use mlds_bench::timing::{bench, group};

fn loaded_store(indexing: bool, records: usize) -> Store {
    let mut s = Store::with_indexing(indexing);
    s.create_file("f");
    for i in 0..records {
        let rec = Record::from_pairs([("FILE", Value::str("f"))])
            .with("f", Value::Int(i as i64))
            .with("bucket", Value::Int((i % 100) as i64))
            .with("payload", Value::str(format!("payload_{i}")));
        s.execute(&Request::Insert { record: rec }).unwrap();
    }
    s
}

fn main() {
    group("kernel/insert");
    {
        let mut s = Store::new();
        s.create_file("f");
        let mut i = 0i64;
        bench("indexed", || {
            let rec = Record::from_pairs([("FILE", Value::str("f"))])
                .with("f", Value::Int(i))
                .with("bucket", Value::Int(i % 100));
            i += 1;
            s.execute(&Request::Insert { record: rec }).unwrap()
        });
    }

    group("kernel/retrieve_point");
    for records in [1_000usize, 10_000] {
        for (label, indexing) in [("indexed", true), ("scan", false)] {
            let mut store = loaded_store(indexing, records);
            let req =
                abdl::parse::parse_request("RETRIEVE ((FILE = f) and (bucket = 7)) (*)").unwrap();
            bench(&format!("{label}/{records}"), || store.execute(&req).unwrap());
        }
    }

    group("kernel/range_and_aggregate");
    {
        let mut store = loaded_store(true, 10_000);
        let range = abdl::parse::parse_request("RETRIEVE ((FILE = f) and (f < 500)) (*)").unwrap();
        bench("range_500", || store.execute(&range).unwrap());
        let agg = abdl::parse::parse_request("RETRIEVE (FILE = f) (COUNT(f), AVG(f)) BY bucket")
            .unwrap();
        bench("aggregate_by_bucket", || store.execute(&agg).unwrap());
    }

    group("kernel/mutate");
    {
        let mut store = loaded_store(true, 10_000);
        let req =
            abdl::parse::parse_request("UPDATE ((FILE = f) and (bucket = 3)) (payload = 'x')")
                .unwrap();
        bench("update_bucket", || store.execute(&req).unwrap());
    }

    group("kernel/parse");
    {
        let text = "RETRIEVE (((FILE = course) and (title = 'Advanced Database') and (credits >= 3)) \
                    or ((FILE = course) and (semester = 'F87'))) (title, credits) BY dept";
        bench("retrieve_request", || abdl::parse::parse_request(text).unwrap());
    }
}
