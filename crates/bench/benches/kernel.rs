//! Kernel (ABDL engine) microbenchmarks, including the directory-index
//! ablation called out in DESIGN.md.

use abdl::{Record, Request, Store, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn loaded_store(indexing: bool, records: usize) -> Store {
    let mut s = Store::with_indexing(indexing);
    s.create_file("f");
    for i in 0..records {
        let rec = Record::from_pairs([("FILE", Value::str("f"))])
            .with("f", Value::Int(i as i64))
            .with("bucket", Value::Int((i % 100) as i64))
            .with("payload", Value::str(format!("payload_{i}")));
        s.execute(&Request::Insert { record: rec }).unwrap();
    }
    s
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/insert");
    group.throughput(Throughput::Elements(1));
    group.bench_function("indexed", |b| {
        let mut s = Store::new();
        s.create_file("f");
        let mut i = 0i64;
        b.iter(|| {
            let rec = Record::from_pairs([("FILE", Value::str("f"))])
                .with("f", Value::Int(i))
                .with("bucket", Value::Int(i % 100));
            i += 1;
            s.execute(&Request::Insert { record: rec }).unwrap()
        });
    });
    group.finish();
}

fn bench_retrieve(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/retrieve_point");
    for records in [1_000usize, 10_000] {
        for (label, indexing) in [("indexed", true), ("scan", false)] {
            let mut store = loaded_store(indexing, records);
            let req =
                abdl::parse::parse_request("RETRIEVE ((FILE = f) and (bucket = 7)) (*)").unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, records),
                &records,
                |b, _| b.iter(|| store.execute(&req).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_range_and_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/range_and_aggregate");
    let mut store = loaded_store(true, 10_000);
    let range = abdl::parse::parse_request("RETRIEVE ((FILE = f) and (f < 500)) (*)").unwrap();
    group.bench_function("range_500", |b| b.iter(|| store.execute(&range).unwrap()));
    let agg = abdl::parse::parse_request("RETRIEVE (FILE = f) (COUNT(f), AVG(f)) BY bucket")
        .unwrap();
    group.bench_function("aggregate_by_bucket", |b| b.iter(|| store.execute(&agg).unwrap()));
    group.finish();
}

fn bench_update_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/mutate");
    group.bench_function("update_bucket", |b| {
        let mut store = loaded_store(true, 10_000);
        let req =
            abdl::parse::parse_request("UPDATE ((FILE = f) and (bucket = 3)) (payload = 'x')")
                .unwrap();
        b.iter(|| store.execute(&req).unwrap());
    });
    group.finish();
}

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/parse");
    let text = "RETRIEVE (((FILE = course) and (title = 'Advanced Database') and (credits >= 3)) \
                or ((FILE = course) and (semester = 'F87'))) (title, credits) BY dept";
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("retrieve_request", |b| {
        b.iter(|| abdl::parse::parse_request(text).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_retrieve,
    bench_range_and_aggregate,
    bench_update_delete,
    bench_parser
);
criterion_main!(benches);
