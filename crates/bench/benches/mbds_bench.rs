//! MBDS benchmarks: real wall-clock throughput of the threaded
//! controller vs backend count (concurrency of the actual
//! implementation), and the execution cost of the simulated cluster
//! whose response-time *model* regenerates E7/E8.

use abdl::Kernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mbds::{Controller, SimCluster};
use mlds_bench::workload;

const DB: usize = 20_000;

fn bench_controller_throughput(c: &mut Criterion) {
    let requests = workload::mixed_requests(64, DB, 3);
    let mut group = c.benchmark_group("mbds/controller_mixed64");
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        let mut controller = Controller::new(n);
        workload::load_flat(&mut controller, DB);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for req in &requests {
                    controller.execute(req).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_sim_cluster(c: &mut Criterion) {
    let requests = workload::mixed_requests(64, DB, 5);
    let mut group = c.benchmark_group("mbds/sim_mixed64");
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.sample_size(10);
    for n in [1usize, 8] {
        let mut sim = SimCluster::new(n);
        workload::load_flat(&mut sim, DB);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for req in &requests {
                    sim.execute(req).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_broadcast_retrieval(c: &mut Criterion) {
    let mut group = c.benchmark_group("mbds/range_retrieval");
    group.sample_size(10);
    let req = workload::range_retrieval(2_000);
    for n in [1usize, 4] {
        let mut controller = Controller::new(n);
        workload::load_flat(&mut controller, DB);
        group.bench_with_input(BenchmarkId::new("controller", n), &n, |b, _| {
            b.iter(|| controller.execute(&req).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller_throughput, bench_sim_cluster, bench_broadcast_retrieval);
criterion_main!(benches);
