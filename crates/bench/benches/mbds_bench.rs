//! MBDS benchmarks: real wall-clock throughput of the threaded
//! controller vs backend count (concurrency of the actual
//! implementation), and the execution cost of the simulated cluster
//! whose response-time *model* regenerates E7/E8.

use abdl::Kernel;
use mbds::{Controller, SimCluster};
use mlds_bench::timing::{bench, group};
use mlds_bench::workload;

const DB: usize = 20_000;

fn main() {
    group("mbds/controller_mixed64");
    let requests = workload::mixed_requests(64, DB, 3);
    for n in [1usize, 2, 4, 8] {
        let mut controller = Controller::new(n);
        workload::load_flat(&mut controller, DB);
        bench(&format!("{n}_backends"), || {
            for req in &requests {
                controller.execute(req).unwrap();
            }
        });
    }

    group("mbds/sim_mixed64");
    let requests = workload::mixed_requests(64, DB, 5);
    for n in [1usize, 8] {
        let mut sim = SimCluster::new(n);
        workload::load_flat(&mut sim, DB);
        bench(&format!("{n}_backends"), || {
            for req in &requests {
                sim.execute(req).unwrap();
            }
        });
    }

    group("mbds/range_retrieval");
    let req = workload::range_retrieval(2_000);
    for n in [1usize, 4] {
        let mut controller = Controller::new(n);
        workload::load_flat(&mut controller, DB);
        bench(&format!("controller/{n}"), || controller.execute(&req).unwrap());
    }
}
