//! The SQL DML subset: statement AST and parser.

use crate::error::Result;
use crate::lex::{Cursor, Tok};
use abdl::{Aggregate, RelOp, Value};

/// A possibly-qualified column reference (`city` / `s.city`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Table name or alias qualifier.
    pub qualifier: Option<String>,
    /// The column.
    pub column: String,
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`
    All,
    /// A column.
    Col(ColRef),
    /// An aggregate over a column.
    Agg(Aggregate, ColRef),
}

/// The right-hand side of a WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// A literal value.
    Value(Value),
    /// Another column (a join predicate).
    Col(ColRef),
}

/// One WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlPred {
    /// Left-hand column.
    pub lhs: ColRef,
    /// Relational operator.
    pub op: RelOp,
    /// Right-hand side.
    pub rhs: Rhs,
}

/// A WHERE clause in disjunctive normal form (OR of ANDs).
pub type Where = Vec<Vec<SqlPred>>;

/// A FROM entry: table plus optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// The table.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStatement {
    /// `SELECT … FROM … [WHERE …] [GROUP BY …] [ORDER BY … [DESC]]`.
    Select {
        /// The select list.
        items: Vec<SelectItem>,
        /// FROM tables (1 = plain retrieval, 2 = equi-join).
        from: Vec<FromItem>,
        /// WHERE clause (empty = all rows).
        wher: Where,
        /// GROUP BY column.
        group_by: Option<ColRef>,
        /// ORDER BY column with direction (`true` = descending).
        order_by: Option<(ColRef, bool)>,
    },
    /// `INSERT INTO t (c1, …) VALUES (v1, …)`.
    Insert {
        /// The table.
        table: String,
        /// Column list.
        columns: Vec<String>,
        /// Values, positionally matching `columns`.
        values: Vec<Value>,
    },
    /// `UPDATE t SET c = v, … [WHERE …]`.
    Update {
        /// The table.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Value)>,
        /// WHERE clause.
        wher: Where,
    },
    /// `DELETE FROM t [WHERE …]`.
    Delete {
        /// The table.
        table: String,
        /// WHERE clause.
        wher: Where,
    },
}

/// Parse a script of `;`-separated SQL statements.
pub fn parse_statements(src: &str) -> Result<Vec<SqlStatement>> {
    let mut c = Cursor::new(src)?;
    let mut out = Vec::new();
    while *c.peek() == Tok::Semi {
        c.bump();
    }
    while !c.at_eof() {
        out.push(parse_statement(&mut c)?);
        while *c.peek() == Tok::Semi {
            c.bump();
        }
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_statement_str(src: &str) -> Result<SqlStatement> {
    let stmts = parse_statements(src)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().expect("one statement")),
        n => Err(crate::Error::Parse { msg: format!("expected 1 statement, found {n}"), offset: 0 }),
    }
}

fn parse_statement(c: &mut Cursor) -> Result<SqlStatement> {
    if c.eat_kw("SELECT") {
        return parse_select(c);
    }
    if c.eat_kw("INSERT") {
        c.expect_kw("INTO")?;
        let table = c.name("table name")?;
        c.expect_tok(Tok::LParen, "`(` opening column list")?;
        let mut columns = Vec::new();
        loop {
            columns.push(c.name("column name")?);
            if *c.peek() == Tok::Comma {
                c.bump();
            } else {
                break;
            }
        }
        c.expect_tok(Tok::RParen, "`)` closing column list")?;
        c.expect_kw("VALUES")?;
        c.expect_tok(Tok::LParen, "`(` opening value list")?;
        let mut values = Vec::new();
        loop {
            values.push(parse_value(c)?);
            if *c.peek() == Tok::Comma {
                c.bump();
            } else {
                break;
            }
        }
        c.expect_tok(Tok::RParen, "`)` closing value list")?;
        return Ok(SqlStatement::Insert { table, columns, values });
    }
    if c.eat_kw("UPDATE") {
        let table = c.name("table name")?;
        c.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = c.name("column name")?;
            c.expect_tok(Tok::Eq, "`=`")?;
            sets.push((col, parse_value(c)?));
            if *c.peek() == Tok::Comma {
                c.bump();
            } else {
                break;
            }
        }
        let wher = parse_where(c)?;
        return Ok(SqlStatement::Update { table, sets, wher });
    }
    if c.eat_kw("DELETE") {
        c.expect_kw("FROM")?;
        let table = c.name("table name")?;
        let wher = parse_where(c)?;
        return Ok(SqlStatement::Delete { table, wher });
    }
    Err(c.err(format!("expected SELECT, INSERT, UPDATE or DELETE, found {:?}", c.peek())))
}

fn parse_select(c: &mut Cursor) -> Result<SqlStatement> {
    let mut items = Vec::new();
    loop {
        if *c.peek() == Tok::Star {
            c.bump();
            items.push(SelectItem::All);
        } else {
            let word = c.name("column or aggregate")?;
            let agg = match word.to_ascii_uppercase().as_str() {
                "COUNT" => Some(Aggregate::Count),
                "SUM" => Some(Aggregate::Sum),
                "AVG" => Some(Aggregate::Avg),
                "MIN" => Some(Aggregate::Min),
                "MAX" => Some(Aggregate::Max),
                _ => None,
            };
            match (agg, c.peek().clone()) {
                (Some(op), Tok::LParen) => {
                    c.bump();
                    let col = parse_colref_from(c, None)?;
                    c.expect_tok(Tok::RParen, "`)` closing aggregate")?;
                    items.push(SelectItem::Agg(op, col));
                }
                _ => items.push(SelectItem::Col(finish_colref(c, word)?)),
            }
        }
        if *c.peek() == Tok::Comma {
            c.bump();
        } else {
            break;
        }
    }
    c.expect_kw("FROM")?;
    let mut from = Vec::new();
    loop {
        let table = c.name("table name")?;
        // An optional alias: a bare word that is not a clause keyword.
        let alias = match c.peek() {
            Tok::Word(w)
                if !["WHERE", "GROUP", "ORDER"]
                    .iter()
                    .any(|k| w.eq_ignore_ascii_case(k)) =>
            {
                Some(c.name("alias")?)
            }
            _ => None,
        };
        from.push(FromItem { table, alias });
        if *c.peek() == Tok::Comma {
            c.bump();
        } else {
            break;
        }
    }
    let wher = parse_where(c)?;
    let group_by = if c.eat_kw("GROUP") {
        c.expect_kw("BY")?;
        Some(parse_colref_from(c, None)?)
    } else {
        None
    };
    let order_by = if c.eat_kw("ORDER") {
        c.expect_kw("BY")?;
        let col = parse_colref_from(c, None)?;
        let desc = c.eat_kw("DESC");
        if !desc {
            let _ = c.eat_kw("ASC");
        }
        Some((col, desc))
    } else {
        None
    };
    Ok(SqlStatement::Select { items, from, wher, group_by, order_by })
}

fn parse_where(c: &mut Cursor) -> Result<Where> {
    if !c.eat_kw("WHERE") {
        return Ok(Vec::new());
    }
    let mut groups = vec![parse_conj(c)?];
    while c.eat_kw("OR") {
        groups.push(parse_conj(c)?);
    }
    Ok(groups)
}

fn parse_conj(c: &mut Cursor) -> Result<Vec<SqlPred>> {
    let mut preds = vec![parse_pred(c)?];
    while c.eat_kw("AND") {
        preds.push(parse_pred(c)?);
    }
    Ok(preds)
}

fn parse_pred(c: &mut Cursor) -> Result<SqlPred> {
    let parens = if *c.peek() == Tok::LParen {
        c.bump();
        true
    } else {
        false
    };
    let lhs = parse_colref_from(c, None)?;
    let op = match c.bump() {
        Tok::Eq => RelOp::Eq,
        Tok::Ne => RelOp::Ne,
        Tok::Lt => RelOp::Lt,
        Tok::Le => RelOp::Le,
        Tok::Gt => RelOp::Gt,
        Tok::Ge => RelOp::Ge,
        other => return Err(c.err(format!("expected relational operator, found {other:?}"))),
    };
    let rhs = match c.peek().clone() {
        Tok::Word(w) if !w.eq_ignore_ascii_case("NULL") => {
            c.bump();
            Rhs::Col(finish_colref(c, w)?)
        }
        _ => Rhs::Value(parse_value(c)?),
    };
    if parens {
        c.expect_tok(Tok::RParen, "`)` closing predicate")?;
    }
    Ok(SqlPred { lhs, op, rhs })
}

/// Parse a column reference; `word` is the already-consumed first word
/// when called from a context that had to look ahead.
fn parse_colref_from(c: &mut Cursor, word: Option<String>) -> Result<ColRef> {
    let first = match word {
        Some(w) => w,
        None => c.name("column name")?,
    };
    finish_colref(c, first)
}

fn finish_colref(c: &mut Cursor, first: String) -> Result<ColRef> {
    if *c.peek() == Tok::Dot {
        c.bump();
        let column = c.name("column name")?;
        Ok(ColRef { qualifier: Some(first), column })
    } else {
        Ok(ColRef { qualifier: None, column: first })
    }
}

fn parse_value(c: &mut Cursor) -> Result<Value> {
    let v = match c.peek().clone() {
        Tok::Int(i) => Value::Int(i),
        Tok::Float(f) => Value::Float(f),
        Tok::Str(s) => Value::Str(s),
        Tok::Word(w) if w.eq_ignore_ascii_case("NULL") => Value::Null,
        other => return Err(c.err(format!("expected literal, found {other:?}"))),
    };
    c.bump();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_variants() {
        let s = parse_statement_str("SELECT sname, city FROM supplier WHERE sno >= 2;").unwrap();
        let SqlStatement::Select { items, from, wher, group_by, .. } = s else { panic!() };
        assert_eq!(items.len(), 2);
        assert_eq!(from.len(), 1);
        assert_eq!(wher.len(), 1);
        assert!(group_by.is_none());

        let s = parse_statement_str("SELECT * FROM supplier;").unwrap();
        let SqlStatement::Select { items, wher, .. } = s else { panic!() };
        assert_eq!(items, vec![SelectItem::All]);
        assert!(wher.is_empty());

        let s = parse_statement_str("SELECT city, COUNT(sno) FROM supplier GROUP BY city;")
            .unwrap();
        let SqlStatement::Select { items, group_by, .. } = s else { panic!() };
        assert!(matches!(items[1], SelectItem::Agg(Aggregate::Count, _)));
        assert_eq!(group_by.unwrap().column, "city");
    }

    #[test]
    fn parses_join_select() {
        let s = parse_statement_str(
            "SELECT s.sname, p.pname FROM supplier s, part p WHERE s.city = p.city AND s.sno < 5;",
        )
        .unwrap();
        let SqlStatement::Select { from, wher, .. } = s else { panic!() };
        assert_eq!(from.len(), 2);
        assert_eq!(from[0].alias.as_deref(), Some("s"));
        let conj = &wher[0];
        assert!(matches!(&conj[0].rhs, Rhs::Col(c) if c.qualifier.as_deref() == Some("p")));
        assert!(matches!(&conj[1].rhs, Rhs::Value(Value::Int(5))));
    }

    #[test]
    fn parses_or_groups() {
        let s =
            parse_statement_str("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3;").unwrap();
        let SqlStatement::Select { wher, .. } = s else { panic!() };
        assert_eq!(wher.len(), 2);
        assert_eq!(wher[0].len(), 2);
        assert_eq!(wher[1].len(), 1);
    }

    #[test]
    fn parses_mutations() {
        assert!(matches!(
            parse_statement_str("INSERT INTO t (a, b) VALUES (1, 'x');").unwrap(),
            SqlStatement::Insert { .. }
        ));
        let s = parse_statement_str("UPDATE t SET a = 1, b = 'y' WHERE c != NULL;").unwrap();
        let SqlStatement::Update { sets, wher, .. } = s else { panic!() };
        assert_eq!(sets.len(), 2);
        assert!(matches!(&wher[0][0].rhs, Rhs::Value(Value::Null)));
        assert!(matches!(
            parse_statement_str("DELETE FROM t;").unwrap(),
            SqlStatement::Delete { .. }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement_str("SELECT FROM t;").is_err());
        assert!(parse_statement_str("INSERT t VALUES (1);").is_err());
        assert!(parse_statement_str("DROP TABLE t;").is_err());
        assert!(parse_statement_str("SELECT a FROM t WHERE a ** 2;").is_err());
    }
}
