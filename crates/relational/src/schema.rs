//! The relational schema: tables, columns, primary keys.

use crate::error::{Error, Result};
use std::fmt;

/// A column type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColType {
    /// `INTEGER`.
    Int,
    /// `FLOAT`.
    Float,
    /// `CHAR(n)`.
    Char {
        /// Maximum length.
        len: u16,
    },
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColType::Int => write!(f, "INTEGER"),
            ColType::Float => write!(f, "FLOAT"),
            ColType::Char { len } => write!(f, "CHAR({len})"),
        }
    }
}

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub typ: ColType,
    /// `NOT NULL` declared?
    pub not_null: bool,
    /// The kernel attribute this column reads (defaults to `name`).
    /// Derived views (e.g. the relational view of a hierarchical
    /// database) use this to expose kernel key attributes under
    /// non-colliding column names.
    pub kernel_attr: Option<String>,
}

impl Column {
    /// A plain writable column.
    pub fn new(name: impl Into<String>, typ: ColType) -> Self {
        Column { name: name.into(), typ, not_null: false, kernel_attr: None }
    }

    /// The kernel attribute backing this column.
    pub fn kernel_attr(&self) -> &str {
        self.kernel_attr.as_deref().unwrap_or(&self.name)
    }
}

/// A table declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// The primary-key columns (may be empty).
    pub primary_key: Vec<String>,
}

impl Table {
    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Require a column by name.
    pub fn require_column(&self, name: &str) -> Result<&Column> {
        self.column(name).ok_or_else(|| Error::UnknownColumn {
            table: self.name.clone(),
            column: name.to_owned(),
        })
    }
}

/// A relational database schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelSchema {
    /// Database name.
    pub name: String,
    /// Tables in declaration order.
    pub tables: Vec<Table>,
    /// Read-only views (derived schemas) reject INSERT/UPDATE/DELETE.
    pub read_only: bool,
}

impl RelSchema {
    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Require a table.
    pub fn require_table(&self, name: &str) -> Result<&Table> {
        self.table(name).ok_or_else(|| Error::UnknownTable(name.to_owned()))
    }

    /// Validate name uniqueness and primary-key resolution.
    pub fn validate(&self) -> Result<()> {
        let mut names = std::collections::HashSet::new();
        for t in &self.tables {
            if !names.insert(&t.name) {
                return Err(Error::InvalidSchema(format!("duplicate table `{}`", t.name)));
            }
            let mut cols = std::collections::HashSet::new();
            for c in &t.columns {
                if !cols.insert(&c.name) {
                    return Err(Error::InvalidSchema(format!(
                        "duplicate column `{}` in table `{}`",
                        c.name, t.name
                    )));
                }
                // Writable schemas must not alias the row-key attribute
                // (INSERT would clobber it); read-only views may.
                if !self.read_only && c.kernel_attr() == t.name {
                    return Err(Error::InvalidSchema(format!(
                        "column `{}` collides with the kernel row-key attribute of table `{}`",
                        c.name, t.name
                    )));
                }
            }
            for k in &t.primary_key {
                t.require_column(k).map_err(|_| {
                    Error::InvalidSchema(format!(
                        "primary key of `{}` names unknown column `{k}`",
                        t.name
                    ))
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table {
            name: "supplier".into(),
            columns: vec![
                Column { name: "sno".into(), typ: ColType::Int, not_null: true, kernel_attr: None },
                Column::new("sname", ColType::Char { len: 20 }),
            ],
            primary_key: vec!["sno".into()],
        }
    }

    #[test]
    fn lookups() {
        let s = RelSchema { name: "t".into(), tables: vec![table()], read_only: false };
        s.validate().unwrap();
        assert!(s.table("supplier").is_some());
        assert!(s.require_table("ghost").is_err());
        assert!(s.table("supplier").unwrap().require_column("sno").is_ok());
        assert!(s.table("supplier").unwrap().require_column("ghost").is_err());
    }

    #[test]
    fn validation_rejects_bad_schemas() {
        let mut s = RelSchema { name: "t".into(), tables: vec![table(), table()], read_only: false };
        assert!(s.validate().is_err());
        s.tables.pop();
        s.tables[0].primary_key = vec!["ghost".into()];
        assert!(s.validate().is_err());
        s.tables[0].primary_key.clear();
        s.tables[0].columns.push(Column::new("supplier", ColType::Int));
        assert!(s.validate().is_err(), "column colliding with row-key attribute");
        // …but a read-only view may alias the key attribute.
        s.read_only = true;
        s.tables[0].columns.pop();
        s.tables[0].columns.push(Column {
            name: "supplier_key".into(),
            typ: ColType::Int,
            not_null: false,
            kernel_attr: Some("supplier".into()),
        });
        s.validate().unwrap();
    }
}
