//! SQL DDL: `CREATE DATABASE` / `CREATE TABLE` parsing and printing.

use crate::error::Result;
use crate::lex::{Cursor, Tok};
use crate::schema::{ColType, Column, RelSchema, Table};
use std::fmt::Write as _;

/// Parse a DDL script: one `CREATE DATABASE` followed by `CREATE TABLE`
/// statements.
pub fn parse_schema(src: &str) -> Result<RelSchema> {
    let mut c = Cursor::new(src)?;
    let mut schema = RelSchema::default();
    c.expect_kw("CREATE")?;
    c.expect_kw("DATABASE")?;
    schema.name = c.name("database name")?;
    c.expect_tok(Tok::Semi, "`;`")?;
    while !c.at_eof() {
        c.expect_kw("CREATE")?;
        c.expect_kw("TABLE")?;
        schema.tables.push(parse_table(&mut c)?);
    }
    schema.validate()?;
    Ok(schema)
}

fn parse_table(c: &mut Cursor) -> Result<Table> {
    let name = c.name("table name")?;
    c.expect_tok(Tok::LParen, "`(` opening column list")?;
    let mut table = Table { name, columns: Vec::new(), primary_key: Vec::new() };
    loop {
        if c.eat_kw("PRIMARY") {
            c.expect_kw("KEY")?;
            c.expect_tok(Tok::LParen, "`(`")?;
            loop {
                table.primary_key.push(c.name("key column")?);
                if *c.peek() == Tok::Comma {
                    c.bump();
                } else {
                    break;
                }
            }
            c.expect_tok(Tok::RParen, "`)`")?;
        } else {
            let col_name = c.name("column name")?;
            let typ = parse_type(c)?;
            let not_null = if c.eat_kw("NOT") {
                c.expect_kw("NULL")?;
                true
            } else {
                false
            };
            table.columns.push(Column { name: col_name, typ, not_null, kernel_attr: None });
        }
        match c.bump() {
            Tok::Comma => continue,
            Tok::RParen => break,
            other => return Err(c.err(format!("expected `,` or `)`, found {other:?}"))),
        }
    }
    c.expect_tok(Tok::Semi, "`;`")?;
    Ok(table)
}

fn parse_type(c: &mut Cursor) -> Result<ColType> {
    let word = c.name("column type")?;
    match word.to_ascii_uppercase().as_str() {
        "INTEGER" | "INT" => Ok(ColType::Int),
        "FLOAT" | "REAL" => Ok(ColType::Float),
        "CHAR" | "VARCHAR" => {
            c.expect_tok(Tok::LParen, "`(` after CHAR")?;
            let len = c.int("character length")?;
            c.expect_tok(Tok::RParen, "`)` after length")?;
            Ok(ColType::Char {
                len: u16::try_from(len).map_err(|_| c.err("length out of range"))?,
            })
        }
        other => Err(c.err(format!("unknown column type `{other}`"))),
    }
}

/// Print a schema as canonical DDL (parse∘print = id).
pub fn print_schema(s: &RelSchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "CREATE DATABASE {};", s.name);
    for t in &s.tables {
        let _ = writeln!(out);
        let _ = writeln!(out, "CREATE TABLE {} (", t.name);
        for (i, col) in t.columns.iter().enumerate() {
            let not_null = if col.not_null { " NOT NULL" } else { "" };
            let last = i + 1 == t.columns.len() && t.primary_key.is_empty();
            let comma = if last { "" } else { "," };
            let _ = writeln!(out, "    {} {}{not_null}{comma}", col.name, col.typ);
        }
        if !t.primary_key.is_empty() {
            let _ = writeln!(out, "    PRIMARY KEY ({})", t.primary_key.join(", "));
        }
        let _ = writeln!(out, ");");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
CREATE DATABASE suppliers;

CREATE TABLE supplier (
    sno   INTEGER NOT NULL,
    sname CHAR(20),
    city  CHAR(15),
    PRIMARY KEY (sno)
);

CREATE TABLE part (
    pno   INTEGER,
    pname CHAR(20),
    city  CHAR(15),
    PRIMARY KEY (pno)
);
";

    #[test]
    fn parses_and_validates() {
        let s = parse_schema(SRC).unwrap();
        assert_eq!(s.name, "suppliers");
        assert_eq!(s.tables.len(), 2);
        let supplier = s.table("supplier").unwrap();
        assert_eq!(supplier.columns.len(), 3);
        assert!(supplier.columns[0].not_null);
        assert_eq!(supplier.columns[1].typ, ColType::Char { len: 20 });
        assert_eq!(supplier.primary_key, vec!["sno".to_owned()]);
    }

    #[test]
    fn round_trips() {
        let s = parse_schema(SRC).unwrap();
        let printed = print_schema(&s);
        assert_eq!(s, parse_schema(&printed).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_schema("CREATE TABLE x (a INTEGER);").is_err(), "missing CREATE DATABASE");
        assert!(parse_schema("CREATE DATABASE d; CREATE TABLE x (a BLOB);").is_err());
        assert!(parse_schema("CREATE DATABASE d; CREATE TABLE x (a INTEGER").is_err());
    }
}
