//! Errors of the relational interface.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by SQL parsing, schema validation and translation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Syntax error in SQL text.
    Parse {
        /// What went wrong.
        msg: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// Schema validation failure.
    InvalidSchema(String),
    /// A statement referenced an unknown table.
    UnknownTable(String),
    /// A statement referenced an unknown column of a table.
    UnknownColumn {
        /// The table searched.
        table: String,
        /// The missing column.
        column: String,
    },
    /// A supplied value does not fit the declared column type.
    TypeMismatch {
        /// The table.
        table: String,
        /// The column.
        column: String,
        /// The declared type, rendered.
        expected: String,
        /// The offending value, rendered.
        got: String,
    },
    /// INSERT column/value count mismatch.
    ArityMismatch {
        /// The table.
        table: String,
        /// Columns given.
        columns: usize,
        /// Values given.
        values: usize,
    },
    /// Kernel-level failure (duplicate primary keys, …).
    Kernel(abdl::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, offset } => write!(f, "SQL syntax error at byte {offset}: {msg}"),
            Error::InvalidSchema(msg) => write!(f, "invalid relational schema: {msg}"),
            Error::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Error::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            Error::TypeMismatch { table, column, expected, got } => {
                write!(f, "value {got} does not fit `{table}.{column}` (declared {expected})")
            }
            Error::ArityMismatch { table, columns, values } => write!(
                f,
                "INSERT into `{table}` lists {columns} column(s) but {values} value(s)"
            ),
            Error::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<abdl::Error> for Error {
    fn from(e: abdl::Error) -> Self {
        Error::Kernel(e)
    }
}
