#![warn(missing_docs)]

//! # The relational data model and SQL — MLDS's relational interface
//!
//! Figure 1.2 of the thesis shows MLDS "comprised of a hierarchical
//! DL/I interface, a relational SQL interface, a network CODASYL-DML
//! interface, a functional DAPLEX interface, and an attribute-based
//! ABDL interface". This crate is the relational/SQL member of that
//! family: a table schema, a SQL subset, and the straightforward
//! relational→ABDM mapping (a table is a kernel file, a row is a
//! record, a primary key is a `DUPLICATES ARE NOT ALLOWED` group).
//!
//! The SQL subset:
//!
//! ```sql
//! CREATE DATABASE suppliers;
//! CREATE TABLE supplier (
//!     sno   INTEGER,
//!     sname CHAR(20),
//!     city  CHAR(15),
//!     PRIMARY KEY (sno)
//! );
//!
//! INSERT INTO supplier (sno, sname, city) VALUES (1, 'Smith', 'London');
//! SELECT sname, city FROM supplier WHERE city = 'London' AND sno < 10;
//! SELECT city, COUNT(sno) FROM supplier GROUP BY city;
//! SELECT s.sname, p.pname FROM supplier s, part p WHERE s.city = p.city;
//! UPDATE supplier SET city = 'Paris' WHERE sno = 1;
//! DELETE FROM supplier WHERE sno = 1;
//! ```
//!
//! Translation is nearly one-to-one: SELECT → `RETRIEVE` (with the
//! by-clause for GROUP BY), the two-table equi-join SELECT →
//! `RETRIEVE-COMMON` (the fifth ABDL operation, unused by the thesis's
//! network interface but implemented by the kernel), INSERT/UPDATE/
//! DELETE → their ABDL namesakes (one UPDATE per SET column).

//! ## Example
//!
//! ```
//! use relational::{ddl, dml, SqlTranslator};
//!
//! let schema = ddl::parse_schema(
//!     "CREATE DATABASE d; CREATE TABLE t (a INTEGER, b CHAR(8));",
//! ).unwrap();
//! let mut store = abdl::Store::new();
//! relational::ab_map::install(&schema, &mut store);
//! let sql = SqlTranslator::new(schema);
//! for stmt in dml::parse_statements(
//!     "INSERT INTO t (a, b) VALUES (1, 'x'); SELECT b FROM t WHERE a = 1;",
//! ).unwrap() {
//!     let rs = sql.execute(&mut store, &stmt).unwrap();
//!     if !rs.rows.is_empty() {
//!         assert_eq!(rs.rows[0][0], abdl::Value::str("x"));
//!     }
//! }
//! ```

pub mod ab_map;
pub mod ddl;
pub mod dml;
pub mod error;
pub mod lex;
pub mod schema;
pub mod translate;

pub use error::{Error, Result};
pub use schema::{ColType, Column, RelSchema, Table};
pub use translate::{RowSet, SqlTranslator};
