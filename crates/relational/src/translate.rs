//! SQL → ABDL translation and execution (the relational KMS).

use crate::ab_map::{build_row, coerce, key_attr};
use crate::dml::{ColRef, FromItem, Rhs, SelectItem, SqlStatement, Where};
use crate::error::{Error, Result};
use crate::schema::{RelSchema, Table};
use abdl::{
    Aggregate, Kernel, Modifier, Predicate, Query, Request, Target, TargetList, Value, FILE_ATTR,
};

/// A formatted relational result: column headers and value rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows affected by a mutation.
    pub affected: usize,
    /// The ABDL requests generated (for the fan-out accounting).
    pub requests: Vec<Request>,
}

impl std::fmt::Display for RowSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.columns.is_empty() {
            return write!(f, "{} row(s) affected", self.affected);
        }
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        write!(f, "({} row(s))", self.rows.len())
    }
}

/// The SQL translator bound to a relational schema.
#[derive(Debug, Clone)]
pub struct SqlTranslator {
    schema: RelSchema,
}

impl SqlTranslator {
    /// A translator for a validated schema.
    pub fn new(schema: RelSchema) -> Self {
        SqlTranslator { schema }
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// Execute one SQL statement against a kernel.
    pub fn execute<K: Kernel>(&self, kernel: &mut K, stmt: &SqlStatement) -> Result<RowSet> {
        if self.schema.read_only && !matches!(stmt, SqlStatement::Select { .. }) {
            return Err(Error::InvalidSchema(format!(
                "`{}` is a read-only view; mutate through its native interface",
                self.schema.name
            )));
        }
        match stmt {
            SqlStatement::Insert { table, columns, values } => {
                self.insert(kernel, table, columns, values)
            }
            SqlStatement::Update { table, sets, wher } => self.update(kernel, table, sets, wher),
            SqlStatement::Delete { table, wher } => self.delete(kernel, table, wher),
            SqlStatement::Select { items, from, wher, group_by, order_by } => match from.len() {
                1 => self.select_single(
                    kernel,
                    items,
                    &from[0],
                    wher,
                    group_by.as_ref(),
                    order_by.as_ref(),
                ),
                2 => self.select_join(kernel, items, from, wher, order_by.as_ref()),
                n => Err(Error::InvalidSchema(format!(
                    "SELECT over {n} tables is not supported (1 table, or 2 with one equi-join)"
                ))),
            },
        }
    }

    // ----- mutations --------------------------------------------------

    fn insert<K: Kernel>(
        &self,
        kernel: &mut K,
        table: &str,
        columns: &[String],
        values: &[Value],
    ) -> Result<RowSet> {
        let t = self.schema.require_table(table)?;
        if columns.len() != values.len() {
            return Err(Error::ArityMismatch {
                table: table.to_owned(),
                columns: columns.len(),
                values: values.len(),
            });
        }
        let pairs: Vec<(String, Value)> =
            columns.iter().cloned().zip(values.iter().cloned()).collect();
        let key = kernel.reserve_key().0 as i64;
        let record = build_row(t, key, &pairs)?;
        let req = Request::Insert { record };
        kernel.execute(&req)?;
        Ok(RowSet { affected: 1, requests: vec![req], ..RowSet::default() })
    }

    fn update<K: Kernel>(
        &self,
        kernel: &mut K,
        table: &str,
        sets: &[(String, Value)],
        wher: &Where,
    ) -> Result<RowSet> {
        let t = self.schema.require_table(table)?.clone();
        let query = self.where_to_query(&t, None, wher)?;
        let mut out = RowSet::default();
        // "One UPDATE per SET column", mirroring the MODIFY translation.
        for (col, v) in sets {
            let v = coerce(&t, col, v.clone())?;
            let attr = t.require_column(col)?.kernel_attr().to_owned();
            let req = Request::Update {
                query: query.clone(),
                modifier: Modifier::new(attr, v),
            };
            let resp = kernel.execute(&req)?;
            out.affected = out.affected.max(resp.affected);
            out.requests.push(req);
        }
        Ok(out)
    }

    fn delete<K: Kernel>(&self, kernel: &mut K, table: &str, wher: &Where) -> Result<RowSet> {
        let t = self.schema.require_table(table)?.clone();
        let query = self.where_to_query(&t, None, wher)?;
        let req = Request::Delete { query };
        let resp = kernel.execute(&req)?;
        Ok(RowSet { affected: resp.affected, requests: vec![req], ..RowSet::default() })
    }

    // ----- single-table SELECT ------------------------------------------

    fn select_single<K: Kernel>(
        &self,
        kernel: &mut K,
        items: &[SelectItem],
        from: &FromItem,
        wher: &Where,
        group_by: Option<&ColRef>,
        order_by: Option<&(ColRef, bool)>,
    ) -> Result<RowSet> {
        let t = self.schema.require_table(&from.table)?.clone();
        let alias = from.alias.as_deref();
        let query = self.where_to_query(&t, alias, wher)?;

        let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg(..)));
        if has_agg || group_by.is_some() {
            let mut targets = Vec::new();
            let mut headers = Vec::new();
            for item in items {
                match item {
                    SelectItem::Agg(op, col) => {
                        check_col(&t, alias, col)?;
                        let attr = t.require_column(&col.column)?.kernel_attr().to_owned();
                        targets.push(Target::Agg(*op, attr));
                        headers.push(format!("{}({})", agg_name(*op), col.column));
                    }
                    SelectItem::Col(col) => {
                        check_col(&t, alias, col)?;
                        let attr = t.require_column(&col.column)?.kernel_attr().to_owned();
                        targets.push(Target::Attr(attr));
                        headers.push(col.column.clone());
                    }
                    SelectItem::All => {
                        return Err(Error::InvalidSchema(
                            "`*` cannot be mixed with aggregates".into(),
                        ))
                    }
                }
            }
            let by = match group_by {
                Some(col) => {
                    check_col(&t, alias, col)?;
                    Some(t.require_column(&col.column)?.kernel_attr().to_owned())
                }
                None => None,
            };
            let req = Request::Retrieve { query, target: TargetList { targets }, by };
            let resp = kernel.execute(&req)?;
            let rows = resp
                .groups
                .unwrap_or_default()
                .into_iter()
                .map(|g| g.values)
                .collect();
            return Ok(RowSet { columns: headers, rows, requests: vec![req], affected: 0 });
        }

        let pairs = self.projection(&t, alias, items)?;
        let headers: Vec<String> = pairs.iter().map(|(h, _)| h.clone()).collect();
        let attrs: Vec<String> = pairs.iter().map(|(_, a)| a.clone()).collect();
        let req = Request::Retrieve {
            query,
            target: TargetList::attrs(attrs.clone()),
            by: None,
        };
        let resp = kernel.execute(&req)?;
        let mut rows: Vec<Vec<Value>> = resp
            .records()
            .iter()
            .map(|(_, rec)| attrs.iter().map(|a| rec.get_or_null(a).clone()).collect())
            .collect();
        apply_order(&mut rows, &headers, order_by)?;
        Ok(RowSet { columns: headers, rows, requests: vec![req], affected: 0 })
    }

    // ----- two-table equi-join SELECT --------------------------------------

    fn select_join<K: Kernel>(
        &self,
        kernel: &mut K,
        items: &[SelectItem],
        from: &[FromItem],
        wher: &Where,
        order_by: Option<&(ColRef, bool)>,
    ) -> Result<RowSet> {
        let left_t = self.schema.require_table(&from[0].table)?.clone();
        let right_t = self.schema.require_table(&from[1].table)?.clone();
        let left_alias = from[0].alias.as_deref();
        let right_alias = from[1].alias.as_deref();

        if wher.len() != 1 {
            return Err(Error::InvalidSchema(
                "joins support a single conjunction (no OR) in this SQL subset".into(),
            ));
        }
        // Split the conjunction into the join predicate and per-side
        // locals.
        let mut join: Option<(ColRef, ColRef)> = None;
        let mut left_local = Vec::new();
        let mut right_local = Vec::new();
        for pred in &wher[0] {
            match &pred.rhs {
                Rhs::Col(rhs) => {
                    if pred.op != abdl::RelOp::Eq {
                        return Err(Error::InvalidSchema(
                            "join predicates must be equalities".into(),
                        ));
                    }
                    if join.is_some() {
                        return Err(Error::InvalidSchema(
                            "only one join predicate is supported".into(),
                        ));
                    }
                    join = Some((pred.lhs.clone(), rhs.clone()));
                }
                Rhs::Value(_) => {
                    if belongs(&left_t, left_alias, &pred.lhs) {
                        left_local.push(pred.clone());
                    } else if belongs(&right_t, right_alias, &pred.lhs) {
                        right_local.push(pred.clone());
                    } else {
                        return Err(Error::UnknownColumn {
                            table: format!("{} / {}", left_t.name, right_t.name),
                            column: pred.lhs.to_string(),
                        });
                    }
                }
            }
        }
        let Some((ja, jb)) = join else {
            return Err(Error::InvalidSchema("two-table SELECT needs a join predicate".into()));
        };
        // Orient the join columns to (left, right).
        let (left_col, right_col) = if belongs(&left_t, left_alias, &ja)
            && belongs(&right_t, right_alias, &jb)
        {
            (ja, jb)
        } else if belongs(&right_t, right_alias, &ja) && belongs(&left_t, left_alias, &jb) {
            (jb, ja)
        } else {
            return Err(Error::InvalidSchema(format!(
                "join predicate {ja} = {jb} does not span the two FROM tables"
            )));
        };

        let left_query =
            self.where_to_query(&left_t, left_alias, &vec![left_local])?;
        let right_query =
            self.where_to_query(&right_t, right_alias, &vec![right_local])?;

        // Projection: qualified columns resolve per side; the merged
        // record prefers the left side on collisions (kernel semantics).
        let mut headers = Vec::new();
        let mut attrs = Vec::new();
        let mut push_col = |name: String, attr: String| {
            headers.push(name);
            attrs.push(attr);
        };
        for item in items {
            match item {
                SelectItem::All => {
                    for c in &left_t.columns {
                        push_col(c.name.clone(), c.kernel_attr().to_owned());
                    }
                    for c in &right_t.columns {
                        if left_t.column(&c.name).is_none() {
                            push_col(c.name.clone(), c.kernel_attr().to_owned());
                        }
                    }
                }
                SelectItem::Col(col) => {
                    let owning = if belongs(&left_t, left_alias, col) {
                        &left_t
                    } else if belongs(&right_t, right_alias, col) {
                        &right_t
                    } else {
                        return Err(Error::UnknownColumn {
                            table: format!("{} / {}", left_t.name, right_t.name),
                            column: col.to_string(),
                        });
                    };
                    let attr = owning.require_column(&col.column)?.kernel_attr().to_owned();
                    push_col(col.column.clone(), attr);
                }
                SelectItem::Agg(..) => {
                    return Err(Error::InvalidSchema(
                        "aggregates over joins are not supported in this SQL subset".into(),
                    ))
                }
            }
        }

        let left_attr = left_t.require_column(&left_col.column)?.kernel_attr().to_owned();
        let right_attr = right_t.require_column(&right_col.column)?.kernel_attr().to_owned();
        let req = Request::RetrieveCommon {
            left: left_query,
            left_attr,
            right: right_query,
            right_attr,
            target: TargetList::attrs(attrs.clone()),
        };
        let resp = kernel.execute(&req)?;
        let mut rows: Vec<Vec<Value>> = resp
            .records()
            .iter()
            .map(|(_, rec)| attrs.iter().map(|a| rec.get_or_null(a).clone()).collect())
            .collect();
        apply_order(&mut rows, &headers, order_by)?;
        Ok(RowSet { columns: headers, rows, requests: vec![req], affected: 0 })
    }

    // ----- helpers --------------------------------------------------------

    /// Resolve a select list to (header, kernel-attribute) pairs.
    fn projection(
        &self,
        t: &Table,
        alias: Option<&str>,
        items: &[SelectItem],
    ) -> Result<Vec<(String, String)>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                SelectItem::All => out.extend(
                    t.columns.iter().map(|c| (c.name.clone(), c.kernel_attr().to_owned())),
                ),
                SelectItem::Col(col) => {
                    check_col(t, alias, col)?;
                    let attr = t.require_column(&col.column)?.kernel_attr().to_owned();
                    out.push((col.column.clone(), attr));
                }
                SelectItem::Agg(..) => unreachable!("aggregates handled by caller"),
            }
        }
        Ok(out)
    }

    /// Convert a WHERE clause into a kernel query over one table.
    fn where_to_query(&self, t: &Table, alias: Option<&str>, wher: &Where) -> Result<Query> {
        let file_pred = Predicate::eq(FILE_ATTR, Value::str(t.name.clone()));
        if wher.is_empty() {
            return Ok(Query::conjunction(vec![file_pred]));
        }
        let mut disjuncts = Vec::with_capacity(wher.len());
        for conj in wher {
            let mut predicates = vec![file_pred.clone()];
            for pred in conj {
                let Rhs::Value(v) = &pred.rhs else {
                    return Err(Error::InvalidSchema(format!(
                        "column-to-column predicate `{}` outside a two-table join",
                        pred.lhs
                    )));
                };
                check_col(t, alias, &pred.lhs)?;
                let v = if v.is_null() { Value::Null } else { coerce(t, &pred.lhs.column, v.clone())? };
                let attr = t.require_column(&pred.lhs.column)?.kernel_attr().to_owned();
                predicates.push(Predicate::new(attr, pred.op, v));
            }
            disjuncts.push(abdl::Conjunction::new(predicates));
        }
        Ok(Query::new(disjuncts))
    }
}

/// ORDER BY: sort rows by the named output column (which must appear
/// in the select list), ascending or descending.
fn apply_order(
    rows: &mut [Vec<Value>],
    columns: &[String],
    order_by: Option<&(ColRef, bool)>,
) -> Result<()> {
    let Some((col, desc)) = order_by else { return Ok(()) };
    let Some(idx) = columns.iter().position(|c| c == &col.column) else {
        return Err(Error::UnknownColumn {
            table: "select list".into(),
            column: col.to_string(),
        });
    };
    rows.sort_by(|a, b| a[idx].cmp(&b[idx]));
    if *desc {
        rows.reverse();
    }
    Ok(())
}

/// Does a column reference belong to this table (by qualifier and
/// column existence)?
fn belongs(t: &Table, alias: Option<&str>, col: &ColRef) -> bool {
    match &col.qualifier {
        Some(q) => (q == &t.name || Some(q.as_str()) == alias) && t.column(&col.column).is_some(),
        None => t.column(&col.column).is_some(),
    }
}

fn check_col(t: &Table, alias: Option<&str>, col: &ColRef) -> Result<()> {
    if belongs(t, alias, col) {
        Ok(())
    } else {
        Err(Error::UnknownColumn { table: t.name.clone(), column: col.to_string() })
    }
}

fn agg_name(op: Aggregate) -> &'static str {
    match op {
        Aggregate::Count => "COUNT",
        Aggregate::Sum => "SUM",
        Aggregate::Avg => "AVG",
        Aggregate::Min => "MIN",
        Aggregate::Max => "MAX",
    }
}

/// The row-key attribute of a table, re-exported for sessions.
pub fn row_key_attr(table: &str) -> &str {
    key_attr(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse_schema;
    use crate::dml::parse_statements;
    use abdl::Store;

    fn fixture() -> (SqlTranslator, Store) {
        let schema = parse_schema(
            "CREATE DATABASE suppliers;
             CREATE TABLE supplier (
                 sno INTEGER NOT NULL, sname CHAR(20), city CHAR(15), PRIMARY KEY (sno));
             CREATE TABLE part (
                 pno INTEGER NOT NULL, pname CHAR(20), city CHAR(15), PRIMARY KEY (pno));",
        )
        .unwrap();
        let mut store = Store::new();
        crate::ab_map::install(&schema, &mut store);
        let t = SqlTranslator::new(schema);
        let script = "
            INSERT INTO supplier (sno, sname, city) VALUES (1, 'Smith', 'London');
            INSERT INTO supplier (sno, sname, city) VALUES (2, 'Jones', 'Paris');
            INSERT INTO supplier (sno, sname, city) VALUES (3, 'Blake', 'Paris');
            INSERT INTO part (pno, pname, city) VALUES (1, 'Nut', 'London');
            INSERT INTO part (pno, pname, city) VALUES (2, 'Bolt', 'Paris');
            INSERT INTO part (pno, pname, city) VALUES (3, 'Screw', 'Rome');";
        for s in parse_statements(script).unwrap() {
            t.execute(&mut store, &s).unwrap();
        }
        (t, store)
    }

    fn run(t: &SqlTranslator, store: &mut Store, sql: &str) -> RowSet {
        let stmts = parse_statements(sql).unwrap();
        t.execute(store, &stmts[0]).unwrap()
    }

    #[test]
    fn select_where_projects() {
        let (t, mut store) = fixture();
        let rs = run(&t, &mut store, "SELECT sname FROM supplier WHERE city = 'Paris';");
        assert_eq!(rs.columns, vec!["sname"]);
        assert_eq!(rs.rows.len(), 2);
        // The translation is exactly one RETRIEVE.
        assert_eq!(rs.requests.len(), 1);
        assert!(rs.requests[0]
            .to_string()
            .starts_with("RETRIEVE ((FILE = 'supplier') and (city = 'Paris'))"));
    }

    #[test]
    fn select_star_and_or() {
        let (t, mut store) = fixture();
        let rs = run(&t, &mut store, "SELECT * FROM supplier WHERE sno = 1 OR city = 'Paris';");
        assert_eq!(rs.columns, vec!["sno", "sname", "city"]);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn group_by_aggregates() {
        let (t, mut store) = fixture();
        let rs = run(&t, &mut store, "SELECT city, COUNT(sno) FROM supplier GROUP BY city;");
        assert_eq!(rs.columns, vec!["city", "COUNT(sno)"]);
        assert_eq!(rs.rows.len(), 2);
        let paris = rs.rows.iter().find(|r| r[0] == Value::str("Paris")).unwrap();
        assert_eq!(paris[1], Value::Int(2));
    }

    #[test]
    fn join_via_retrieve_common() {
        let (t, mut store) = fixture();
        let rs = run(
            &t,
            &mut store,
            "SELECT s.sname, p.pname FROM supplier s, part p \
             WHERE s.city = p.city AND s.sno < 3;",
        );
        assert!(matches!(rs.requests[0], Request::RetrieveCommon { .. }));
        // Smith-Nut (London), Jones-Bolt (Paris); Blake excluded by sno<3.
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn update_delete_roundtrip() {
        let (t, mut store) = fixture();
        let rs = run(&t, &mut store, "UPDATE supplier SET city = 'Athens' WHERE sno = 2;");
        assert_eq!(rs.affected, 1);
        let rs = run(&t, &mut store, "SELECT sname FROM supplier WHERE city = 'Athens';");
        assert_eq!(rs.rows.len(), 1);
        let rs = run(&t, &mut store, "DELETE FROM supplier WHERE city = 'Athens';");
        assert_eq!(rs.affected, 1);
        let rs = run(&t, &mut store, "SELECT * FROM supplier;");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn primary_key_enforced() {
        let (t, mut store) = fixture();
        let stmts =
            parse_statements("INSERT INTO supplier (sno, sname) VALUES (1, 'Dup');").unwrap();
        let err = t.execute(&mut store, &stmts[0]).unwrap_err();
        assert!(matches!(err, Error::Kernel(abdl::Error::DuplicateKey { .. })));
    }

    #[test]
    fn type_checks() {
        let (t, mut store) = fixture();
        let stmts =
            parse_statements("INSERT INTO supplier (sno, sname) VALUES ('x', 'Bad');").unwrap();
        assert!(matches!(t.execute(&mut store, &stmts[0]), Err(Error::TypeMismatch { .. })));
        let stmts = parse_statements("INSERT INTO supplier (sname) VALUES ('NoKey');").unwrap();
        assert!(matches!(t.execute(&mut store, &stmts[0]), Err(Error::TypeMismatch { .. })));
        let stmts = parse_statements("SELECT ghost FROM supplier;").unwrap();
        assert!(matches!(t.execute(&mut store, &stmts[0]), Err(Error::UnknownColumn { .. })));
    }

    #[test]
    fn order_by_sorts_rows() {
        let (t, mut store) = fixture();
        let rs = run(&t, &mut store, "SELECT sname FROM supplier ORDER BY sname;");
        let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["Blake", "Jones", "Smith"]);
        let rs = run(&t, &mut store, "SELECT sname FROM supplier ORDER BY sname DESC;");
        let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["Smith", "Jones", "Blake"]);
        // Ordering by a column missing from the select list is an error.
        let stmts = parse_statements("SELECT sname FROM supplier ORDER BY city;").unwrap();
        assert!(matches!(t.execute(&mut store, &stmts[0]), Err(Error::UnknownColumn { .. })));
    }

    #[test]
    fn update_generates_one_request_per_set_column() {
        let (t, mut store) = fixture();
        let rs = run(
            &t,
            &mut store,
            "UPDATE supplier SET sname = 'X', city = 'Y' WHERE sno = 1;",
        );
        assert_eq!(rs.requests.len(), 2);
    }
}
