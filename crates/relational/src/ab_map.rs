//! The relational→ABDM mapping.
//!
//! The simplest of the MLDS mappings: a table is a kernel file, a row
//! is a record (`<FILE, t>`, `<t, row-key>`, one keyword per column),
//! and a primary key is a `DUPLICATES ARE NOT ALLOWED` group.

use crate::error::{Error, Result};
use crate::schema::{ColType, RelSchema, Table};
use abdl::{Kernel, Record, Value, FILE_ATTR};

/// The attribute holding a row's kernel key is named after its table.
pub fn key_attr(table: &str) -> &str {
    table
}

/// Create the kernel files and primary-key constraints for a schema.
pub fn install<K: Kernel>(schema: &RelSchema, kernel: &mut K) {
    for t in &schema.tables {
        kernel.create_file(&t.name);
        if !t.primary_key.is_empty() {
            kernel.add_unique_constraint(&t.name, t.primary_key.clone());
        }
    }
}

/// Coerce a value into a column's declared type (NULL passes unless the
/// column is NOT NULL).
pub fn coerce(table: &Table, column: &str, value: Value) -> Result<Value> {
    let col = table.require_column(column)?;
    if value.is_null() {
        if col.not_null {
            return Err(Error::TypeMismatch {
                table: table.name.clone(),
                column: column.to_owned(),
                expected: format!("{} NOT NULL", col.typ),
                got: "NULL".into(),
            });
        }
        return Ok(Value::Null);
    }
    let mismatch = |v: &Value| Error::TypeMismatch {
        table: table.name.clone(),
        column: column.to_owned(),
        expected: col.typ.to_string(),
        got: v.to_string(),
    };
    match (&col.typ, value) {
        (ColType::Int, Value::Int(i)) => Ok(Value::Int(i)),
        (ColType::Int, Value::Float(f)) if f.fract() == 0.0 => Ok(Value::Int(f as i64)),
        (ColType::Int, v) => Err(mismatch(&v)),
        (ColType::Float, Value::Float(f)) => Ok(Value::Float(f)),
        (ColType::Float, Value::Int(i)) => Ok(Value::Float(i as f64)),
        (ColType::Float, v) => Err(mismatch(&v)),
        (ColType::Char { len }, Value::Str(mut s)) => {
            if s.len() > *len as usize {
                s.truncate(*len as usize);
            }
            Ok(Value::Str(s))
        }
        (ColType::Char { .. }, v) => Err(mismatch(&v)),
    }
}

/// Build the kernel record for a new row.
pub fn build_row(table: &Table, key: i64, values: &[(String, Value)]) -> Result<Record> {
    let mut rec = Record::new();
    rec.set(FILE_ATTR, Value::str(table.name.clone()));
    rec.set(key_attr(&table.name).to_owned(), Value::Int(key));
    for (col, v) in values {
        let v = coerce(table, col, v.clone())?;
        let attr = table.require_column(col)?.kernel_attr().to_owned();
        if !v.is_null() {
            rec.set(attr, v);
        }
    }
    // NOT NULL columns must have been supplied.
    for col in &table.columns {
        if col.not_null && rec.get(col.kernel_attr()).is_none() {
            return Err(Error::TypeMismatch {
                table: table.name.clone(),
                column: col.name.clone(),
                expected: format!("{} NOT NULL", col.typ),
                got: "NULL".into(),
            });
        }
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse_schema;
    use abdl::Store;

    fn schema() -> RelSchema {
        parse_schema(
            "CREATE DATABASE d;
             CREATE TABLE t (a INTEGER NOT NULL, b CHAR(5), c FLOAT, PRIMARY KEY (a));",
        )
        .unwrap()
    }

    #[test]
    fn install_creates_files_and_pk() {
        let s = schema();
        let mut store = Store::new();
        install(&s, &mut store);
        let t = s.table("t").unwrap();
        let row = build_row(t, 1, &[("a".into(), Value::Int(7))]).unwrap();
        store.execute(&abdl::Request::Insert { record: row }).unwrap();
        let dup = build_row(t, 2, &[("a".into(), Value::Int(7))]).unwrap();
        assert!(store.execute(&abdl::Request::Insert { record: dup }).is_err());
    }

    #[test]
    fn coercion_and_not_null() {
        let s = schema();
        let t = s.table("t").unwrap();
        assert_eq!(coerce(t, "c", Value::Int(3)).unwrap(), Value::Float(3.0));
        assert_eq!(coerce(t, "b", Value::str("toolong!")).unwrap(), Value::str("toolo"));
        assert!(coerce(t, "a", Value::str("x")).is_err());
        assert!(coerce(t, "a", Value::Null).is_err(), "NOT NULL");
        assert!(coerce(t, "b", Value::Null).is_ok());
        assert!(build_row(t, 1, &[("b".into(), Value::str("x"))]).is_err(), "missing NOT NULL a");
    }
}
