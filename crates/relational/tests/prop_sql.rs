//! Randomized property tests for the SQL interface: WHERE-clause
//! translation agrees with a naive row-by-row reference evaluator.
//! Inputs come from the in-tree seeded PRNG so failures reproduce
//! exactly.

use abdl::prng::Prng;
use abdl::{RelOp, Store, Value};
use relational::{ddl, dml, SqlTranslator};

const CASES: u64 = 64;

const SCHEMA: &str = "
CREATE DATABASE prop;
CREATE TABLE t (
    a INTEGER,
    b INTEGER,
    c CHAR(8)
);
";

#[derive(Debug, Clone)]
struct Row {
    a: i64,
    b: i64,
    c: String,
}

fn gen_text(rng: &mut Prng) -> String {
    (0..1 + rng.index(3)).map(|_| (b'a' + rng.index(3) as u8) as char).collect()
}

fn gen_row(rng: &mut Prng) -> Row {
    Row { a: rng.gen_range(-10, 10), b: rng.gen_range(-10, 10), c: gen_text(rng) }
}

#[derive(Debug, Clone)]
struct Pred {
    col: usize, // 0=a, 1=b, 2=c
    op: RelOp,
    int: i64,
    text: String,
}

fn gen_pred(rng: &mut Prng) -> Pred {
    Pred {
        col: rng.index(3),
        op: [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge][rng.index(6)],
        int: rng.gen_range(-10, 10),
        text: gen_text(rng),
    }
}

fn pred_sql(p: &Pred) -> String {
    let col = ["a", "b", "c"][p.col];
    let op = match p.op {
        RelOp::Eq => "=",
        RelOp::Ne => "!=",
        RelOp::Lt => "<",
        RelOp::Le => "<=",
        RelOp::Gt => ">",
        RelOp::Ge => ">=",
    };
    if p.col == 2 {
        format!("{col} {op} '{}'", p.text)
    } else {
        format!("{col} {op} {}", p.int)
    }
}

fn pred_eval(p: &Pred, row: &Row) -> bool {
    let (lhs, rhs) = if p.col == 2 {
        (Value::str(row.c.clone()), Value::str(p.text.clone()))
    } else {
        (Value::Int(if p.col == 0 { row.a } else { row.b }), Value::Int(p.int))
    };
    p.op.eval(&lhs, &rhs)
}

fn fixture_with_rows(rows: &[Row]) -> (SqlTranslator, Store) {
    let schema = ddl::parse_schema(SCHEMA).unwrap();
    let mut store = Store::new();
    relational::ab_map::install(&schema, &mut store);
    let t = SqlTranslator::new(schema);
    for r in rows {
        let stmt = dml::parse_statement_str(&format!(
            "INSERT INTO t (a, b, c) VALUES ({}, {}, '{}');",
            r.a, r.b, r.c
        ))
        .unwrap();
        t.execute(&mut store, &stmt).unwrap();
    }
    (t, store)
}

/// SELECT … WHERE (DNF of random predicates) returns exactly the rows a
/// direct evaluation of the clause admits.
#[test]
fn where_clause_matches_reference_semantics() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5a1_1000 + seed);
        let rows: Vec<Row> = (0..rng.index(25)).map(|_| gen_row(&mut rng)).collect();
        let clause: Vec<Vec<Pred>> = (0..1 + rng.index(2))
            .map(|_| (0..1 + rng.index(2)).map(|_| gen_pred(&mut rng)).collect())
            .collect();
        let (t, mut store) = fixture_with_rows(&rows);
        let wher = clause
            .iter()
            .map(|conj| conj.iter().map(pred_sql).collect::<Vec<_>>().join(" AND "))
            .collect::<Vec<_>>()
            .join(" OR ");
        let stmt =
            dml::parse_statement_str(&format!("SELECT a, b, c FROM t WHERE {wher};")).unwrap();
        let got = t.execute(&mut store, &stmt).unwrap().rows.len();
        let expected = rows
            .iter()
            .filter(|r| clause.iter().any(|conj| conj.iter().all(|p| pred_eval(p, r))))
            .count();
        assert_eq!(got, expected, "WHERE {wher} (seed {seed})");
    }
}

/// DELETE removes exactly the WHERE-matching rows.
#[test]
fn delete_matches_reference_semantics() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5a1_2000 + seed);
        let rows: Vec<Row> = (0..rng.index(25)).map(|_| gen_row(&mut rng)).collect();
        let conj: Vec<Pred> = (0..1 + rng.index(2)).map(|_| gen_pred(&mut rng)).collect();
        let (t, mut store) = fixture_with_rows(&rows);
        let wher = conj.iter().map(pred_sql).collect::<Vec<_>>().join(" AND ");
        let del = dml::parse_statement_str(&format!("DELETE FROM t WHERE {wher};")).unwrap();
        let affected = t.execute(&mut store, &del).unwrap().affected;
        let expected = rows.iter().filter(|r| conj.iter().all(|p| pred_eval(p, r))).count();
        assert_eq!(affected, expected, "WHERE {wher} (seed {seed})");
        let rest = dml::parse_statement_str("SELECT a FROM t;").unwrap();
        assert_eq!(
            t.execute(&mut store, &rest).unwrap().rows.len(),
            rows.len() - expected,
            "seed {seed}"
        );
    }
}

/// COUNT via GROUP BY sums to the table size.
#[test]
fn group_by_count_partitions_the_table() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5a1_3000 + seed);
        let rows: Vec<Row> = (0..1 + rng.index(29)).map(|_| gen_row(&mut rng)).collect();
        let (t, mut store) = fixture_with_rows(&rows);
        let stmt = dml::parse_statement_str("SELECT c, COUNT(a) FROM t GROUP BY c;").unwrap();
        let rs = t.execute(&mut store, &stmt).unwrap();
        let total: i64 = rs.rows.iter().filter_map(|r| r[1].as_int()).sum();
        assert_eq!(total as usize, rows.len(), "seed {seed}");
    }
}
