//! Property tests for the SQL interface: WHERE-clause translation
//! agrees with a naive row-by-row reference evaluator.

use abdl::{RelOp, Store, Value};
use proptest::prelude::*;
use relational::{ddl, dml, SqlTranslator};

const SCHEMA: &str = "
CREATE DATABASE prop;
CREATE TABLE t (
    a INTEGER,
    b INTEGER,
    c CHAR(8)
);
";

#[derive(Debug, Clone)]
struct Row {
    a: i64,
    b: i64,
    c: String,
}

fn arb_row() -> impl Strategy<Value = Row> {
    ((-10i64..10), (-10i64..10), "[a-c]{1,3}").prop_map(|(a, b, c)| Row { a, b, c })
}

#[derive(Debug, Clone)]
struct Pred {
    col: usize, // 0=a, 1=b, 2=c
    op: RelOp,
    int: i64,
    text: String,
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (
        0usize..3,
        prop_oneof![
            Just(RelOp::Eq),
            Just(RelOp::Ne),
            Just(RelOp::Lt),
            Just(RelOp::Le),
            Just(RelOp::Gt),
            Just(RelOp::Ge),
        ],
        -10i64..10,
        "[a-c]{1,3}",
    )
        .prop_map(|(col, op, int, text)| Pred { col, op, int, text })
}

fn pred_sql(p: &Pred) -> String {
    let col = ["a", "b", "c"][p.col];
    let op = match p.op {
        RelOp::Eq => "=",
        RelOp::Ne => "!=",
        RelOp::Lt => "<",
        RelOp::Le => "<=",
        RelOp::Gt => ">",
        RelOp::Ge => ">=",
    };
    if p.col == 2 {
        format!("{col} {op} '{}'", p.text)
    } else {
        format!("{col} {op} {}", p.int)
    }
}

fn pred_eval(p: &Pred, row: &Row) -> bool {
    let (lhs, rhs) = if p.col == 2 {
        (Value::str(row.c.clone()), Value::str(p.text.clone()))
    } else {
        (Value::Int(if p.col == 0 { row.a } else { row.b }), Value::Int(p.int))
    };
    p.op.eval(&lhs, &rhs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SELECT … WHERE (DNF of random predicates) returns exactly the
    /// rows a direct evaluation of the clause admits.
    #[test]
    fn where_clause_matches_reference_semantics(
        rows in proptest::collection::vec(arb_row(), 0..25),
        clause in proptest::collection::vec(
            proptest::collection::vec(arb_pred(), 1..3), 1..3),
    ) {
        let schema = ddl::parse_schema(SCHEMA).unwrap();
        let mut store = Store::new();
        relational::ab_map::install(&schema, &mut store);
        let t = SqlTranslator::new(schema);
        for r in &rows {
            let stmt = dml::parse_statement_str(&format!(
                "INSERT INTO t (a, b, c) VALUES ({}, {}, '{}');",
                r.a, r.b, r.c
            ))
            .unwrap();
            t.execute(&mut store, &stmt).unwrap();
        }
        let wher = clause
            .iter()
            .map(|conj| conj.iter().map(pred_sql).collect::<Vec<_>>().join(" AND "))
            .collect::<Vec<_>>()
            .join(" OR ");
        let stmt = dml::parse_statement_str(&format!("SELECT a, b, c FROM t WHERE {wher};"))
            .unwrap();
        let got = t.execute(&mut store, &stmt).unwrap().rows.len();
        let expected = rows
            .iter()
            .filter(|r| clause.iter().any(|conj| conj.iter().all(|p| pred_eval(p, r))))
            .count();
        prop_assert_eq!(got, expected, "WHERE {}", wher);
    }

    /// DELETE removes exactly the WHERE-matching rows.
    #[test]
    fn delete_matches_reference_semantics(
        rows in proptest::collection::vec(arb_row(), 0..25),
        conj in proptest::collection::vec(arb_pred(), 1..3),
    ) {
        let schema = ddl::parse_schema(SCHEMA).unwrap();
        let mut store = Store::new();
        relational::ab_map::install(&schema, &mut store);
        let t = SqlTranslator::new(schema);
        for r in &rows {
            let stmt = dml::parse_statement_str(&format!(
                "INSERT INTO t (a, b, c) VALUES ({}, {}, '{}');",
                r.a, r.b, r.c
            ))
            .unwrap();
            t.execute(&mut store, &stmt).unwrap();
        }
        let wher = conj.iter().map(pred_sql).collect::<Vec<_>>().join(" AND ");
        let del = dml::parse_statement_str(&format!("DELETE FROM t WHERE {wher};")).unwrap();
        let affected = t.execute(&mut store, &del).unwrap().affected;
        let expected = rows.iter().filter(|r| conj.iter().all(|p| pred_eval(p, r))).count();
        prop_assert_eq!(affected, expected);
        let rest = dml::parse_statement_str("SELECT a FROM t;").unwrap();
        prop_assert_eq!(t.execute(&mut store, &rest).unwrap().rows.len(), rows.len() - expected);
    }

    /// COUNT via GROUP BY sums to the table size.
    #[test]
    fn group_by_count_partitions_the_table(
        rows in proptest::collection::vec(arb_row(), 1..30),
    ) {
        let schema = ddl::parse_schema(SCHEMA).unwrap();
        let mut store = Store::new();
        relational::ab_map::install(&schema, &mut store);
        let t = SqlTranslator::new(schema);
        for r in &rows {
            let stmt = dml::parse_statement_str(&format!(
                "INSERT INTO t (a, b, c) VALUES ({}, {}, '{}');",
                r.a, r.b, r.c
            ))
            .unwrap();
            t.execute(&mut store, &stmt).unwrap();
        }
        let stmt = dml::parse_statement_str("SELECT c, COUNT(a) FROM t GROUP BY c;").unwrap();
        let rs = t.execute(&mut store, &stmt).unwrap();
        let total: i64 = rs.rows.iter().filter_map(|r| r[1].as_int()).sum();
        prop_assert_eq!(total as usize, rows.len());
    }
}
