//! Per-user sessions — the `user_info`/`li_info` structures of Chapter
//! IV.B, one per open language interface.

use codasyl::dml::Statement;
use translator::{RunUnit, StepOutput, Translator};

/// What one executed user statement produced, for display.
#[derive(Debug, Clone)]
pub struct StatementOutput {
    /// The statement as parsed.
    pub statement: String,
    /// The verb (for per-statement accounting).
    pub verb: String,
    /// The ABDL requests KMS generated, rendered in canonical text.
    pub abdl: Vec<String>,
    /// KFS-formatted result (empty for pure-currency statements).
    pub display: String,
    /// Records affected by a mutation.
    pub affected: usize,
    /// True when the kernel answered in degraded mode: some records
    /// have no live replica, so results may be incomplete until a
    /// backend is restarted (always `false` on a single-site kernel).
    pub degraded: bool,
}

/// A CODASYL-DML session: the `dml_info` of the thesis — currency
/// table, UWA, result buffers and the translator bound to the session's
/// database.
pub struct CodasylSession {
    /// The user id.
    pub uid: String,
    /// The database this session is bound to.
    pub database: String,
    pub(crate) translator: Translator,
    pub(crate) run_unit: RunUnit,
    /// Statement/requests history (per-verb counts for E10).
    pub history: Vec<(String, usize)>,
}

impl CodasylSession {
    pub(crate) fn new(uid: &str, database: &str, translator: Translator) -> Self {
        CodasylSession {
            uid: uid.to_owned(),
            database: database.to_owned(),
            translator,
            run_unit: RunUnit::new(),
            history: Vec::new(),
        }
    }

    /// The network schema the session operates over (for a functional
    /// database, the transformed schema).
    pub fn schema(&self) -> &codasyl::NetworkSchema {
        self.translator.schema()
    }

    /// True when this session accesses a functional database through
    /// CODASYL-DML (the thesis's cross-model path).
    pub fn is_cross_model(&self) -> bool {
        self.translator.mode() == translator::TargetMode::AbFunctional
    }

    /// The session's currency table (read-only view).
    pub fn cit(&self) -> &codasyl::CurrencyTable {
        &self.run_unit.cit
    }

    /// The session's user work area (read-only view).
    pub fn uwa(&self) -> &codasyl::Uwa {
        &self.run_unit.uwa
    }

    pub(crate) fn record_history(&mut self, stmt: &Statement, out: &StepOutput) {
        self.history.push((stmt.verb().to_owned(), out.requests.len()));
    }
}

/// A Daplex session: the `dap_info` of the thesis.
pub struct DaplexSession {
    /// The user id.
    pub uid: String,
    /// The database this session is bound to.
    pub database: String,
    pub(crate) loader: daplex::ab_map::Loader,
}

impl DaplexSession {
    pub(crate) fn new(uid: &str, database: &str, loader: daplex::ab_map::Loader) -> Self {
        DaplexSession { uid: uid.to_owned(), database: database.to_owned(), loader }
    }

    /// The functional schema the session operates over.
    pub fn schema(&self) -> &daplex::FunctionalSchema {
        self.loader.schema()
    }
}

/// A SQL session: the `sql_info` slot of the thesis's `li_info` union.
pub struct SqlSession {
    /// The user id.
    pub uid: String,
    /// The database this session is bound to.
    pub database: String,
    pub(crate) translator: relational::SqlTranslator,
}

impl SqlSession {
    pub(crate) fn new(uid: &str, database: &str, translator: relational::SqlTranslator) -> Self {
        SqlSession { uid: uid.to_owned(), database: database.to_owned(), translator }
    }

    /// The relational schema the session operates over.
    pub fn schema(&self) -> &relational::RelSchema {
        self.translator.schema()
    }
}

/// A DL/I session wrapper: the `dli_info` slot of the thesis's
/// `li_info` union (positional state included).
pub struct HierSession {
    /// The user id.
    pub uid: String,
    /// The database this session is bound to.
    pub database: String,
    pub(crate) session: dli::DliSession,
}

impl HierSession {
    pub(crate) fn new(uid: &str, database: &str, session: dli::DliSession) -> Self {
        HierSession { uid: uid.to_owned(), database: database.to_owned(), session }
    }

    /// The hierarchical schema the session operates over.
    pub fn schema(&self) -> &dli::HierSchema {
        self.session.schema()
    }

    /// The DL/I positional state.
    pub fn dli(&self) -> &dli::DliSession {
        &self.session
    }
}
