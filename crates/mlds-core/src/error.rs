//! The top-level MLDS error type.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced to MLDS users.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The DDL was not parseable as any supported data model.
    UnrecognizedDdl {
        /// Error from the network (CODASYL) DDL parser.
        network: String,
        /// Error from the functional (Daplex) DDL parser.
        functional: String,
    },
    /// No database of the given name exists in either schema list.
    UnknownDatabase(String),
    /// A database of the given name already exists.
    DatabaseExists(String),
    /// The session's database disappeared (dropped between statements).
    StaleSession(String),
    /// Network-model layer error.
    Codasyl(codasyl::Error),
    /// Functional-model layer error.
    Daplex(daplex::Error),
    /// CODASYL-DML translation/execution error.
    Translator(translator::Error),
    /// Relational-model layer error.
    Relational(relational::Error),
    /// Hierarchical-model layer error.
    Hierarchical(dli::Error),
    /// Schema transformation error.
    Transform(String),
    /// Kernel error.
    Kernel(abdl::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnrecognizedDdl { network, functional } => write!(
                f,
                "DDL not recognized by any data model (network parser: {network}; \
                 functional parser: {functional})"
            ),
            Error::UnknownDatabase(name) => write!(f, "no database named `{name}`"),
            Error::DatabaseExists(name) => write!(f, "database `{name}` already exists"),
            Error::StaleSession(name) => write!(f, "database `{name}` no longer exists"),
            Error::Codasyl(e) => write!(f, "{e}"),
            Error::Daplex(e) => write!(f, "{e}"),
            Error::Translator(e) => write!(f, "{e}"),
            Error::Relational(e) => write!(f, "{e}"),
            Error::Hierarchical(e) => write!(f, "{e}"),
            Error::Transform(e) => write!(f, "{e}"),
            Error::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<codasyl::Error> for Error {
    fn from(e: codasyl::Error) -> Self {
        Error::Codasyl(e)
    }
}

impl From<daplex::Error> for Error {
    fn from(e: daplex::Error) -> Self {
        Error::Daplex(e)
    }
}

impl From<translator::Error> for Error {
    fn from(e: translator::Error) -> Self {
        Error::Translator(e)
    }
}

impl From<abdl::Error> for Error {
    fn from(e: abdl::Error) -> Self {
        Error::Kernel(e)
    }
}

impl From<relational::Error> for Error {
    fn from(e: relational::Error) -> Self {
        Error::Relational(e)
    }
}

impl From<dli::Error> for Error {
    fn from(e: dli::Error) -> Self {
        Error::Hierarchical(e)
    }
}
