//! `mlds-shell` — an interactive MLDS terminal.
//!
//! The thesis's LIL "supports user interaction with the system via a
//! user-selected data model with transactions written in a
//! corresponding user data language"; this binary is that loop. Lines
//! starting with `.` are shell commands; everything else is handed to
//! the open session's language interface (CODASYL-DML or Daplex).
//!
//! ```text
//! cargo run -p mlds-core --bin mlds-shell                 # interactive
//! cargo run -p mlds-core --bin mlds-shell -- script.mlds  # batch
//! ```
//!
//! Commands:
//!
//! ```text
//! .help                         this text
//! .demo                         load + populate the University database
//! .create <path>                load a database from a DDL file (model auto-detected)
//! .open <db> [codasyl|daplex|sql|dli]   open a session (default codasyl)
//! .dbs                          list databases
//! .schema <db>                  print a database's schema
//! .transformed <db>             print a functional database's transformed network schema
//! .abdl on|off                  echo generated ABDL requests (default on)
//! .save <path> / .load <path>   dump / restore the kernel as ABDL text
//! .quit                         exit
//! ```

use mlds::{daplex, CodasylSession, DaplexSession, HierSession, Mlds, SqlSession};
use std::io::{BufRead, Write};

enum Session {
    None,
    Codasyl(Box<CodasylSession>),
    Daplex(Box<DaplexSession>),
    Sql(Box<SqlSession>),
    Dli(Box<HierSession>),
}

struct Shell {
    mlds: Mlds,
    session: Session,
    echo_abdl: bool,
}

fn main() {
    let mut shell = Shell { mlds: Mlds::single_backend(), session: Session::None, echo_abdl: true };
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        match std::fs::read_to_string(path) {
            Ok(script) => {
                for line in script.lines() {
                    shell.dispatch(line);
                }
            }
            Err(e) => eprintln!("cannot read `{path}`: {e}"),
        }
        return;
    }

    println!("MLDS — the Multi-Lingual Database System (type .help)");
    let stdin = std::io::stdin();
    loop {
        print!("mlds> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        if !shell.dispatch(&line) {
            break;
        }
    }
}

impl Shell {
    /// Handle one input line; false means quit.
    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        if let Some(cmd) = line.strip_prefix('.') {
            return self.command(cmd);
        }
        self.statement(line);
        true
    }

    fn command(&mut self, cmd: &str) -> bool {
        let mut words = cmd.split_whitespace();
        match words.next() {
            Some("help") => print!("{}", HELP),
            Some("quit") | Some("exit") => return false,
            Some("demo") => {
                match self.mlds.create_database(daplex::university::UNIVERSITY_DDL) {
                    Ok(db) => {
                        if let Err(e) = self.mlds.populate_university(&db) {
                            eprintln!("populate failed: {e}");
                        } else {
                            println!("loaded and populated `{db}`; try `.open {db}`");
                        }
                    }
                    Err(e) => eprintln!("{e}"),
                }
            }
            Some("create") => match words.next() {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(ddl) => match self.mlds.create_database(&ddl) {
                        Ok(db) => println!("created `{db}`"),
                        Err(e) => eprintln!("{e}"),
                    },
                    Err(e) => eprintln!("cannot read `{path}`: {e}"),
                },
                None => eprintln!("usage: .create <ddl-file>"),
            },
            Some("open") => {
                let Some(db) = words.next() else {
                    eprintln!("usage: .open <db> [codasyl|daplex]");
                    return true;
                };
                let lang = words.next().unwrap_or("codasyl");
                match lang {
                    "codasyl" => match self.mlds.connect_codasyl("shell", db) {
                        Ok(s) => {
                            println!(
                                "opened `{db}` via CODASYL-DML{}",
                                if s.is_cross_model() {
                                    " (functional database, schema transformed)"
                                } else {
                                    ""
                                }
                            );
                            self.session = Session::Codasyl(Box::new(s));
                        }
                        Err(e) => eprintln!("{e}"),
                    },
                    "daplex" => match self.mlds.connect_daplex("shell", db) {
                        Ok(s) => {
                            println!("opened `{db}` via Daplex");
                            self.session = Session::Daplex(Box::new(s));
                        }
                        Err(e) => eprintln!("{e}"),
                    },
                    "sql" => match self.mlds.connect_sql("shell", db) {
                        Ok(s) => {
                            println!("opened `{db}` via SQL");
                            self.session = Session::Sql(Box::new(s));
                        }
                        Err(e) => eprintln!("{e}"),
                    },
                    "dli" => match self.mlds.connect_dli("shell", db) {
                        Ok(s) => {
                            println!("opened `{db}` via DL/I");
                            self.session = Session::Dli(Box::new(s));
                        }
                        Err(e) => eprintln!("{e}"),
                    },
                    other => eprintln!("unknown language `{other}` (codasyl|daplex|sql|dli)"),
                }
            }
            Some("dbs") => {
                for name in self.mlds.database_names() {
                    let kind = if self.mlds.functional_schema(name).is_some() {
                        "functional"
                    } else if self.mlds.relational_schema(name).is_some() {
                        "relational"
                    } else if self.mlds.hierarchical_schema(name).is_some() {
                        "hierarchical"
                    } else {
                        "network"
                    };
                    println!("{name} ({kind})");
                }
            }
            Some("schema") => match words.next() {
                Some(db) => {
                    if let Some(s) = self.mlds.functional_schema(db) {
                        print!("{}", daplex::ddl::print_schema(s));
                    } else if let Some(s) = self.mlds.network_schema(db) {
                        print!("{}", mlds::codasyl::ddl::print_schema(s));
                    } else if let Some(s) = self.mlds.relational_schema(db) {
                        print!("{}", mlds::relational::ddl::print_schema(s));
                    } else if let Some(s) = self.mlds.hierarchical_schema(db) {
                        print!("{}", mlds::dli::ddl::print_schema(s));
                    } else {
                        eprintln!("no database named `{db}`");
                    }
                }
                None => eprintln!("usage: .schema <db>"),
            },
            Some("transformed") => match words.next() {
                Some(db) => match self.mlds.connect_codasyl("shell-peek", db) {
                    Ok(s) => print!("{}", mlds::codasyl::ddl::print_schema(s.schema())),
                    Err(e) => eprintln!("{e}"),
                },
                None => eprintln!("usage: .transformed <db>"),
            },
            Some("functional") => match words.next() {
                Some(db) => match self.mlds.connect_daplex("shell-peek", db) {
                    Ok(s) => print!("{}", daplex::ddl::print_schema(s.schema())),
                    Err(e) => eprintln!("{e}"),
                },
                None => eprintln!("usage: .functional <db>"),
            },
            Some("abdl") => match words.next() {
                Some("on") => self.echo_abdl = true,
                Some("off") => self.echo_abdl = false,
                _ => eprintln!("usage: .abdl on|off"),
            },
            Some("save") => match words.next() {
                Some(path) => {
                    let text = mlds::abdl::engine::dump(self.mlds.kernel_mut());
                    match std::fs::write(path, text) {
                        Ok(()) => println!("kernel saved to `{path}`"),
                        Err(e) => eprintln!("cannot write `{path}`: {e}"),
                    }
                }
                None => eprintln!("usage: .save <path>"),
            },
            Some("load") => match words.next() {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(text) => match mlds::abdl::engine::restore(&text) {
                        Ok(store) => {
                            *self.mlds.kernel_mut() = store;
                            println!("kernel restored from `{path}` (schemas are not part of \
                                      dumps; .create them before .open)");
                        }
                        Err(e) => eprintln!("{e}"),
                    },
                    Err(e) => eprintln!("cannot read `{path}`: {e}"),
                },
                None => eprintln!("usage: .load <path>"),
            },
            other => eprintln!("unknown command {other:?} (try .help)"),
        }
        true
    }

    fn statement(&mut self, line: &str) {
        match &mut self.session {
            Session::None => eprintln!("no open session (try `.demo` then `.open university`)"),
            Session::Codasyl(s) => match self.mlds.execute_codasyl(s, line) {
                Ok(outputs) => {
                    for out in outputs {
                        if self.echo_abdl {
                            for req in &out.abdl {
                                println!("  ABDL: {req}");
                            }
                        }
                        if !out.display.is_empty() {
                            println!("{}", out.display);
                        }
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
            Session::Daplex(s) => match self.mlds.execute_daplex(s, line) {
                Ok(outputs) => {
                    for out in outputs {
                        if out.display.is_empty() {
                            println!("({} affected)", out.affected);
                        } else {
                            println!("{}", out.display);
                        }
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
            Session::Sql(s) => match self.mlds.execute_sql(s, line) {
                Ok(outputs) => {
                    for out in outputs {
                        if self.echo_abdl {
                            for req in &out.abdl {
                                println!("  ABDL: {req}");
                            }
                        }
                        println!("{}", out.display);
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
            Session::Dli(s) => match self.mlds.execute_dli(s, line) {
                Ok(outputs) => {
                    for out in outputs {
                        if self.echo_abdl {
                            for req in &out.abdl {
                                println!("  ABDL: {req}");
                            }
                        }
                        if !out.display.is_empty() {
                            println!("{}", out.display);
                        }
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
        }
    }
}

const HELP: &str = "\
.help                         this text
.demo                         load + populate the University database
.create <path>                load a database from a DDL file (model auto-detected)
.open <db> [codasyl|daplex|sql|dli]   open a session (default codasyl)
.dbs                          list databases
.schema <db>                  print a database's schema
.transformed <db>             print a functional database's transformed network schema
.functional <db>              print a network database's reverse-transformed Daplex schema
.abdl on|off                  echo generated ABDL requests (default on)
.save <path> / .load <path>   dump / restore the kernel as ABDL text
.quit                         exit
Anything else is a statement for the open session, e.g.:
  MOVE 'Advanced Database' TO title IN course
  FIND ANY course USING title IN course
  GET course
or, in a Daplex session:
  FOR EACH student SUCH THAT major(student) = 'Computer Science' PRINT name(student);
";
