//! `mlds-shell` — an interactive MLDS terminal.
//!
//! The thesis's LIL "supports user interaction with the system via a
//! user-selected data model with transactions written in a
//! corresponding user data language"; this binary is that loop. Lines
//! starting with `.` are shell commands; everything else is handed to
//! the open session's language interface (CODASYL-DML or Daplex).
//!
//! ```text
//! cargo run -p mlds-core --bin mlds-shell                 # interactive
//! cargo run -p mlds-core --bin mlds-shell -- script.mlds  # batch
//! ```
//!
//! Commands:
//!
//! ```text
//! .help                         this text
//! .demo                         load + populate the University database
//! .create <path>                load a database from a DDL file (model auto-detected)
//! .open <db> [codasyl|daplex|sql|dli]   open a session (default codasyl)
//! .dbs                          list databases
//! .schema <db>                  print a database's schema
//! .transformed <db>             print a functional database's transformed network schema
//! .abdl on|off                  echo generated ABDL requests (default on)
//! .spawn <n> [requests] [read%] drive <n> concurrent sessions through the service layer
//! .sessions                     per-session roster from the last .spawn
//! .stats                        kernel work counters (requests, records, scheduler occupancy)
//! .save <path> / .load <path>   dump / restore the kernel as ABDL text
//! .durable <dir> [backends]     switch to a durable multi-backend kernel (WAL in <dir>)
//! .tcp [backends]               switch to out-of-process backends over the TCP transport
//! .timeout <ms>                 set the multi-backend kernel's reply window
//! .recover <dir>                rebuild the kernel from the write-ahead log in <dir>
//! .standby <dir>                attach a hot standby tailing the WAL in <dir>
//! .lag                          ship pending log records and print replication lag
//! .promote                      fail over: promote the standby over the live backends
//! .addbackend                   grow the cluster: add a backend and rebalance onto it
//! .drain <id>                   shrink the cluster: move backend <id>'s groups away
//! .quit                         exit
//! ```

use mlds::abdl::{parse::parse_request, prng::Prng, Kernel};
use mlds::{
    daplex, mbds, CodasylSession, DaplexSession, HierSession, Mlds, MldsService, NamespacedKernel,
    ServiceReport, SqlSession,
};
use std::io::{BufRead, Write};

enum Session {
    None,
    Codasyl(Box<CodasylSession>),
    Daplex(Box<DaplexSession>),
    Sql(Box<SqlSession>),
    Dli(Box<HierSession>),
}

/// The shell's kernel: a single in-memory store (default) or a durable
/// multi-backend controller with a write-ahead log (`.durable`).
enum Kern {
    Single(Box<Mlds>),
    Durable(Box<Mlds<mbds::Controller>>),
}

/// Run `$body` with `$m` bound to the active `Mlds`, whichever kernel
/// backs it — every MLDS operation is kernel-generic.
macro_rules! with_mlds {
    ($kern:expr, $m:ident, $body:expr) => {
        match $kern {
            Kern::Single($m) => $body,
            Kern::Durable($m) => $body,
        }
    };
}

struct Shell {
    kern: Kern,
    session: Session,
    echo_abdl: bool,
    /// A hot standby tailing the durable kernel's WAL (`.standby`),
    /// consumed by `.promote`.
    standby: Option<Box<mbds::Standby>>,
    /// Admission log and per-session roster from the last `.spawn`.
    last_spawn: Option<ServiceReport>,
    /// Monotonic key base so repeated `.spawn`s insert fresh keys.
    spawn_seq: u64,
}

fn main() {
    let mut shell = Shell {
        kern: Kern::Single(Box::new(Mlds::single_backend())),
        session: Session::None,
        echo_abdl: true,
        standby: None,
        last_spawn: None,
        spawn_seq: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        match std::fs::read_to_string(path) {
            Ok(script) => {
                for line in script.lines() {
                    shell.dispatch(line);
                }
            }
            Err(e) => eprintln!("cannot read `{path}`: {e}"),
        }
        return;
    }

    println!("MLDS — the Multi-Lingual Database System (type .help)");
    let stdin = std::io::stdin();
    loop {
        print!("mlds> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        if !shell.dispatch(&line) {
            break;
        }
    }
}

impl Shell {
    /// Handle one input line; false means quit.
    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        if let Some(cmd) = line.strip_prefix('.') {
            return self.command(cmd);
        }
        self.statement(line);
        true
    }

    fn command(&mut self, cmd: &str) -> bool {
        let mut words = cmd.split_whitespace();
        match words.next() {
            Some("help") => print!("{}", HELP),
            Some("quit") | Some("exit") => return false,
            Some("demo") => with_mlds!(&mut self.kern, m, {
                match m.create_database(daplex::university::UNIVERSITY_DDL) {
                    Ok(db) => {
                        if let Err(e) = m.populate_university(&db) {
                            eprintln!("populate failed: {e}");
                        } else {
                            println!("loaded and populated `{db}`; try `.open {db}`");
                        }
                    }
                    Err(e) => eprintln!("{e}"),
                }
            }),
            Some("create") => match words.next() {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(ddl) => with_mlds!(&mut self.kern, m, {
                        match m.create_database(&ddl) {
                            Ok(db) => println!("created `{db}`"),
                            Err(e) => eprintln!("{e}"),
                        }
                    }),
                    Err(e) => eprintln!("cannot read `{path}`: {e}"),
                },
                None => eprintln!("usage: .create <ddl-file>"),
            },
            Some("open") => {
                let Some(db) = words.next() else {
                    eprintln!("usage: .open <db> [codasyl|daplex]");
                    return true;
                };
                let lang = words.next().unwrap_or("codasyl");
                with_mlds!(&mut self.kern, m, {
                    match lang {
                        "codasyl" => match m.connect_codasyl("shell", db) {
                            Ok(s) => {
                                println!(
                                    "opened `{db}` via CODASYL-DML{}",
                                    if s.is_cross_model() {
                                        " (functional database, schema transformed)"
                                    } else {
                                        ""
                                    }
                                );
                                self.session = Session::Codasyl(Box::new(s));
                            }
                            Err(e) => eprintln!("{e}"),
                        },
                        "daplex" => match m.connect_daplex("shell", db) {
                            Ok(s) => {
                                println!("opened `{db}` via Daplex");
                                self.session = Session::Daplex(Box::new(s));
                            }
                            Err(e) => eprintln!("{e}"),
                        },
                        "sql" => match m.connect_sql("shell", db) {
                            Ok(s) => {
                                println!("opened `{db}` via SQL");
                                self.session = Session::Sql(Box::new(s));
                            }
                            Err(e) => eprintln!("{e}"),
                        },
                        "dli" => match m.connect_dli("shell", db) {
                            Ok(s) => {
                                println!("opened `{db}` via DL/I");
                                self.session = Session::Dli(Box::new(s));
                            }
                            Err(e) => eprintln!("{e}"),
                        },
                        other => eprintln!("unknown language `{other}` (codasyl|daplex|sql|dli)"),
                    }
                })
            }
            Some("dbs") => with_mlds!(&mut self.kern, m, {
                for name in m.database_names() {
                    let kind = if m.functional_schema(name).is_some() {
                        "functional"
                    } else if m.relational_schema(name).is_some() {
                        "relational"
                    } else if m.hierarchical_schema(name).is_some() {
                        "hierarchical"
                    } else {
                        "network"
                    };
                    println!("{name} ({kind})");
                }
            }),
            Some("schema") => match words.next() {
                Some(db) => with_mlds!(&mut self.kern, m, {
                    if let Some(s) = m.functional_schema(db) {
                        print!("{}", daplex::ddl::print_schema(s));
                    } else if let Some(s) = m.network_schema(db) {
                        print!("{}", mlds::codasyl::ddl::print_schema(s));
                    } else if let Some(s) = m.relational_schema(db) {
                        print!("{}", mlds::relational::ddl::print_schema(s));
                    } else if let Some(s) = m.hierarchical_schema(db) {
                        print!("{}", mlds::dli::ddl::print_schema(s));
                    } else {
                        eprintln!("no database named `{db}`");
                    }
                }),
                None => eprintln!("usage: .schema <db>"),
            },
            Some("transformed") => match words.next() {
                Some(db) => with_mlds!(&mut self.kern, m, {
                    match m.connect_codasyl("shell-peek", db) {
                        Ok(s) => print!("{}", mlds::codasyl::ddl::print_schema(s.schema())),
                        Err(e) => eprintln!("{e}"),
                    }
                }),
                None => eprintln!("usage: .transformed <db>"),
            },
            Some("functional") => match words.next() {
                Some(db) => with_mlds!(&mut self.kern, m, {
                    match m.connect_daplex("shell-peek", db) {
                        Ok(s) => print!("{}", daplex::ddl::print_schema(s.schema())),
                        Err(e) => eprintln!("{e}"),
                    }
                }),
                None => eprintln!("usage: .functional <db>"),
            },
            Some("stats") => {
                with_mlds!(&self.kern, m, {
                    let t = m.exec_totals();
                    let h = m.health();
                    println!(
                        "requests executed:  {}\nrecords examined:   {}\nbackend messages:   {}\n\
                         wal appends:        {} ({} batches, {} syncs, {} snapshots)\n\
                         reply timeouts:     {} ({} retries, {} ms in backoff)\n\
                         backends:           {} ({} down{})",
                        t.requests,
                        t.records_examined,
                        t.messages_sent,
                        t.wal_appends,
                        t.wal_batches,
                        t.wal_syncs,
                        t.wal_snapshots,
                        t.reply_timeouts,
                        t.retries,
                        t.backoff_ms,
                        h.backends,
                        h.unavailable.len(),
                        if h.degraded { ", degraded" } else { "" }
                    );
                    println!(
                        "scheduler:          {} batched request(s) in {} flight(s) \
                         (max {} in flight, {} conflict stall(s), wal max batch {})",
                        t.batched_requests,
                        t.sched_flights,
                        t.sched_max_flight,
                        t.conflict_stalls,
                        t.wal_max_batch
                    );
                    println!(
                        "read pipeline:      {} read flight(s), {} mixed flight(s), \
                         {} probe(s) ({} failover(s))",
                        t.sched_read_flights,
                        t.sched_mixed_flights,
                        t.read_probes,
                        t.read_probe_failovers
                    );
                });
                if let Kern::Durable(m) = &mut self.kern {
                    let k = m.kernel_mut();
                    let t = k.exec_totals();
                    let (records, groups, bytes) = k.directory_stats();
                    println!(
                        "controller epoch:   {}\ndirectory:          {records} record(s) in \
                         {groups} replica group(s), ~{bytes} bytes resident",
                        k.epoch()
                    );
                    let cz = k.directory_compression();
                    println!(
                        "directory map:      {} entr(ies) flat ~{} B -> compressed ~{} B \
                         ({} run(s), {} overlay)",
                        cz.entries, cz.flat_bytes, cz.resident_bytes, cz.runs, cz.overlay
                    );
                    let pending = k.rebalance_pending();
                    println!(
                        "rebalance:          {} group(s) moved, {} byte(s) shipped, \
                         {} stalled request(s), {} move(s) pending",
                        t.groups_moved, t.move_bytes, t.rebalance_stalls, pending
                    );
                    let probes = k.read_probe_counts();
                    if probes.iter().any(|&c| c > 0) {
                        let cells: Vec<String> = probes
                            .iter()
                            .enumerate()
                            .map(|(i, c)| format!("b{i}={c}"))
                            .collect();
                        println!("read probes/backend: {}", cells.join(" "));
                    }
                }
                if let Some(sb) = &self.standby {
                    let lag = sb.lag();
                    println!(
                        "standby lag:        {} record(s) shipped, {} bytes behind, {} µs applying",
                        lag.records_shipped, lag.bytes_behind, lag.apply_micros
                    );
                }
            }
            Some("abdl") => match words.next() {
                Some("on") => self.echo_abdl = true,
                Some("off") => self.echo_abdl = false,
                _ => eprintln!("usage: .abdl on|off"),
            },
            Some("spawn") => {
                let n = words.next().and_then(|w| w.parse::<usize>().ok()).unwrap_or(8);
                let per = words.next().and_then(|w| w.parse::<usize>().ok()).unwrap_or(25);
                let read_pct =
                    words.next().and_then(|w| w.parse::<u64>().ok()).unwrap_or(25);
                if n == 0 || per == 0 || read_pct > 100 {
                    eprintln!("usage: .spawn <sessions> [requests-per-session] [read%]");
                    return true;
                }
                let base = self.spawn_seq;
                self.spawn_seq += (n * per) as u64;
                // The service layer owns the Mlds while sessions run;
                // swap a throwaway in, then swap the real one back.
                match &mut self.kern {
                    Kern::Single(m) => {
                        let mlds = std::mem::replace(m.as_mut(), Mlds::single_backend());
                        let (mlds, report) = run_spawn(mlds, n, per, base, read_pct);
                        **m = mlds;
                        self.last_spawn = Some(report);
                    }
                    Kern::Durable(m) => {
                        let dummy = Mlds::with_kernel(mbds::Controller::new(1));
                        let mlds = std::mem::replace(m.as_mut(), dummy);
                        let (mlds, report) = run_spawn(mlds, n, per, base, read_pct);
                        **m = mlds;
                        self.last_spawn = Some(report);
                    }
                }
            }
            Some("sessions") => match &self.last_spawn {
                Some(report) => {
                    println!("session  uid       db       requests  errors");
                    for s in &report.sessions {
                        println!(
                            "{:<8} {:<9} {:<8} {:<9} {}",
                            s.id, s.uid, s.db, s.requests, s.errors
                        );
                    }
                    println!("{} request(s) in the admission log", report.admissions.len());
                }
                None => eprintln!("no spawn yet (.spawn <n> first)"),
            },
            Some("save") => match (words.next(), &mut self.kern) {
                (Some(path), Kern::Single(m)) => {
                    let text = mlds::abdl::engine::dump(m.kernel_mut());
                    match std::fs::write(path, text) {
                        Ok(()) => println!("kernel saved to `{path}`"),
                        Err(e) => eprintln!("cannot write `{path}`: {e}"),
                    }
                }
                (Some(_), Kern::Durable(_)) => {
                    eprintln!(".save works on the single-store kernel; a durable kernel \
                               already persists itself in its log directory")
                }
                (None, _) => eprintln!("usage: .save <path>"),
            },
            Some("load") => match (words.next(), &mut self.kern) {
                (Some(path), Kern::Single(m)) => match std::fs::read_to_string(path) {
                    Ok(text) => match mlds::abdl::engine::restore(&text) {
                        Ok(store) => {
                            *m.kernel_mut() = store;
                            println!("kernel restored from `{path}` (schemas are not part of \
                                      dumps; .create them before .open)");
                        }
                        Err(e) => eprintln!("{e}"),
                    },
                    Err(e) => eprintln!("cannot read `{path}`: {e}"),
                },
                (Some(_), Kern::Durable(_)) => {
                    eprintln!(".load works on the single-store kernel; use .recover <dir> to \
                               rebuild a durable kernel from its log")
                }
                (None, _) => eprintln!("usage: .load <path>"),
            },
            Some("tcp") => {
                let backends = words.next().and_then(|w| w.parse().ok()).unwrap_or(4);
                match Mlds::tcp_backend(backends) {
                    Ok(m) => {
                        self.kern = Kern::Durable(Box::new(m));
                        self.session = Session::None;
                        self.standby = None;
                        println!(
                            "{backends} backend processes spawned over the TCP transport \
                             (fresh kernel: .create or .demo, then .open; .timeout tunes \
                             the reply window)"
                        );
                    }
                    Err(e) => eprintln!("{e}"),
                }
            }
            Some("timeout") => match (words.next().and_then(|w| w.parse::<u64>().ok()), &mut self.kern)
            {
                (Some(ms), Kern::Durable(m)) if ms > 0 => {
                    m.set_reply_timeout(std::time::Duration::from_millis(ms));
                    println!("reply window set to {ms} ms (two expired windows demote a backend)");
                }
                (Some(_), Kern::Single(_)) => {
                    eprintln!(".timeout requires a multi-backend kernel (.durable or .tcp first)")
                }
                _ => eprintln!("usage: .timeout <ms>"),
            },
            Some("durable") => match words.next() {
                Some(dir) => {
                    let backends = words.next().and_then(|w| w.parse().ok()).unwrap_or(4);
                    match Mlds::durable_backend(backends, dir) {
                        Ok(m) => {
                            self.kern = Kern::Durable(Box::new(m));
                            self.session = Session::None;
                            self.standby = None;
                            println!(
                                "durable {backends}-backend kernel logging to `{dir}` \
                                 (fresh kernel: .create or .demo, then .open)"
                            );
                        }
                        Err(e) => eprintln!("{e}"),
                    }
                }
                None => eprintln!("usage: .durable <dir> [backends]"),
            },
            Some("recover") => match words.next() {
                Some(dir) => match &mut self.kern {
                    // Mid-run crash simulation: swap the kernel in
                    // place; schemas and open sessions (currency
                    // indicators included) carry across.
                    Kern::Durable(m) => match m.recover_kernel(dir) {
                        Ok(()) => println!(
                            "kernel recovered from `{dir}` (schemas and sessions kept)"
                        ),
                        Err(e) => eprintln!("{e}"),
                    },
                    Kern::Single(_) => match Mlds::recover_backend(dir) {
                        Ok(m) => {
                            self.kern = Kern::Durable(Box::new(m));
                            self.session = Session::None;
                            println!(
                                "kernel recovered from `{dir}` (schemas are not part of the \
                                 log; .create them before .open)"
                            );
                        }
                        Err(e) => eprintln!("{e}"),
                    },
                },
                None => eprintln!("usage: .recover <dir>"),
            },
            Some("standby") => match (words.next(), &self.kern) {
                (Some(dir), Kern::Durable(m)) => match m.standby_of(dir) {
                    Ok(sb) => {
                        self.standby = Some(Box::new(sb));
                        println!(
                            "standby attached, tailing `{dir}` (.lag to check, .promote to \
                             fail over)"
                        );
                    }
                    Err(e) => eprintln!("{e}"),
                },
                (Some(_), Kern::Single(_)) => {
                    eprintln!(".standby requires a durable kernel (.durable <dir> first)")
                }
                (None, _) => eprintln!("usage: .standby <dir>"),
            },
            Some("lag") => match &mut self.standby {
                Some(sb) => match sb.poll() {
                    Ok(n) => {
                        let lag = sb.lag();
                        println!(
                            "shipped {} record(s) total ({n} this poll), {} bytes behind, \
                             {} µs applying",
                            lag.records_shipped, lag.bytes_behind, lag.apply_micros
                        );
                    }
                    Err(e) => eprintln!("{e}"),
                },
                None => eprintln!("no standby attached (.standby <dir>)"),
            },
            Some("promote") => match (self.standby.take(), &mut self.kern) {
                (Some(sb), Kern::Durable(m)) => match m.promote(*sb) {
                    Ok(()) => println!(
                        "standby promoted: epoch-fenced controller installed over the \
                         existing backends (schemas and sessions kept)"
                    ),
                    Err(e) => eprintln!("{e}"),
                },
                (Some(_), Kern::Single(_)) => {
                    eprintln!(".promote requires a durable kernel")
                }
                (None, _) => eprintln!("no standby attached (.standby <dir>)"),
            },
            Some("addbackend") => match &mut self.kern {
                Kern::Durable(m) => {
                    let k = m.kernel_mut();
                    let before = k.exec_totals().groups_moved;
                    match k.add_backend().and_then(|i| k.finish_rebalance().map(|()| i)) {
                        Ok(i) => {
                            let moved = k.exec_totals().groups_moved - before;
                            println!(
                                "backend {i} joined; {moved} group(s) rebalanced onto it \
                                 (.stats for move totals)"
                            );
                        }
                        Err(e) => eprintln!("{e}"),
                    }
                }
                Kern::Single(_) => {
                    eprintln!(".addbackend requires a multi-backend kernel (.durable or .tcp first)")
                }
            },
            Some("drain") => match (words.next().and_then(|w| w.parse::<usize>().ok()), &mut self.kern)
            {
                (Some(i), Kern::Durable(m)) => {
                    let k = m.kernel_mut();
                    let before = k.exec_totals().groups_moved;
                    match k.drain_backend(i).and_then(|()| k.finish_rebalance()) {
                        Ok(()) => {
                            let moved = k.exec_totals().groups_moved - before;
                            println!(
                                "backend {i} drained and retired; {moved} group(s) moved away \
                                 (.stats for move totals)"
                            );
                        }
                        Err(e) => eprintln!("{e}"),
                    }
                }
                (Some(_), Kern::Single(_)) => {
                    eprintln!(".drain requires a multi-backend kernel (.durable or .tcp first)")
                }
                _ => eprintln!("usage: .drain <backend-id>"),
            },
            other => eprintln!("unknown command {other:?} (try .help)"),
        }
        true
    }

    fn statement(&mut self, line: &str) {
        let Shell { kern, session, echo_abdl, .. } = self;
        let echo_abdl = *echo_abdl;
        match session {
            Session::None => eprintln!("no open session (try `.demo` then `.open university`)"),
            Session::Codasyl(s) => match with_mlds!(kern, m, m.execute_codasyl(s, line)) {
                Ok(outputs) => {
                    for out in outputs {
                        if echo_abdl {
                            for req in &out.abdl {
                                println!("  ABDL: {req}");
                            }
                        }
                        if !out.display.is_empty() {
                            println!("{}", out.display);
                        }
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
            Session::Daplex(s) => match with_mlds!(kern, m, m.execute_daplex(s, line)) {
                Ok(outputs) => {
                    for out in outputs {
                        if out.display.is_empty() {
                            println!("({} affected)", out.affected);
                        } else {
                            println!("{}", out.display);
                        }
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
            Session::Sql(s) => match with_mlds!(kern, m, m.execute_sql(s, line)) {
                Ok(outputs) => {
                    for out in outputs {
                        if echo_abdl {
                            for req in &out.abdl {
                                println!("  ABDL: {req}");
                            }
                        }
                        println!("{}", out.display);
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
            Session::Dli(s) => match with_mlds!(kern, m, m.execute_dli(s, line)) {
                Ok(outputs) => {
                    for out in outputs {
                        if echo_abdl {
                            for req in &out.abdl {
                                println!("  ABDL: {req}");
                            }
                        }
                        if !out.display.is_empty() {
                            println!("{}", out.display);
                        }
                    }
                }
                Err(e) => eprintln!("{e}"),
            },
        }
    }
}

/// Drive `n` concurrent sessions through the service layer: each
/// session thread runs a seeded insert/retrieve mix (`read_pct`% reads
/// — mostly key-scoped point reads the scheduler can probe, plus the
/// odd full scan) against a scratch `spawn` database, so `.stats`
/// afterwards shows the scheduler's flight, probe and group-commit
/// counters on real contention.
fn run_spawn<K: Kernel + Send + 'static>(
    mut mlds: Mlds<K>,
    n: usize,
    per: usize,
    base: u64,
    read_pct: u64,
) -> (Mlds<K>, ServiceReport) {
    {
        let mut ns = NamespacedKernel::new(mlds.kernel_mut(), "spawn");
        ns.create_file("t");
        // Key the scratch file so point reads are key-scoped (single-
        // backend probes) and repeat spawns stay conflict-realistic.
        ns.add_unique_constraint("t", vec!["u".into()]);
    }
    let mut svc = MldsService::start(mlds);
    let start = std::time::Instant::now();
    let mut handles = Vec::with_capacity(n);
    for s in 0..n {
        let session = svc.open(&format!("spawn-{s}"), "spawn");
        handles.push(std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(0x5AA5 + s as u64);
            let mut errors = 0usize;
            let mut inserted: Vec<u64> = Vec::new();
            for i in 0..per {
                let text = if rng.gen_range(0, 100) < read_pct as i64 {
                    if rng.gen_range(0, 8) == 0 || inserted.is_empty() {
                        "RETRIEVE (FILE = t) (*)".to_owned()
                    } else {
                        let k = inserted[rng.gen_range(0, inserted.len() as i64) as usize];
                        format!("RETRIEVE ((FILE = t) and (u = {k})) (*)")
                    }
                } else {
                    let key = base + (s * per + i) as u64;
                    inserted.push(key);
                    format!("INSERT (<FILE, t>, <u, {key}>, <owner, {s}>)")
                };
                let req = parse_request(&text).expect("spawn workload request parses");
                if session.submit(req).is_err() {
                    errors += 1;
                }
            }
            errors
        }));
    }
    let mut errors = 0usize;
    for h in handles {
        errors += h.join().unwrap_or(0);
    }
    let elapsed = start.elapsed();
    let (mlds, report) = svc.into_parts();
    let total = n * per;
    let rate = total as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "{n} session(s) x {per} request(s) in {:.1} ms ({rate:.0} req/s, {errors} error(s)); \
         .sessions for the roster, .stats for scheduler occupancy",
        elapsed.as_secs_f64() * 1e3
    );
    (mlds, report)
}

const HELP: &str = "\
.help                         this text
.demo                         load + populate the University database
.create <path>                load a database from a DDL file (model auto-detected)
.open <db> [codasyl|daplex|sql|dli]   open a session (default codasyl)
.dbs                          list databases
.schema <db>                  print a database's schema
.transformed <db>             print a functional database's transformed network schema
.functional <db>              print a network database's reverse-transformed Daplex schema
.abdl on|off                  echo generated ABDL requests (default on)
.spawn <n> [requests] [read%] drive <n> concurrent sessions through the service layer
.sessions                     per-session roster from the last .spawn
.stats                        kernel work counters (requests, records, scheduler occupancy)
.save <path> / .load <path>   dump / restore the kernel as ABDL text
.durable <dir> [backends]     switch to a durable multi-backend kernel (WAL in <dir>)
.tcp [backends]               switch to out-of-process backends over the TCP transport
.timeout <ms>                 set the multi-backend kernel's reply window
.recover <dir>                rebuild the kernel from the write-ahead log in <dir>
.standby <dir>                attach a hot standby tailing the WAL in <dir>
.lag                          ship pending log records and print replication lag
.promote                      fail over: promote the standby over the live backends
.addbackend                   grow the cluster: add a backend and rebalance onto it
.drain <id>                   shrink the cluster: move backend <id>'s groups away
.quit                         exit
Anything else is a statement for the open session, e.g.:
  MOVE 'Advanced Database' TO title IN course
  FIND ANY course USING title IN course
  GET course
or, in a Daplex session:
  FOR EACH student SUCH THAT major(student) = 'Computer Science' PRINT name(student);
";
