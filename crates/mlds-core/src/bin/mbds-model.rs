//! `mbds-model` — offline driver for the explicit-state model checker
//! of the epoch-fenced failover protocol (`mbds::model`).
//!
//! CI runs the bounded configuration through `tests/model_check.rs`;
//! this binary exists for deeper sweeps on a workstation:
//!
//! ```sh
//! # the CI configuration, exhaustively:
//! cargo run --release -p mlds-core --bin mbds-model
//! # deeper / wider:
//! cargo run --release -p mlds-core --bin mbds-model -- --depth 16 --writes 5
//! # one intentionally broken protocol variant (expects a counterexample):
//! cargo run --release -p mlds-core --bin mbds-model -- --mutation skip-fence-raise
//! # the full verification matrix (protocol must hold, every mutation must fail):
//! cargo run --release -p mlds-core --bin mbds-model -- --sweep
//! ```
//!
//! Exit status is 0 when the run matches expectations (no violation
//! for the real protocol, a counterexample for every mutation) and 1
//! otherwise. `--trace-out PATH` writes the counterexample trace for
//! CI to upload as an artifact.

use mbds::model::{check, ModelConfig, Mutation};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: mbds-model [--depth N] [--writes N] [--backends N] [--crashes N] \
         [--snapshots N] [--max-states N] [--mutation NAME] [--sweep] [--trace-out PATH]\n\
         mutations: {}",
        Mutation::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ModelConfig::small();
    let mut sweep = false;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> u32 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--depth" => cfg.depth = num(&mut args),
            "--writes" => cfg.writes = num(&mut args).min(16) as u8,
            "--backends" => cfg.backends = num(&mut args).min(8) as u8,
            "--crashes" => cfg.max_crashes = num(&mut args) as u8,
            "--snapshots" => cfg.max_snapshots = num(&mut args) as u8,
            "--max-states" => cfg.max_states = num(&mut args) as usize,
            "--mutation" => {
                let name = args.next().unwrap_or_else(|| usage());
                cfg.mutation = Mutation::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown mutation `{name}`");
                    usage()
                });
            }
            "--sweep" => sweep = true,
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let mutations: Vec<Mutation> = if sweep {
        std::iter::once(Mutation::None).chain(Mutation::ALL).collect()
    } else {
        vec![cfg.mutation]
    };

    let mut ok = true;
    for mutation in mutations {
        let run_cfg = ModelConfig { mutation, ..cfg };
        let report = check(&run_cfg);
        println!("{}", report.summary());
        let expected_violation = mutation != Mutation::None;
        match (&report.counterexample, expected_violation) {
            (None, false) | (Some(_), true) => {}
            (None, true) => {
                eprintln!("FAIL: mutation {} produced no counterexample", mutation.name());
                ok = false;
            }
            (Some(_), false) => {
                eprintln!("FAIL: the real protocol violated an invariant");
                ok = false;
            }
        }
        if let Some(ce) = &report.counterexample {
            let rendered = ce.render();
            if !expected_violation {
                eprint!("{rendered}");
            }
            if let Some(path) = &trace_out {
                let tagged = format!("mutation={}\n{rendered}", mutation.name());
                if let Err(e) = std::fs::write(path, tagged) {
                    eprintln!("could not write {path}: {e}");
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
