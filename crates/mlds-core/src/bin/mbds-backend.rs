//! One MBDS backend as its own OS process.
//!
//! The controller spawns one of these per backend when it runs over the
//! socket transport (`Controller::over_tcp` / `MBDS_TRANSPORT=tcp`): the
//! process binds an ephemeral TCP port, announces it on stdout as
//! `MBDS-PORT <port>`, and then serves the checksummed wire protocol —
//! a private `abdl::Store` behind epoch fencing, idempotent-reply
//! caching and the classic injectable fault plan — until the controller
//! sends `Shutdown` or closes the stdin pipe (the watchdog that ties
//! the backend's life to its controller's).
//!
//! Usage: `mbds-backend <index>` — the backend's position on the bus,
//! used for fault-plan addressing and error messages.

fn main() {
    let index: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("usage: mbds-backend <index>");
            std::process::exit(2);
        });
    mbds::net::backend_process_main(index);
}
