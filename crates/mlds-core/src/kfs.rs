//! KFS — the Kernel Formatting System.
//!
//! "KFS reformats the results into UDM format and displays them, via
//! LIL, to the user." Kernel records are attribute–value pair lists;
//! the network user expects record-occurrence displays shaped by the
//! record type declaration, and the Daplex user expects function-value
//! rows.

use abdl::{Record, Value};
use codasyl::schema::{NetworkSchema, RecordType};

/// Format a kernel record as a network record occurrence:
/// `course #3 ( title = 'Advanced Database', semester = 'F87', credits = 4 )`.
///
/// Only the record type's declared data items are shown — the kernel
/// bookkeeping keywords (FILE, the key attribute, set links) stay
/// hidden, exactly as the network user's view of the transformed
/// functional database demands.
pub fn format_network_record(schema: &NetworkSchema, record_type: &str, key: i64, rec: &Record) -> String {
    match schema.record(record_type) {
        Some(rt) => format!("{record_type} #{key} ( {} )", items_of(rt, rec)),
        None => format!("{record_type} #{key} {rec}"),
    }
}

fn items_of(rt: &RecordType, rec: &Record) -> String {
    rt.attrs
        .iter()
        .map(|a| format!("{} = {}", a.name, rec.get_or_null(&a.name)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Format a set-occurrence listing (FIND FIRST/NEXT sweeps).
pub fn format_occurrence(
    schema: &NetworkSchema,
    record_type: &str,
    rows: &[(i64, Record)],
) -> String {
    rows.iter()
        .map(|(k, r)| format_network_record(schema, record_type, *k, r))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Format a Daplex FOR EACH row: `name = 'Coker', gpa = 3.6`.
pub fn format_daplex_row(print: &[String], values: &[Value]) -> String {
    print
        .iter()
        .zip(values)
        .map(|(f, v)| format!("{f} = {v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use codasyl::schema::{AttrType, NetAttrType};

    fn schema() -> NetworkSchema {
        let mut s = NetworkSchema::new("t");
        let mut rt = RecordType::new("course");
        rt.attrs.push(AttrType::new("title", NetAttrType::Char { len: 30 }));
        rt.attrs.push(AttrType::new("credits", NetAttrType::Int));
        s.records.push(rt);
        s
    }

    #[test]
    fn network_record_display_hides_kernel_keywords() {
        let s = schema();
        let rec = Record::from_pairs([
            ("FILE", Value::str("course")),
            ("course", Value::Int(3)),
            ("title", Value::str("Advanced Database")),
            ("credits", Value::Int(4)),
            ("system_course", Value::Int(0)),
        ]);
        let text = format_network_record(&s, "course", 3, &rec);
        assert_eq!(text, "course #3 ( title = 'Advanced Database', credits = 4 )");
        assert!(!text.contains("system_course"));
    }

    #[test]
    fn missing_items_render_as_null() {
        let s = schema();
        let rec = Record::from_pairs([("title", Value::str("X"))]);
        let text = format_network_record(&s, "course", 1, &rec);
        assert!(text.contains("credits = NULL"));
    }

    #[test]
    fn occurrence_listing_is_one_record_per_line() {
        let s = schema();
        let rows = vec![
            (1, Record::from_pairs([("title", Value::str("A"))])),
            (2, Record::from_pairs([("title", Value::str("B"))])),
        ];
        let text = format_occurrence(&s, "course", &rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("course #1"));
        assert!(lines[1].contains("title = 'B'"));
    }

    #[test]
    fn daplex_row_pairs_functions_with_values() {
        let text = format_daplex_row(
            &["name".into(), "gpa".into()],
            &[Value::str("Coker"), Value::Float(3.6)],
        );
        assert_eq!(text, "name = 'Coker', gpa = 3.6");
    }

    #[test]
    fn unknown_record_type_falls_back_to_raw() {
        let s = schema();
        let rec = Record::from_pairs([("x", Value::Int(1))]);
        let text = format_network_record(&s, "ghost", 9, &rec);
        assert!(text.starts_with("ghost #9 (<x, 1>)"));
    }
}
