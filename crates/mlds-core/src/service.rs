//! The concurrent front door: a multi-session service over one MLDS.
//!
//! The 1987 system is described as serving "numerous databases" to
//! many users at once, but [`Mlds`](crate::Mlds) itself is a
//! single-threaded value: every `execute_*` call borrows it mutably.
//! [`MldsService`] lifts that restriction without touching the kernel
//! borrow discipline. It moves the whole `Mlds` into a dispatcher
//! thread and hands out [`ServiceSession`] handles that are `Send` —
//! each session submits ABDL requests over a channel and blocks on a
//! private reply channel.
//!
//! The concurrency win comes from *admission batching*: when several
//! sessions have requests queued at once, the dispatcher drains them
//! all, maps each through its session's database [`Namespace`], and
//! hands the whole group to [`Kernel::execute_batch`] in one call. On
//! the multi-backend controller that means the batch scheduler keeps
//! non-conflicting requests in flight on the backend bus together and
//! the WAL group-commits every append under a single sync — the two
//! costs that dominate a one-at-a-time front door.
//!
//! Every executed request is also recorded in the **admission log**
//! (session id, database, session-level request, normalized outcome),
//! in the exact order the dispatcher admitted it. Replaying that log
//! serially on an identically-configured fresh system must reproduce
//! every outcome and the same final state — the equivalence bar that
//! `tests/concurrent_equivalence.rs` pins.

use crate::namespace::Namespace;
use crate::system::Mlds;
use abdl::{Error, Kernel, Request, Response};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// Most jobs the dispatcher will drain into one admission batch.
/// Bounds per-batch latency; the controller's scheduler decides how
/// much of the batch actually flies concurrently.
const MAX_BATCH: usize = 64;

/// One admitted request, recorded in dispatcher admission order.
#[derive(Debug, Clone)]
pub struct AdmissionEntry {
    /// Session that submitted the request.
    pub session: u64,
    /// Database the session was connected to.
    pub db: String,
    /// The session-level (unprefixed) request.
    pub request: Request,
    /// Normalized outcome observed by the live run — compare against
    /// [`outcome_of`] on a serial replay.
    pub outcome: String,
}

/// Per-session activity counters, for the shell's `.sessions` view.
#[derive(Debug, Clone)]
pub struct SessionStat {
    /// Session id (service-unique, in open order).
    pub id: u64,
    /// User id given at open.
    pub uid: String,
    /// Database the session is scoped to.
    pub db: String,
    /// Requests executed on behalf of this session.
    pub requests: u64,
    /// Of those, how many returned an error.
    pub errors: u64,
}

/// Everything the dispatcher hands back when the service stops.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Every executed request, in admission order.
    pub admissions: Vec<AdmissionEntry>,
    /// Per-session counters, in open order.
    pub sessions: Vec<SessionStat>,
}

/// Normalize a request outcome for order-equivalence comparison:
/// enough to distinguish any semantically different result, nothing
/// that varies between a concurrent and a serial run of the same
/// admission order.
pub fn outcome_of(result: &abdl::Result<Response>) -> String {
    match result {
        Ok(r) => {
            let mut keys: Vec<u64> = r.records().iter().map(|(k, _)| k.0).collect();
            keys.sort_unstable();
            format!(
                "ok affected={} records={:?} groups={}",
                r.affected,
                keys,
                r.groups.as_ref().map_or(0, Vec::len),
            )
        }
        Err(e) => format!("err {e}"),
    }
}

enum Job {
    Open { id: u64, uid: String, db: String, ack: Sender<()> },
    Exec { id: u64, request: Request, reply: Sender<abdl::Result<Response>> },
    Stop,
}

/// A `Send` handle onto one open session of a running [`MldsService`].
///
/// Cloning is cheap; clones share the session (same id, same database,
/// same counters).
#[derive(Clone)]
pub struct ServiceSession {
    id: u64,
    db: String,
    tx: Sender<Job>,
}

impl ServiceSession {
    /// The service-unique session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The database this session is scoped to.
    pub fn database(&self) -> &str {
        &self.db
    }

    /// Submit one ABDL request and block for its response. Safe to
    /// call from any thread; concurrent submitters from different
    /// sessions are admitted as one batch.
    pub fn submit(&self, request: Request) -> abdl::Result<Response> {
        let (rtx, rrx) = channel();
        self.tx
            .send(Job::Exec { id: self.id, request, reply: rtx })
            .map_err(|_| Error::Unavailable("service stopped".into()))?;
        rrx.recv().map_err(|_| Error::Unavailable("service stopped".into()))?
    }

    /// Parse `text` as one ABDL request and submit it.
    pub fn execute_abdl(&self, text: &str) -> abdl::Result<Response> {
        self.submit(abdl::parse::parse_request(text)?)
    }
}

/// A running multi-session service wrapping one [`Mlds`].
///
/// Construct the `Mlds` first (create databases, load schemas), then
/// [`start`](MldsService::start) it. The service owns the system until
/// [`into_parts`](MldsService::into_parts) hands it back along with
/// the admission log.
pub struct MldsService<K: Kernel + Send + 'static> {
    tx: Sender<Job>,
    handle: JoinHandle<(Mlds<K>, ServiceReport)>,
    next_id: u64,
}

impl<K: Kernel + Send + 'static> MldsService<K> {
    /// Move `mlds` into a dispatcher thread and start serving.
    pub fn start(mlds: Mlds<K>) -> Self {
        let (tx, rx) = channel();
        let handle = std::thread::spawn(move || dispatch(mlds, rx));
        MldsService { tx, handle, next_id: 0 }
    }

    /// Open a session for `uid` against database `db`. The handle is
    /// `Send` and may be moved to (or cloned across) worker threads.
    pub fn open(&mut self, uid: &str, db: &str) -> ServiceSession {
        self.next_id += 1;
        let id = self.next_id;
        let (ack_tx, ack_rx) = channel();
        // The dispatcher owns the registry; wait for the ack so a
        // session can never race ahead of its own registration.
        let _ = self.tx.send(Job::Open {
            id,
            uid: uid.to_owned(),
            db: db.to_owned(),
            ack: ack_tx,
        });
        let _ = ack_rx.recv();
        ServiceSession { id, db: db.to_owned(), tx: self.tx.clone() }
    }

    /// Stop the dispatcher and reclaim the `Mlds` plus the admission
    /// log and per-session counters. Outstanding sessions' submits
    /// fail with [`Error::Unavailable`] afterwards.
    pub fn into_parts(self) -> (Mlds<K>, ServiceReport) {
        let _ = self.tx.send(Job::Stop);
        self.handle.join().expect("service dispatcher panicked")
    }
}

fn dispatch<K: Kernel>(mut mlds: Mlds<K>, rx: Receiver<Job>) -> (Mlds<K>, ServiceReport) {
    let mut report = ServiceReport::default();
    // id → (namespace, index into report.sessions)
    let mut registry: HashMap<u64, (Namespace, usize)> = HashMap::new();
    'serve: loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        // Drain whatever else is already queued: these are the
        // requests that were admitted "at the same time" and may
        // execute as one batch.
        let mut jobs = vec![first];
        while jobs.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        while !jobs.is_empty() {
            if matches!(jobs[0], Job::Exec { .. }) {
                // Gather the run of consecutive Exec jobs.
                let mut j = 1;
                while j < jobs.len() && matches!(jobs[j], Job::Exec { .. }) {
                    j += 1;
                }
                let run: Vec<Job> = jobs.drain(..j).collect();
                execute_run(&mut mlds, &registry, &mut report, run);
                continue;
            }
            match jobs.remove(0) {
                Job::Open { id, uid, db, ack } => {
                    registry.insert(id, (Namespace::new(&db), report.sessions.len()));
                    report.sessions.push(SessionStat { id, uid, db, requests: 0, errors: 0 });
                    let _ = ack.send(());
                }
                Job::Stop => break 'serve,
                Job::Exec { .. } => unreachable!(),
            }
        }
    }
    (mlds, report)
}

fn execute_run<K: Kernel>(
    mlds: &mut Mlds<K>,
    registry: &HashMap<u64, (Namespace, usize)>,
    report: &mut ServiceReport,
    run: Vec<Job>,
) {
    let mut mapped = Vec::with_capacity(run.len());
    let mut meta = Vec::with_capacity(run.len());
    for job in run {
        let Job::Exec { id, request, reply } = job else { unreachable!() };
        let Some((ns, slot)) = registry.get(&id) else {
            let _ = reply.send(Err(Error::Unavailable(format!("unknown session {id}"))));
            continue;
        };
        mapped.push(ns.map_request_in(&request));
        meta.push((id, request, reply, ns.clone(), *slot));
    }
    if mapped.is_empty() {
        return;
    }
    let results = mlds.kernel_mut().execute_batch(&mapped);
    for ((id, request, reply, ns, slot), result) in meta.into_iter().zip(results) {
        let result = result.map(|r| ns.map_response_out(r));
        let stat = &mut report.sessions[slot];
        stat.requests += 1;
        if result.is_err() {
            stat.errors += 1;
        }
        report.admissions.push(AdmissionEntry {
            session: id,
            db: stat.db.clone(),
            request,
            outcome: outcome_of(&result),
        });
        let _ = reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::Value;
    use std::sync::{Arc, Barrier};

    fn seeded_mlds() -> Mlds {
        let mut mlds = Mlds::single_backend();
        let k = mlds.kernel_mut();
        let mut ns = crate::NamespacedKernel::new(k, "db");
        ns.create_file("t");
        ns.add_unique_constraint("t", vec!["t".into()]);
        mlds
    }

    #[test]
    fn sessions_execute_and_the_admission_log_replays() {
        let mut svc = MldsService::start(seeded_mlds());
        let a = svc.open("alice", "db");
        let b = svc.open("bob", "db");
        a.execute_abdl("INSERT (<FILE, t>, <t, 1>)").unwrap();
        b.execute_abdl("INSERT (<FILE, t>, <t, 2>)").unwrap();
        let dup = b.execute_abdl("INSERT (<FILE, t>, <t, 1>)");
        assert!(matches!(dup, Err(Error::DuplicateKey { .. })));
        let resp = a.execute_abdl("RETRIEVE (FILE = t) (*)").unwrap();
        assert_eq!(resp.records().len(), 2);
        assert_eq!(resp.records()[0].1.file(), Some("t"), "namespace stripped");

        let (_mlds, report) = svc.into_parts();
        assert_eq!(report.admissions.len(), 4);
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.sessions[0].uid, "alice");
        assert_eq!(report.sessions[1].requests, 2);
        assert_eq!(report.sessions[1].errors, 1);

        // Serial replay on a fresh system reproduces every outcome.
        let mut fresh = seeded_mlds();
        for entry in &report.admissions {
            let mut ns = crate::NamespacedKernel::new(fresh.kernel_mut(), &entry.db);
            let result = ns.execute(&entry.request);
            assert_eq!(outcome_of(&result), entry.outcome);
        }
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        let mut svc = MldsService::start(seeded_mlds());
        let barrier = Arc::new(Barrier::new(8));
        let mut joins = Vec::new();
        for s in 0..8u64 {
            let session = svc.open(&format!("u{s}"), "db");
            let barrier = barrier.clone();
            joins.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..10u64 {
                    let key = (s * 100 + i) as i64;
                    let mut rec =
                        abdl::Record::from_pairs([("FILE", Value::str("t"))]);
                    rec.set("t".to_owned(), Value::Int(key));
                    session.submit(Request::Insert { record: rec }).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (mut mlds, report) = svc.into_parts();
        assert_eq!(report.admissions.len(), 80);
        let mut ns = crate::NamespacedKernel::new(mlds.kernel_mut(), "db");
        let resp = ns
            .execute(&abdl::parse::parse_request("RETRIEVE (FILE = t) (*)").unwrap())
            .unwrap();
        assert_eq!(resp.records().len(), 80, "every session's inserts landed");
    }

    #[test]
    fn submitting_after_stop_reports_unavailable() {
        let mut svc = MldsService::start(seeded_mlds());
        let s = svc.open("u", "db");
        let _ = svc.into_parts();
        assert!(matches!(
            s.execute_abdl("RETRIEVE (FILE = t) (*)"),
            Err(Error::Unavailable(_))
        ));
    }
}
