//! The concurrent front door: a multi-session service over one MLDS.
//!
//! The 1987 system is described as serving "numerous databases" to
//! many users at once, but [`Mlds`](crate::Mlds) itself is a
//! single-threaded value: every `execute_*` call borrows it mutably.
//! [`MldsService`] lifts that restriction without touching the kernel
//! borrow discipline. It moves the whole `Mlds` into a dispatcher
//! thread and hands out [`ServiceSession`] handles that are `Send` —
//! each session submits ABDL requests over a channel and blocks on a
//! private reply channel.
//!
//! The concurrency win comes from *admission batching*: when several
//! sessions have requests queued at once, the dispatcher drains them
//! all, maps each through its session's database [`Namespace`], and
//! hands the whole group to [`Kernel::execute_batch`] in one call. On
//! the multi-backend controller that means the batch scheduler keeps
//! non-conflicting requests in flight on the backend bus together and
//! the WAL group-commits every append under a single sync — the two
//! costs that dominate a one-at-a-time front door.
//!
//! Every executed request is also recorded in the **admission log**
//! (session id, database, session-level request, normalized outcome),
//! in the exact order the dispatcher admitted it. Replaying that log
//! serially on an identically-configured fresh system must reproduce
//! every outcome and the same final state — the equivalence bar that
//! `tests/concurrent_equivalence.rs` pins.
//!
//! At high session counts the single dispatcher thread itself becomes
//! the bottleneck: it namespace-maps every request of every session
//! between kernel calls. [`start_sharded`](MldsService::start_sharded)
//! splits that admission work across N workers, each owning a disjoint
//! slice of the database namespace (sessions are routed to the worker
//! that owns their database at open time). Workers drain and
//! namespace-map their own queues in parallel and forward mapped runs
//! to a single executor thread that owns the `Mlds`; the executor
//! concatenates runs from different shards into one
//! [`Kernel::execute_batch`] call, so the cross-session group commit
//! and flight scheduling now span shards too. Per-worker channel
//! ordering keeps every session's open-before-submit and
//! submission-order guarantees; the admission log records the
//! executor's concatenation order, which replays serially like any
//! other admission order.

use crate::namespace::Namespace;
use crate::system::Mlds;
use abdl::{Error, Kernel, Request, Response};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// Most jobs the dispatcher will drain into one admission batch.
/// Bounds per-batch latency; the controller's scheduler decides how
/// much of the batch actually flies concurrently.
const MAX_BATCH: usize = 64;

/// One admitted request, recorded in dispatcher admission order.
#[derive(Debug, Clone)]
pub struct AdmissionEntry {
    /// Session that submitted the request.
    pub session: u64,
    /// Database the session was connected to.
    pub db: String,
    /// The session-level (unprefixed) request.
    pub request: Request,
    /// Normalized outcome observed by the live run — compare against
    /// [`outcome_of`] on a serial replay.
    pub outcome: String,
}

/// Per-session activity counters, for the shell's `.sessions` view.
#[derive(Debug, Clone)]
pub struct SessionStat {
    /// Session id (service-unique, in open order).
    pub id: u64,
    /// User id given at open.
    pub uid: String,
    /// Database the session is scoped to.
    pub db: String,
    /// Requests executed on behalf of this session.
    pub requests: u64,
    /// Of those, how many returned an error.
    pub errors: u64,
}

/// Everything the dispatcher hands back when the service stops.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Every executed request, in admission order.
    pub admissions: Vec<AdmissionEntry>,
    /// Per-session counters, in open order.
    pub sessions: Vec<SessionStat>,
}

/// Normalize a request outcome for order-equivalence comparison:
/// enough to distinguish any semantically different result, nothing
/// that varies between a concurrent and a serial run of the same
/// admission order.
pub fn outcome_of(result: &abdl::Result<Response>) -> String {
    match result {
        Ok(r) => {
            let mut keys: Vec<u64> = r.records().iter().map(|(k, _)| k.0).collect();
            keys.sort_unstable();
            format!(
                "ok affected={} records={:?} groups={}",
                r.affected,
                keys,
                r.groups.as_ref().map_or(0, Vec::len),
            )
        }
        Err(e) => format!("err {e}"),
    }
}

enum Job {
    Open { id: u64, uid: String, db: String, ack: Sender<()> },
    Exec { id: u64, request: Request, reply: Sender<abdl::Result<Response>> },
    Stop,
}

/// One Exec job a shard worker has already namespace-mapped, ready for
/// the executor to run.
struct MappedJob {
    id: u64,
    /// The session-level (unprefixed) request, for the admission log.
    request: Request,
    /// The namespace-mapped request handed to the kernel.
    mapped: Request,
    ns: Namespace,
    reply: Sender<abdl::Result<Response>>,
}

/// Worker → executor traffic. A single mpsc receiver preserves each
/// worker's send order, which is all the protocol needs: a session's
/// `Open` always precedes its runs because both pass through the same
/// worker.
enum ShardMsg {
    Open { id: u64, uid: String, db: String, ack: Sender<()> },
    Run(Vec<MappedJob>),
    WorkerDone,
}

/// The shard a database's sessions are admitted through: a fixed FNV-1a
/// hash, so the mapping is stable across runs and every session of one
/// database lands on the same worker (disjoint namespace slices).
fn shard_of(db: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in db.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A `Send` handle onto one open session of a running [`MldsService`].
///
/// Cloning is cheap; clones share the session (same id, same database,
/// same counters).
#[derive(Clone)]
pub struct ServiceSession {
    id: u64,
    db: String,
    tx: Sender<Job>,
}

impl ServiceSession {
    /// The service-unique session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The database this session is scoped to.
    pub fn database(&self) -> &str {
        &self.db
    }

    /// Submit one ABDL request and block for its response. Safe to
    /// call from any thread; concurrent submitters from different
    /// sessions are admitted as one batch.
    pub fn submit(&self, request: Request) -> abdl::Result<Response> {
        let (rtx, rrx) = channel();
        self.tx
            .send(Job::Exec { id: self.id, request, reply: rtx })
            .map_err(|_| Error::Unavailable("service stopped".into()))?;
        rrx.recv().map_err(|_| Error::Unavailable("service stopped".into()))?
    }

    /// Parse `text` as one ABDL request and submit it.
    pub fn execute_abdl(&self, text: &str) -> abdl::Result<Response> {
        self.submit(abdl::parse::parse_request(text)?)
    }
}

/// A running multi-session service wrapping one [`Mlds`].
///
/// Construct the `Mlds` first (create databases, load schemas), then
/// [`start`](MldsService::start) it. The service owns the system until
/// [`into_parts`](MldsService::into_parts) hands it back along with
/// the admission log.
pub struct MldsService<K: Kernel + Send + 'static> {
    /// One admission queue per shard worker (one entry when classic).
    txs: Vec<Sender<Job>>,
    /// Shard worker threads (empty when classic).
    workers: Vec<JoinHandle<()>>,
    handle: JoinHandle<(Mlds<K>, ServiceReport)>,
    next_id: u64,
}

impl<K: Kernel + Send + 'static> MldsService<K> {
    /// Move `mlds` into a dispatcher thread and start serving.
    pub fn start(mlds: Mlds<K>) -> Self {
        let (tx, rx) = channel();
        let handle = std::thread::spawn(move || dispatch(mlds, rx));
        MldsService { txs: vec![tx], workers: Vec::new(), handle, next_id: 0 }
    }

    /// Like [`start`](MldsService::start), but admission is sharded:
    /// `shards` workers each own a disjoint slice of the database
    /// namespace and drain + namespace-map their sessions' requests in
    /// parallel, feeding one executor thread that owns the `Mlds` and
    /// batches mapped runs across shards into single
    /// `execute_batch` calls (cross-shard group commit).
    pub fn start_sharded(mlds: Mlds<K>, shards: usize) -> Self {
        let shards = shards.max(1);
        let (exec_tx, exec_rx) = channel();
        let handle = std::thread::spawn(move || sharded_executor(mlds, exec_rx, shards));
        let mut txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel();
            let exec_tx = exec_tx.clone();
            workers.push(std::thread::spawn(move || shard_worker(rx, exec_tx)));
            txs.push(tx);
        }
        MldsService { txs, workers, handle, next_id: 0 }
    }

    /// The number of admission shards (1 for a classic service).
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Open a session for `uid` against database `db`. The handle is
    /// `Send` and may be moved to (or cloned across) worker threads.
    pub fn open(&mut self, uid: &str, db: &str) -> ServiceSession {
        self.next_id += 1;
        let id = self.next_id;
        let tx = self.txs[shard_of(db, self.txs.len())].clone();
        let (ack_tx, ack_rx) = channel();
        // The dispatcher owns the registry; wait for the ack so a
        // session can never race ahead of its own registration.
        let _ = tx.send(Job::Open {
            id,
            uid: uid.to_owned(),
            db: db.to_owned(),
            ack: ack_tx,
        });
        let _ = ack_rx.recv();
        ServiceSession { id, db: db.to_owned(), tx }
    }

    /// Stop the dispatcher and reclaim the `Mlds` plus the admission
    /// log and per-session counters. Outstanding sessions' submits
    /// fail with [`Error::Unavailable`] afterwards.
    pub fn into_parts(self) -> (Mlds<K>, ServiceReport) {
        for tx in &self.txs {
            let _ = tx.send(Job::Stop);
        }
        for w in self.workers {
            let _ = w.join();
        }
        self.handle.join().expect("service dispatcher panicked")
    }
}

fn dispatch<K: Kernel>(mut mlds: Mlds<K>, rx: Receiver<Job>) -> (Mlds<K>, ServiceReport) {
    let mut report = ServiceReport::default();
    // id → (namespace, index into report.sessions)
    let mut registry: HashMap<u64, (Namespace, usize)> = HashMap::new();
    'serve: loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        // Drain whatever else is already queued: these are the
        // requests that were admitted "at the same time" and may
        // execute as one batch.
        let mut jobs = vec![first];
        while jobs.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        while !jobs.is_empty() {
            if matches!(jobs[0], Job::Exec { .. }) {
                // Gather the run of consecutive Exec jobs.
                let mut j = 1;
                while j < jobs.len() && matches!(jobs[j], Job::Exec { .. }) {
                    j += 1;
                }
                let run: Vec<Job> = jobs.drain(..j).collect();
                execute_run(&mut mlds, &registry, &mut report, run);
                continue;
            }
            match jobs.remove(0) {
                Job::Open { id, uid, db, ack } => {
                    registry.insert(id, (Namespace::new(&db), report.sessions.len()));
                    report.sessions.push(SessionStat { id, uid, db, requests: 0, errors: 0 });
                    let _ = ack.send(());
                }
                Job::Stop => break 'serve,
                Job::Exec { .. } => unreachable!(),
            }
        }
    }
    (mlds, report)
}

fn execute_run<K: Kernel>(
    mlds: &mut Mlds<K>,
    registry: &HashMap<u64, (Namespace, usize)>,
    report: &mut ServiceReport,
    run: Vec<Job>,
) {
    let mut mapped = Vec::with_capacity(run.len());
    let mut meta = Vec::with_capacity(run.len());
    for job in run {
        let Job::Exec { id, request, reply } = job else { unreachable!() };
        let Some((ns, slot)) = registry.get(&id) else {
            let _ = reply.send(Err(Error::Unavailable(format!("unknown session {id}"))));
            continue;
        };
        mapped.push(ns.map_request_in(&request));
        meta.push((id, request, reply, ns.clone(), *slot));
    }
    if mapped.is_empty() {
        return;
    }
    let results = mlds.kernel_mut().execute_batch(&mapped);
    for ((id, request, reply, ns, slot), result) in meta.into_iter().zip(results) {
        let result = result.map(|r| ns.map_response_out(r));
        let stat = &mut report.sessions[slot];
        stat.requests += 1;
        if result.is_err() {
            stat.errors += 1;
        }
        report.admissions.push(AdmissionEntry {
            session: id,
            db: stat.db.clone(),
            request,
            outcome: outcome_of(&result),
        });
        let _ = reply.send(result);
    }
}

/// One admission shard: drains its own queue, namespace-maps runs of
/// Exec jobs (the parallelizable part of admission), and forwards them
/// to the executor. Owns the namespaces of every session routed here.
fn shard_worker(rx: Receiver<Job>, exec_tx: Sender<ShardMsg>) {
    let mut registry: HashMap<u64, Namespace> = HashMap::new();
    'serve: loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        while jobs.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        while !jobs.is_empty() {
            if matches!(jobs[0], Job::Exec { .. }) {
                let mut j = 1;
                while j < jobs.len() && matches!(jobs[j], Job::Exec { .. }) {
                    j += 1;
                }
                let mut mapped = Vec::with_capacity(j);
                for job in jobs.drain(..j) {
                    let Job::Exec { id, request, reply } = job else { unreachable!() };
                    let Some(ns) = registry.get(&id) else {
                        let _ = reply
                            .send(Err(Error::Unavailable(format!("unknown session {id}"))));
                        continue;
                    };
                    mapped.push(MappedJob {
                        id,
                        mapped: ns.map_request_in(&request),
                        request,
                        ns: ns.clone(),
                        reply,
                    });
                }
                if !mapped.is_empty() && exec_tx.send(ShardMsg::Run(mapped)).is_err() {
                    break 'serve;
                }
                continue;
            }
            match jobs.remove(0) {
                Job::Open { id, uid, db, ack } => {
                    registry.insert(id, Namespace::new(&db));
                    // The executor acks after registering the session
                    // stat, so `open` still can't race registration.
                    if exec_tx.send(ShardMsg::Open { id, uid, db, ack }).is_err() {
                        break 'serve;
                    }
                }
                Job::Stop => break 'serve,
                Job::Exec { .. } => unreachable!(),
            }
        }
    }
    let _ = exec_tx.send(ShardMsg::WorkerDone);
}

/// The sharded service's kernel thread: owns the `Mlds`, concatenates
/// mapped runs from all shard workers into cross-shard admission
/// batches, and keeps the admission log. Exits once every worker has
/// reported done.
fn sharded_executor<K: Kernel>(
    mut mlds: Mlds<K>,
    rx: Receiver<ShardMsg>,
    workers: usize,
) -> (Mlds<K>, ServiceReport) {
    let mut report = ServiceReport::default();
    // id → index into report.sessions
    let mut slots: HashMap<u64, usize> = HashMap::new();
    let mut live = workers;
    let open = |report: &mut ServiceReport,
                    slots: &mut HashMap<u64, usize>,
                    id: u64,
                    uid: String,
                    db: String,
                    ack: Sender<()>| {
        slots.insert(id, report.sessions.len());
        report.sessions.push(SessionStat { id, uid, db, requests: 0, errors: 0 });
        let _ = ack.send(());
    };
    while live > 0 {
        let msg = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break,
        };
        let mut batch = match msg {
            ShardMsg::Open { id, uid, db, ack } => {
                open(&mut report, &mut slots, id, uid, db, ack);
                continue;
            }
            ShardMsg::WorkerDone => {
                live -= 1;
                continue;
            }
            ShardMsg::Run(run) => run,
        };
        // Concatenate whatever other shards have queued meanwhile:
        // their namespace slices are disjoint, so the combined batch
        // flies well and group-commits under one sync. Opens drained
        // along the way are registered immediately (order with this
        // batch is irrelevant: a session's own Open always precedes
        // its runs on the same worker channel).
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(ShardMsg::Run(run)) => batch.extend(run),
                Ok(ShardMsg::Open { id, uid, db, ack }) => {
                    open(&mut report, &mut slots, id, uid, db, ack);
                }
                Ok(ShardMsg::WorkerDone) => live -= 1,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        let mapped: Vec<Request> = batch.iter().map(|m| m.mapped.clone()).collect();
        let results = mlds.kernel_mut().execute_batch(&mapped);
        for (job, result) in batch.into_iter().zip(results) {
            let result = result.map(|r| job.ns.map_response_out(r));
            let slot = slots[&job.id];
            let stat = &mut report.sessions[slot];
            stat.requests += 1;
            if result.is_err() {
                stat.errors += 1;
            }
            report.admissions.push(AdmissionEntry {
                session: job.id,
                db: stat.db.clone(),
                request: job.request,
                outcome: outcome_of(&result),
            });
            let _ = job.reply.send(result);
        }
    }
    (mlds, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::Value;
    use std::sync::{Arc, Barrier};

    fn seeded_mlds() -> Mlds {
        let mut mlds = Mlds::single_backend();
        let k = mlds.kernel_mut();
        let mut ns = crate::NamespacedKernel::new(k, "db");
        ns.create_file("t");
        ns.add_unique_constraint("t", vec!["t".into()]);
        mlds
    }

    #[test]
    fn sessions_execute_and_the_admission_log_replays() {
        let mut svc = MldsService::start(seeded_mlds());
        let a = svc.open("alice", "db");
        let b = svc.open("bob", "db");
        a.execute_abdl("INSERT (<FILE, t>, <t, 1>)").unwrap();
        b.execute_abdl("INSERT (<FILE, t>, <t, 2>)").unwrap();
        let dup = b.execute_abdl("INSERT (<FILE, t>, <t, 1>)");
        assert!(matches!(dup, Err(Error::DuplicateKey { .. })));
        let resp = a.execute_abdl("RETRIEVE (FILE = t) (*)").unwrap();
        assert_eq!(resp.records().len(), 2);
        assert_eq!(resp.records()[0].1.file(), Some("t"), "namespace stripped");

        let (_mlds, report) = svc.into_parts();
        assert_eq!(report.admissions.len(), 4);
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.sessions[0].uid, "alice");
        assert_eq!(report.sessions[1].requests, 2);
        assert_eq!(report.sessions[1].errors, 1);

        // Serial replay on a fresh system reproduces every outcome.
        let mut fresh = seeded_mlds();
        for entry in &report.admissions {
            let mut ns = crate::NamespacedKernel::new(fresh.kernel_mut(), &entry.db);
            let result = ns.execute(&entry.request);
            assert_eq!(outcome_of(&result), entry.outcome);
        }
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        let mut svc = MldsService::start(seeded_mlds());
        let barrier = Arc::new(Barrier::new(8));
        let mut joins = Vec::new();
        for s in 0..8u64 {
            let session = svc.open(&format!("u{s}"), "db");
            let barrier = barrier.clone();
            joins.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..10u64 {
                    let key = (s * 100 + i) as i64;
                    let mut rec =
                        abdl::Record::from_pairs([("FILE", Value::str("t"))]);
                    rec.set("t".to_owned(), Value::Int(key));
                    session.submit(Request::Insert { record: rec }).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (mut mlds, report) = svc.into_parts();
        assert_eq!(report.admissions.len(), 80);
        let mut ns = crate::NamespacedKernel::new(mlds.kernel_mut(), "db");
        let resp = ns
            .execute(&abdl::parse::parse_request("RETRIEVE (FILE = t) (*)").unwrap())
            .unwrap();
        assert_eq!(resp.records().len(), 80, "every session's inserts landed");
    }

    fn seeded_multi_db() -> Mlds {
        let mut mlds = Mlds::single_backend();
        for db in ["dbx", "dby", "dbz"] {
            let k = mlds.kernel_mut();
            let mut ns = crate::NamespacedKernel::new(k, db);
            ns.create_file("t");
            ns.add_unique_constraint("t", vec!["t".into()]);
        }
        mlds
    }

    #[test]
    fn sharded_sessions_execute_and_the_admission_log_replays() {
        let mut svc = MldsService::start_sharded(seeded_multi_db(), 3);
        assert_eq!(svc.shards(), 3);
        let barrier = Arc::new(Barrier::new(9));
        let mut joins = Vec::new();
        for s in 0..9u64 {
            let db = ["dbx", "dby", "dbz"][(s % 3) as usize];
            let session = svc.open(&format!("u{s}"), db);
            let barrier = barrier.clone();
            joins.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..10u64 {
                    let key = (s * 100 + i) as i64;
                    let mut rec = abdl::Record::from_pairs([("FILE", Value::str("t"))]);
                    rec.set("t".to_owned(), Value::Int(key));
                    session.submit(Request::Insert { record: rec }).unwrap();
                    if i % 3 == 0 {
                        let resp = session
                            .execute_abdl(&format!("RETRIEVE ((t = {key})) (*)"))
                            .unwrap();
                        assert_eq!(resp.records().len(), 1);
                        assert_eq!(resp.records()[0].1.file(), Some("t"), "namespace stripped");
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (mut mlds, report) = svc.into_parts();
        assert_eq!(report.admissions.len(), 9 * 14);
        assert_eq!(report.sessions.len(), 9);

        // Every database holds exactly its three sessions' inserts.
        for db in ["dbx", "dby", "dbz"] {
            let mut ns = crate::NamespacedKernel::new(mlds.kernel_mut(), db);
            let resp = ns
                .execute(&abdl::parse::parse_request("RETRIEVE (FILE = t) (*)").unwrap())
                .unwrap();
            assert_eq!(resp.records().len(), 30);
        }

        // Serial replay of the admission log on a fresh system
        // reproduces every outcome.
        let mut fresh = seeded_multi_db();
        for entry in &report.admissions {
            let mut ns = crate::NamespacedKernel::new(fresh.kernel_mut(), &entry.db);
            let result = ns.execute(&entry.request);
            assert_eq!(outcome_of(&result), entry.outcome);
        }
    }

    #[test]
    fn sharding_routes_a_database_to_one_worker() {
        // Same db → same shard, regardless of session; shard ids stay
        // in range for any shard count.
        for shards in 1..8 {
            for db in ["dbx", "dby", "dbz", "spawn"] {
                let s = shard_of(db, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(db, shards));
            }
        }
    }

    #[test]
    fn submitting_after_stop_reports_unavailable() {
        let mut svc = MldsService::start(seeded_mlds());
        let s = svc.open("u", "db");
        let _ = svc.into_parts();
        assert!(matches!(
            s.execute_abdl("RETRIEVE (FILE = t) (*)"),
            Err(Error::Unavailable(_))
        ));
    }
}
