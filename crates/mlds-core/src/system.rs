//! LIL + the assembled MLDS.

use crate::error::{Error, Result};
use crate::kfs;
use crate::namespace::{kernel_file, NamespacedKernel};
use crate::session::{CodasylSession, DaplexSession, HierSession, SqlSession, StatementOutput};
use abdl::Kernel;
use codasyl::dml::Statement;
use codasyl::NetworkSchema;
use daplex::FunctionalSchema;
use std::collections::HashMap;
use translator::Translator;

/// The Multi-Lingual Database System.
///
/// Generic over its kernel database system: a single [`abdl::Store`],
/// the threaded [`mbds::Controller`], or the deterministic
/// [`mbds::SimCluster`].
pub struct Mlds<K: Kernel = abdl::Store> {
    kernel: K,
    network_dbs: Vec<NetworkSchema>,
    functional_dbs: Vec<FunctionalSchema>,
    relational_dbs: Vec<relational::RelSchema>,
    hierarchical_dbs: Vec<dli::HierSchema>,
    /// One-step transformation cache: the direct-language-interface
    /// strategy transforms a functional schema once, not per
    /// transaction.
    transformed: HashMap<String, NetworkSchema>,
    /// The reverse cache: functional views of network databases, for
    /// Daplex sessions on network data (the MMDS matrix's other
    /// direction).
    reversed: HashMap<String, FunctionalSchema>,
    /// Relational views of hierarchical databases, for SQL sessions on
    /// hierarchical data (the Zawis edge of the matrix).
    sql_views: HashMap<String, relational::RelSchema>,
}

impl Mlds<abdl::Store> {
    /// An MLDS over a single-site kernel store.
    pub fn single_backend() -> Self {
        Mlds::with_kernel(abdl::Store::new())
    }

    /// Serialize the kernel as restorable ABDL text (schemas are not
    /// part of the dump; recreate them with [`Mlds::create_database`]
    /// before restoring).
    pub fn dump_kernel(&self) -> String {
        abdl::engine::dump(&self.kernel)
    }

    /// Replace the kernel with a previously dumped state.
    pub fn restore_kernel(&mut self, text: &str) -> Result<()> {
        self.kernel = abdl::engine::restore(text)?;
        Ok(())
    }
}

impl Mlds<mbds::Controller> {
    /// An MLDS over the threaded multi-backend kernel.
    pub fn multi_backend(backends: usize) -> Self {
        Mlds::with_kernel(mbds::Controller::new(backends))
    }

    /// An MLDS over a *durable* multi-backend kernel: every directory
    /// mutation is written to a checksummed write-ahead log under
    /// `dir` so the controller can be rebuilt with
    /// [`Mlds::recover_backend`] after a crash. `dir` must not already
    /// hold controller state.
    pub fn durable_backend(backends: usize, dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Ok(Mlds::with_kernel(mbds::Controller::durable(
            backends,
            mbds::DEFAULT_REPLICATION,
            dir,
        )?))
    }

    /// An MLDS whose kernel is recovered from the write-ahead log in
    /// `dir` (written by a previous [`Mlds::durable_backend`]
    /// controller). Database schemas are not part of the kernel log —
    /// recreate them with [`Mlds::create_database`], as after
    /// [`Mlds::restore_kernel`].
    pub fn recover_backend(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Ok(Mlds::with_kernel(mbds::Controller::recover(dir)?))
    }

    /// Replace the kernel in place with one recovered from `dir`,
    /// keeping loaded schemas, transformation caches and open sessions
    /// (currency indicators stay valid — the log preserves every
    /// database key). This is the shell's `.recover` path: simulate a
    /// controller crash, rebuild from the log, and carry on mid-run.
    pub fn recover_kernel(&mut self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        self.kernel = mbds::Controller::recover(dir)?;
        Ok(())
    }

    /// An MLDS over the **out-of-process** multi-backend kernel: the
    /// backend workers run as separate OS processes (`mbds-backend`)
    /// reached over the checksummed TCP wire protocol, with retries,
    /// idempotent request ids and injectable network faults. The same
    /// controller the threaded kernel uses — only the transport
    /// differs.
    pub fn tcp_backend(backends: usize) -> Result<Self> {
        Ok(Mlds::with_kernel(mbds::Controller::over_tcp(
            backends,
            mbds::DEFAULT_REPLICATION.min(backends),
        )?))
    }

    /// Set how long the kernel waits for one backend reply window
    /// before demoting the backend a health step (the shell's
    /// `.timeout` path).
    pub fn set_reply_timeout(&mut self, timeout: std::time::Duration) {
        self.kernel.set_reply_timeout(timeout);
    }

    /// Set how many retransmissions the socket transport attempts
    /// inside one reply window (ignored by the lossless in-process
    /// bus).
    pub fn set_retry_budget(&mut self, budget: u32) {
        self.kernel.set_retry_budget(budget);
    }

    /// A hot standby tailing this system's write-ahead log through its
    /// own reader handle on `dir` (the directory given to
    /// [`Mlds::durable_backend`]). Keep it fresh with
    /// [`mbds::Standby::poll`]; on controller failure hand it to
    /// [`Mlds::promote`]. The shell's `.standby` path.
    pub fn standby_of(&self, dir: impl AsRef<std::path::Path>) -> Result<mbds::Standby> {
        Ok(self.kernel.standby(Box::new(mbds::FileLog::open(dir)?))?)
    }

    /// Fail over to `standby`: epoch-fenced promotion installs a new
    /// controller over the existing backends (no log replay) and the
    /// demoted kernel is dropped. Loaded schemas, caches and open
    /// sessions survive, exactly as with [`Mlds::recover_kernel`] —
    /// but warm. The shell's `.promote` path.
    pub fn promote(&mut self, standby: mbds::Standby) -> Result<()> {
        // Promote *before* replacing the kernel: the fence must rise
        // while the primary still exists, so its drop detaches from
        // the shared backend threads instead of shutting them down.
        self.kernel = standby.promote()?;
        Ok(())
    }
}

impl Mlds<mbds::SimCluster> {
    /// An MLDS over the simulated-time multi-backend kernel.
    pub fn simulated_backend(backends: usize) -> Self {
        Mlds::with_kernel(mbds::SimCluster::new(backends))
    }
}

impl<K: Kernel> Mlds<K> {
    /// An MLDS over an arbitrary kernel.
    pub fn with_kernel(kernel: K) -> Self {
        Mlds {
            kernel,
            network_dbs: Vec::new(),
            functional_dbs: Vec::new(),
            relational_dbs: Vec::new(),
            hierarchical_dbs: Vec::new(),
            transformed: HashMap::new(),
            reversed: HashMap::new(),
            sql_views: HashMap::new(),
        }
    }

    /// Direct access to the kernel (KC's downstream).
    pub fn kernel_mut(&mut self) -> &mut K {
        &mut self.kernel
    }

    /// The kernel's availability view: backend count, unavailable
    /// backends, and whether any record currently has no live replica
    /// (degraded mode). A single-site kernel always reports one healthy
    /// backend.
    pub fn health(&self) -> abdl::engine::KernelHealth {
        self.kernel.health()
    }

    /// Cumulative kernel work counters — requests executed, records
    /// examined, and backend messages sent (always 0 messages on a
    /// single-site kernel). The shell's `.stats` prints these.
    pub fn exec_totals(&self) -> abdl::ExecTotals {
        self.kernel.exec_totals()
    }

    /// Names of all loaded databases (network first, then functional —
    /// LIL's search order).
    pub fn database_names(&self) -> Vec<&str> {
        self.network_dbs
            .iter()
            .map(|s| s.name.as_str())
            .chain(self.functional_dbs.iter().map(|s| s.name.as_str()))
            .chain(self.relational_dbs.iter().map(|s| s.name.as_str()))
            .chain(self.hierarchical_dbs.iter().map(|s| s.name.as_str()))
            .collect()
    }

    fn name_taken(&self, name: &str) -> bool {
        self.network_dbs.iter().any(|s| s.name == name)
            || self.functional_dbs.iter().any(|s| s.name == name)
            || self.relational_dbs.iter().any(|s| s.name == name)
            || self.hierarchical_dbs.iter().any(|s| s.name == name)
    }

    /// Load a new database, auto-detecting the data model of the DDL
    /// ("the user indicates that a new database is to be created …
    /// KMS \[transforms\] the UDM-database definition into an equivalent
    /// KDM database definition"). Returns the database name.
    pub fn create_database(&mut self, ddl: &str) -> Result<String> {
        // The leading keyword discriminates the four DDLs of the
        // thesis's dbid_node union; fall through the parsers in order.
        match codasyl::ddl::parse_schema(ddl) {
            Ok(schema) => self.install_network(schema),
            Err(net_err) => match daplex::ddl::parse_schema(ddl) {
                Ok(schema) => self.install_functional(schema),
                Err(fun_err) => {
                    if let Ok(schema) = relational::ddl::parse_schema(ddl) {
                        return self.install_relational(schema);
                    }
                    if let Ok(schema) = dli::ddl::parse_schema(ddl) {
                        return self.install_hierarchical(schema);
                    }
                    Err(Error::UnrecognizedDdl {
                        network: net_err.to_string(),
                        functional: fun_err.to_string(),
                    })
                }
            },
        }
    }

    /// Load a new relational database from SQL DDL.
    pub fn create_relational_database(&mut self, ddl: &str) -> Result<String> {
        let schema = relational::ddl::parse_schema(ddl)?;
        self.install_relational(schema)
    }

    /// Load a new hierarchical database from a DBD.
    pub fn create_hierarchical_database(&mut self, ddl: &str) -> Result<String> {
        let schema = dli::ddl::parse_schema(ddl)?;
        self.install_hierarchical(schema)
    }

    /// Load a new network database from CODASYL DDL.
    pub fn create_network_database(&mut self, ddl: &str) -> Result<String> {
        let schema = codasyl::ddl::parse_schema(ddl)?;
        self.install_network(schema)
    }

    /// Load a new functional database from Daplex DDL.
    pub fn create_functional_database(&mut self, ddl: &str) -> Result<String> {
        let schema = daplex::ddl::parse_schema(ddl)?;
        self.install_functional(schema)
    }

    fn install_network(&mut self, schema: NetworkSchema) -> Result<String> {
        if self.name_taken(&schema.name) {
            return Err(Error::DatabaseExists(schema.name));
        }
        codasyl::ab_map::install(&schema, &mut NamespacedKernel::new(&mut self.kernel, &schema.name));
        let name = schema.name.clone();
        self.network_dbs.push(schema);
        Ok(name)
    }

    fn install_functional(&mut self, schema: FunctionalSchema) -> Result<String> {
        if self.name_taken(&schema.name) {
            return Err(Error::DatabaseExists(schema.name));
        }
        daplex::ab_map::install(&schema, &mut NamespacedKernel::new(&mut self.kernel, &schema.name));
        let name = schema.name.clone();
        self.functional_dbs.push(schema);
        Ok(name)
    }

    fn install_relational(&mut self, schema: relational::RelSchema) -> Result<String> {
        if self.name_taken(&schema.name) {
            return Err(Error::DatabaseExists(schema.name));
        }
        relational::ab_map::install(&schema, &mut NamespacedKernel::new(&mut self.kernel, &schema.name));
        let name = schema.name.clone();
        self.relational_dbs.push(schema);
        Ok(name)
    }

    fn install_hierarchical(&mut self, schema: dli::HierSchema) -> Result<String> {
        if self.name_taken(&schema.name) {
            return Err(Error::DatabaseExists(schema.name));
        }
        dli::ab_map::install(&schema, &mut NamespacedKernel::new(&mut self.kernel, &schema.name));
        let name = schema.name.clone();
        self.hierarchical_dbs.push(schema);
        Ok(name)
    }

    /// The relational schema of a loaded relational database.
    pub fn relational_schema(&self, db: &str) -> Option<&relational::RelSchema> {
        self.relational_dbs.iter().find(|s| s.name == db)
    }

    /// The hierarchical schema of a loaded hierarchical database.
    pub fn hierarchical_schema(&self, db: &str) -> Option<&dli::HierSchema> {
        self.hierarchical_dbs.iter().find(|s| s.name == db)
    }

    /// Open a SQL session. Relational databases connect directly; a
    /// *hierarchical* database is exposed through a read-only
    /// relational view (the Zawis edge the thesis's conclusion cites:
    /// "accessing a hierarchical database via SQL transactions").
    pub fn connect_sql(&mut self, uid: &str, db: &str) -> Result<SqlSession> {
        if let Some(schema) = self.relational_dbs.iter().find(|s| s.name == db).cloned() {
            return Ok(SqlSession::new(uid, db, relational::SqlTranslator::new(schema)));
        }
        if let Some(hier) = self.hierarchical_dbs.iter().find(|s| s.name == db).cloned() {
            let view = match self.sql_views.get(db) {
                Some(v) => v.clone(),
                None => {
                    let v = transform::relational_view(&hier)
                        .map_err(|e| Error::Transform(e.to_string()))?;
                    self.sql_views.insert(db.to_owned(), v.clone());
                    v
                }
            };
            return Ok(SqlSession::new(uid, db, relational::SqlTranslator::new(view)));
        }
        Err(Error::UnknownDatabase(db.to_owned()))
    }

    /// The cached relational view of a hierarchical database (present
    /// after the first SQL connection).
    pub fn sql_view(&self, db: &str) -> Option<&relational::RelSchema> {
        self.sql_views.get(db)
    }

    /// Open a DL/I session on a hierarchical database.
    pub fn connect_dli(&mut self, uid: &str, db: &str) -> Result<HierSession> {
        let schema = self
            .hierarchical_dbs
            .iter()
            .find(|s| s.name == db)
            .cloned()
            .ok_or_else(|| Error::UnknownDatabase(db.to_owned()))?;
        Ok(HierSession::new(uid, db, dli::DliSession::new(schema)))
    }

    /// Execute a SQL script.
    pub fn execute_sql(
        &mut self,
        session: &mut SqlSession,
        script: &str,
    ) -> Result<Vec<StatementOutput>> {
        let statements = relational::dml::parse_statements(script)?;
        let mut out = Vec::with_capacity(statements.len());
        for stmt in &statements {
            let mut ns = NamespacedKernel::new(&mut self.kernel, &session.database);
            let rs = session.translator.execute(&mut ns, stmt)?;
            out.push(StatementOutput {
                statement: format!("{stmt:?}"),
                verb: sql_verb(stmt).to_owned(),
                abdl: rs.requests.iter().map(ToString::to_string).collect(),
                display: rs.to_string(),
                affected: rs.affected.max(rs.rows.len()),
                degraded: self.kernel.health().degraded,
            });
        }
        Ok(out)
    }

    /// Execute a DL/I call script.
    pub fn execute_dli(
        &mut self,
        session: &mut HierSession,
        script: &str,
    ) -> Result<Vec<StatementOutput>> {
        let calls = dli::calls::parse_calls(script)?;
        let mut out = Vec::with_capacity(calls.len());
        for call in &calls {
            let mut ns = NamespacedKernel::new(&mut self.kernel, &session.database);
            let res = session.session.execute(&mut ns, call)?;
            let display = match &res.found {
                Some((seg, key, rec)) => {
                    let fields = session
                        .session
                        .schema()
                        .segment(seg)
                        .map(|sg| {
                            sg.fields
                                .iter()
                                .map(|f| format!("{} = {}", f.name, rec.get_or_null(&f.name)))
                                .collect::<Vec<_>>()
                                .join(", ")
                        })
                        .unwrap_or_default();
                    format!("{seg} #{key} ( {fields} )")
                }
                None if res.affected > 0 => format!("{} segment(s) affected", res.affected),
                None => String::new(),
            };
            out.push(StatementOutput {
                statement: format!("{call:?}"),
                verb: call.verb().to_owned(),
                abdl: res.requests.iter().map(ToString::to_string).collect(),
                display,
                affected: res.affected,
                degraded: self.kernel.health().degraded,
            });
        }
        Ok(out)
    }

    /// The functional schema of a loaded functional database.
    pub fn functional_schema(&self, db: &str) -> Option<&FunctionalSchema> {
        self.functional_dbs.iter().find(|s| s.name == db)
    }

    /// The network schema of a loaded network database.
    pub fn network_schema(&self, db: &str) -> Option<&NetworkSchema> {
        self.network_dbs.iter().find(|s| s.name == db)
    }

    /// The cached transformed schema of a functional database (present
    /// after the first CODASYL connection).
    pub fn transformed_schema(&self, db: &str) -> Option<&NetworkSchema> {
        self.transformed.get(db)
    }

    /// Open a CODASYL-DML session. LIL "first searches the existing
    /// network schemas; … if the desired database is not found …, the
    /// list of functional schemas is then searched. If the desired
    /// database is found to be an existing functional database, a
    /// mapping process is initiated in order to transform the
    /// functional schema into a network schema."
    pub fn connect_codasyl(&mut self, uid: &str, db: &str) -> Result<CodasylSession> {
        if let Some(schema) = self.network_dbs.iter().find(|s| s.name == db) {
            return Ok(CodasylSession::new(uid, db, Translator::for_network(schema.clone())));
        }
        if let Some(schema) = self.functional_dbs.iter().find(|s| s.name == db).cloned() {
            let net = match self.transformed.get(db) {
                Some(net) => net.clone(),
                None => {
                    let net = transform::transform(&schema)
                        .map_err(|e| Error::Transform(e.to_string()))?;
                    self.transformed.insert(db.to_owned(), net.clone());
                    net
                }
            };
            return Ok(CodasylSession::new(uid, db, Translator::for_functional(net)));
        }
        Err(Error::UnknownDatabase(db.to_owned()))
    }

    /// Open a Daplex session. Functional databases connect directly;
    /// a *network* database is reverse-transformed (once) into a
    /// functional view — the other direction of the MMDS matrix the
    /// thesis's conclusion sketches. (The member-side kernel layout
    /// makes the `AB(network)` store directly Daplex-interpretable.)
    pub fn connect_daplex(&mut self, uid: &str, db: &str) -> Result<DaplexSession> {
        if let Some(schema) = self.functional_dbs.iter().find(|s| s.name == db).cloned() {
            return Ok(DaplexSession::new(uid, db, daplex::ab_map::Loader::new(schema)));
        }
        if let Some(net) = self.network_dbs.iter().find(|s| s.name == db).cloned() {
            let fun = match self.reversed.get(db) {
                Some(fun) => fun.clone(),
                None => {
                    let fun = transform::reverse(&net)
                        .map_err(|e| Error::Transform(e.to_string()))?;
                    self.reversed.insert(db.to_owned(), fun.clone());
                    fun
                }
            };
            return Ok(DaplexSession::new(uid, db, daplex::ab_map::Loader::new(fun)));
        }
        Err(Error::UnknownDatabase(db.to_owned()))
    }

    /// The cached reverse-transformed (functional) schema of a network
    /// database (present after the first Daplex connection).
    pub fn reversed_schema(&self, db: &str) -> Option<&FunctionalSchema> {
        self.reversed.get(db)
    }

    /// Execute a CODASYL-DML script (one statement per line / `;`).
    pub fn execute_codasyl(
        &mut self,
        session: &mut CodasylSession,
        script: &str,
    ) -> Result<Vec<StatementOutput>> {
        let statements = codasyl::dml::parse_statements(script)?;
        statements.iter().map(|s| self.execute_codasyl_statement(session, s)).collect()
    }

    /// Execute one parsed CODASYL-DML statement.
    pub fn execute_codasyl_statement(
        &mut self,
        session: &mut CodasylSession,
        stmt: &Statement,
    ) -> Result<StatementOutput> {
        let mut ns = NamespacedKernel::new(&mut self.kernel, &session.database);
        let out = session.translator.execute(&mut session.run_unit, &mut ns, stmt)?;
        session.record_history(stmt, &out);
        let display = match (&out.found, out.stored_key) {
            (Some((rt, key, rec)), _) => {
                kfs::format_network_record(session.translator.schema(), rt, *key, rec)
            }
            (None, Some(key)) => format!("stored #{key}"),
            (None, None) if out.affected > 0 => format!("{} record(s) affected", out.affected),
            _ => String::new(),
        };
        Ok(StatementOutput {
            statement: stmt.to_string(),
            verb: stmt.verb().to_owned(),
            abdl: out.requests.iter().map(ToString::to_string).collect(),
            display,
            affected: out.affected,
            degraded: self.kernel.health().degraded,
        })
    }

    /// Execute a Daplex DML script.
    pub fn execute_daplex(
        &mut self,
        session: &mut DaplexSession,
        script: &str,
    ) -> Result<Vec<StatementOutput>> {
        let statements = daplex::dml::parse_statements(script)?;
        let mut outputs = Vec::with_capacity(statements.len());
        for stmt in &statements {
            let outcome = {
                let mut ns = NamespacedKernel::new(&mut self.kernel, &session.database);
                let mut interp = daplex::dml::Interpreter::new(&mut session.loader, &mut ns);
                interp.execute(stmt)?
            };
            let display = match &outcome {
                daplex::dml::Outcome::Rows(rows) => {
                    let print: Vec<String> = match stmt {
                        daplex::dml::DaplexStatement::ForEach { print, .. } => print
                            .iter()
                            .map(|path| {
                                // Render `f` for plain functions and
                                // `f(g(x))` for composed paths.
                                if path.len() == 1 {
                                    return path[0].clone();
                                }
                                let mut s = String::new();
                                for p in path {
                                    s.push_str(p);
                                    s.push('(');
                                }
                                s.push('x');
                                s.push_str(&")".repeat(path.len()));
                                s
                            })
                            .collect(),
                        _ => Vec::new(),
                    };
                    rows.iter()
                        .map(|r| kfs::format_daplex_row(&print, &r.values))
                        .collect::<Vec<_>>()
                        .join("\n")
                }
                daplex::dml::Outcome::Affected(keys) => {
                    format!("{} entity(ies) affected", keys.len())
                }
            };
            let affected = match &outcome {
                daplex::dml::Outcome::Affected(keys) => keys.len(),
                daplex::dml::Outcome::Rows(rows) => rows.len(),
            };
            outputs.push(StatementOutput {
                statement: format!("{stmt:?}"),
                verb: daplex_verb(stmt).to_owned(),
                abdl: Vec::new(),
                display,
                affected,
                degraded: self.kernel.health().degraded,
            });
        }
        Ok(outputs)
    }

    /// Drop a database: remove its schema from the registry (and the
    /// transformation cache) and delete its kernel files' records.
    /// Open sessions on it become stale.
    pub fn drop_database(&mut self, db: &str) -> Result<()> {
        let files: Vec<String> = if let Some(s) = self.network_schema(db) {
            s.records.iter().map(|r| r.name.clone()).collect()
        } else if let Some(s) = self.functional_schema(db) {
            let mut f: Vec<String> =
                s.entity_like_names().iter().map(|n| (*n).to_owned()).collect();
            f.extend(s.m2m_pairs().into_iter().map(|p| p.link));
            f
        } else if let Some(s) = self.relational_schema(db) {
            s.tables.iter().map(|t| t.name.clone()).collect()
        } else if let Some(s) = self.hierarchical_schema(db) {
            s.segments.iter().map(|seg| seg.name.clone()).collect()
        } else {
            return Err(Error::UnknownDatabase(db.to_owned()));
        };
        for file in files {
            self.kernel.execute(&abdl::Request::Delete {
                query: abdl::Query::conjunction(vec![abdl::Predicate::eq(
                    abdl::FILE_ATTR,
                    abdl::Value::str(kernel_file(db, &file)),
                )]),
            })?;
        }
        self.network_dbs.retain(|s| s.name != db);
        self.functional_dbs.retain(|s| s.name != db);
        self.relational_dbs.retain(|s| s.name != db);
        self.hierarchical_dbs.retain(|s| s.name != db);
        self.transformed.remove(db);
        self.reversed.remove(db);
        self.sql_views.remove(db);
        Ok(())
    }

    /// Convenience: populate a loaded University functional database
    /// with the thesis's sample data.
    pub fn populate_university(&mut self, db: &str) -> Result<daplex::university::UniversityKeys> {
        let schema = self
            .functional_dbs
            .iter()
            .find(|s| s.name == db)
            .cloned()
            .ok_or_else(|| Error::UnknownDatabase(db.to_owned()))?;
        let mut loader = daplex::ab_map::Loader::new(schema);
        let mut ns = NamespacedKernel::new(&mut self.kernel, db);
        Ok(daplex::university::populate(&mut loader, &mut ns)?)
    }
}

fn sql_verb(stmt: &relational::dml::SqlStatement) -> &'static str {
    use relational::dml::SqlStatement::*;
    match stmt {
        Select { .. } => "SELECT",
        Insert { .. } => "INSERT",
        Update { .. } => "UPDATE",
        Delete { .. } => "DELETE",
    }
}

fn daplex_verb(stmt: &daplex::dml::DaplexStatement) -> &'static str {
    use daplex::dml::DaplexStatement::*;
    match stmt {
        ForEach { .. } => "FOR EACH",
        Create { .. } => "CREATE",
        Assign { .. } => "ASSIGN",
        Destroy { .. } => "DESTROY",
        Include { .. } => "INCLUDE",
        Exclude { .. } => "EXCLUDE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn university_mlds() -> Mlds {
        let mut m = Mlds::single_backend();
        m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
        m.populate_university("university").unwrap();
        m
    }

    #[test]
    fn create_database_detects_the_model() {
        let mut m = Mlds::single_backend();
        let name = m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
        assert_eq!(name, "university");
        assert!(m.functional_schema("university").is_some());
        assert!(m.network_schema("university").is_none());

        let net = "SCHEMA NAME IS airline. RECORD NAME IS flight. 02 num TYPE IS FIXED.";
        let name = m.create_database(net).unwrap();
        assert_eq!(name, "airline");
        assert!(m.network_schema("airline").is_some());
        assert_eq!(m.database_names(), vec!["airline", "university"]);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut m = university_mlds();
        let err = m.create_database(daplex::university::UNIVERSITY_DDL).unwrap_err();
        assert!(matches!(err, Error::DatabaseExists(_)));
    }

    #[test]
    fn garbage_ddl_reports_both_parsers() {
        let mut m = Mlds::single_backend();
        let err = m.create_database("HELLO WORLD").unwrap_err();
        assert!(matches!(err, Error::UnrecognizedDdl { .. }));
    }

    #[test]
    fn codasyl_connection_to_functional_db_transforms_once() {
        let mut m = university_mlds();
        assert!(m.transformed_schema("university").is_none());
        let s1 = m.connect_codasyl("u1", "university").unwrap();
        assert!(s1.is_cross_model());
        assert!(m.transformed_schema("university").is_some());
        // Second connection reuses the cache (same schema value).
        let s2 = m.connect_codasyl("u2", "university").unwrap();
        assert_eq!(s1.schema(), s2.schema());
    }

    #[test]
    fn unknown_database_is_reported() {
        let mut m = Mlds::single_backend();
        assert!(matches!(
            m.connect_codasyl("u", "ghost"),
            Err(Error::UnknownDatabase(_))
        ));
        assert!(matches!(m.connect_daplex("u", "ghost"), Err(Error::UnknownDatabase(_))));
    }

    #[test]
    fn thesis_quickstart_transaction_end_to_end() {
        let mut m = university_mlds();
        let mut session = m.connect_codasyl("coker", "university").unwrap();
        let out = m
            .execute_codasyl(
                &mut session,
                "MOVE 'Advanced Database' TO title IN course\n\
                 FIND ANY course USING title IN course\n\
                 GET course",
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        assert!(out[1].abdl[0].contains("RETRIEVE"));
        assert!(out[2].display.contains("title = 'Advanced Database'"));
        assert!(out[2].display.contains("credits = 4"));
        // KFS hides the kernel bookkeeping keywords.
        assert!(!out[2].display.contains("FILE"));
        assert!(!out[2].display.contains("system_course"));
    }

    #[test]
    fn daplex_and_codasyl_sessions_share_the_database() {
        let mut m = university_mlds();
        // Daplex user creates a student …
        let mut dap = m.connect_daplex("shipman", "university").unwrap();
        m.execute_daplex(
            &mut dap,
            "CREATE student (name := 'Newhart', age := 24, major := 'Physics');",
        )
        .unwrap();
        // … and the CODASYL user immediately sees it.
        let mut net = m.connect_codasyl("coker", "university").unwrap();
        let out = m
            .execute_codasyl(
                &mut net,
                "MOVE 'Physics' TO major IN student\nFIND ANY student USING major IN student",
            )
            .unwrap();
        assert!(out[1].display.contains("major = 'Physics'"));
        // And vice versa: the CODASYL user stores a course; the Daplex
        // user reads it.
        m.execute_codasyl(
            &mut net,
            "MOVE 'Compilers' TO title IN course\n\
             MOVE 'S88' TO semester IN course\n\
             MOVE 3 TO credits IN course\n\
             STORE course",
        )
        .unwrap();
        let rows = m
            .execute_daplex(
                &mut dap,
                "FOR EACH course SUCH THAT title(course) = 'Compilers' PRINT credits(course);",
            )
            .unwrap();
        assert!(rows[0].display.contains("credits = 3"));
    }

    #[test]
    fn native_network_database_works_alongside() {
        let mut m = university_mlds();
        m.create_database(
            "SCHEMA NAME IS airline.
             RECORD NAME IS flight.
               02 num TYPE IS FIXED.
               02 dest TYPE IS CHARACTER 20.
             SET NAME IS system_flight.
               OWNER IS SYSTEM.
               MEMBER IS flight.
               INSERTION IS AUTOMATIC.
               RETENTION IS FIXED.
               SET SELECTION IS BY APPLICATION.",
        )
        .unwrap();
        let mut s = m.connect_codasyl("pilot", "airline").unwrap();
        assert!(!s.is_cross_model());
        m.execute_codasyl(
            &mut s,
            "MOVE 101 TO num IN flight\nMOVE 'Monterey' TO dest IN flight\nSTORE flight",
        )
        .unwrap();
        let out = m
            .execute_codasyl(&mut s, "FIND FIRST flight WITHIN system_flight")
            .unwrap();
        assert!(out[0].display.contains("dest = 'Monterey'"));
    }

    #[test]
    fn runs_on_the_multi_backend_kernel() {
        let mut m = Mlds::multi_backend(4);
        m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
        m.populate_university("university").unwrap();
        let mut s = m.connect_codasyl("u", "university").unwrap();
        let out = m
            .execute_codasyl(
                &mut s,
                "MOVE 'Advanced Database' TO title IN course\n\
                 FIND ANY course USING title IN course\nGET course",
            )
            .unwrap();
        assert!(out[2].display.contains("credits = 4"));
    }

    #[test]
    fn drop_database_clears_registry_and_data() {
        let mut m = university_mlds();
        assert!(m.kernel_mut().file_len(&crate::kernel_file("university", "student")) > 0);
        m.drop_database("university").unwrap();
        assert!(m.database_names().is_empty());
        assert_eq!(m.kernel_mut().file_len(&crate::kernel_file("university", "student")), 0);
        assert_eq!(m.kernel_mut().file_len(&crate::kernel_file("university", "LINK_1")), 0);
        assert!(matches!(
            m.connect_codasyl("u", "university"),
            Err(Error::UnknownDatabase(_))
        ));
        // The name is reusable.
        m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
        assert!(matches!(m.drop_database("ghost"), Err(Error::UnknownDatabase(_))));
    }

    #[test]
    fn history_records_request_fanout() {
        let mut m = university_mlds();
        let mut s = m.connect_codasyl("u", "university").unwrap();
        m.execute_codasyl(
            &mut s,
            "MOVE 'F87' TO semester IN course\nFIND ANY course USING semester IN course",
        )
        .unwrap();
        assert_eq!(s.history, vec![("MOVE".to_owned(), 0), ("FIND ANY".to_owned(), 1)]);
    }
}
