//! Per-database kernel namespacing.
//!
//! MLDS "allows the user to access and interact with numerous
//! databases" over one kernel. Kernel files are a single flat
//! namespace, so two databases may well both declare a `department`;
//! LIL therefore routes every request through a namespacing adapter
//! that prefixes kernel file names with the database name
//! (`university.department`) on the way in and strips the prefix on
//! the way out. The language interfaces never see the prefix.
//!
//! The mapping itself lives in [`Namespace`], a plain value that does
//! not borrow the kernel. That separation matters to the concurrent
//! service layer: the dispatcher maps requests from *several* sessions
//! (each with its own database prefix) before handing the whole group
//! to `Kernel::execute_batch`, which a borrowing adapter could not
//! express. [`NamespacedKernel`] composes a `Namespace` with a kernel
//! borrow for the ordinary one-statement-at-a-time paths.

use abdl::{DbKey, Kernel, Record, Request, Response, Value, FILE_ATTR};

/// The kernel file name of `file` within database `db`.
pub fn kernel_file(db: &str, file: &str) -> String {
    format!("{db}.{file}")
}

/// The request/response mapping for one database — prefixes kernel
/// file names on the way in, strips them on the way out. Owns no
/// kernel; pure data.
#[derive(Debug, Clone)]
pub struct Namespace {
    prefix: String,
}

impl Namespace {
    /// The namespace of database `db`.
    pub fn new(db: &str) -> Self {
        Namespace { prefix: format!("{db}.") }
    }

    fn add_prefix(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    fn map_value_in(&self, v: &mut Value) {
        if let Value::Str(s) = v {
            *s = self.add_prefix(s);
        }
    }

    fn map_query_in(&self, q: &mut abdl::Query) {
        for conj in &mut q.disjuncts {
            for pred in &mut conj.predicates {
                if pred.attr == FILE_ATTR {
                    self.map_value_in(&mut pred.value);
                }
            }
        }
    }

    fn map_record_in(&self, rec: &mut Record) {
        if let Some(file) = rec.file().map(str::to_owned) {
            rec.set(FILE_ATTR, Value::str(self.add_prefix(&file)));
        }
    }

    fn map_record_out(&self, rec: &mut Record) {
        if let Some(file) = rec.file().map(str::to_owned) {
            if let Some(stripped) = file.strip_prefix(&self.prefix) {
                rec.set(FILE_ATTR, Value::str(stripped));
            }
        }
    }

    /// `request` with every file name scoped into this database.
    pub fn map_request_in(&self, req: &Request) -> Request {
        let mut req = req.clone();
        match &mut req {
            Request::Insert { record } => self.map_record_in(record),
            Request::Delete { query } => self.map_query_in(query),
            Request::Update { query, .. } => self.map_query_in(query),
            Request::Retrieve { query, .. } => self.map_query_in(query),
            Request::RetrieveCommon { left, right, .. } => {
                self.map_query_in(left);
                self.map_query_in(right);
            }
        }
        req
    }

    /// `resp` with this database's prefix stripped from returned
    /// records.
    pub fn map_response_out(&self, mut resp: Response) -> Response {
        let records: Vec<(DbKey, Record)> = resp
            .records()
            .iter()
            .map(|(k, r)| {
                let mut r = r.clone();
                self.map_record_out(&mut r);
                (*k, r)
            })
            .collect();
        let mut out = Response::with_records(records, resp.stats);
        out.groups = resp.groups.take();
        out.affected = resp.affected;
        // Namespacing must not hide the kernel's availability view.
        out.degraded = resp.degraded;
        out.unavailable_backends = std::mem::take(&mut resp.unavailable_backends);
        out
    }
}

/// A kernel view scoped to one database.
pub struct NamespacedKernel<'a, K: Kernel> {
    inner: &'a mut K,
    ns: Namespace,
}

impl<'a, K: Kernel> NamespacedKernel<'a, K> {
    /// Scope `inner` to database `db`.
    pub fn new(inner: &'a mut K, db: &str) -> Self {
        NamespacedKernel { inner, ns: Namespace::new(db) }
    }
}

impl<K: Kernel> Kernel for NamespacedKernel<'_, K> {
    fn create_file(&mut self, name: &str) {
        let name = self.ns.add_prefix(name);
        self.inner.create_file(&name);
    }

    fn add_unique_constraint(&mut self, file: &str, attrs: Vec<String>) {
        let file = self.ns.add_prefix(file);
        self.inner.add_unique_constraint(&file, attrs);
    }

    fn reserve_key(&mut self) -> DbKey {
        self.inner.reserve_key()
    }

    fn execute(&mut self, request: &Request) -> abdl::Result<Response> {
        let mapped = self.ns.map_request_in(request);
        let resp = self.inner.execute(&mapped)?;
        Ok(self.ns.map_response_out(resp))
    }

    fn execute_batch(&mut self, requests: &[Request]) -> Vec<abdl::Result<Response>> {
        let mapped: Vec<Request> = requests.iter().map(|r| self.ns.map_request_in(r)).collect();
        self.inner
            .execute_batch(&mapped)
            .into_iter()
            .map(|r| r.map(|resp| self.ns.map_response_out(resp)))
            .collect()
    }

    fn health(&self) -> abdl::engine::KernelHealth {
        self.inner.health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::parse::parse_request;
    use abdl::Store;

    #[test]
    fn two_databases_with_the_same_file_name_stay_apart() {
        let mut store = Store::new();
        for (db, v) in [("a", 1i64), ("b", 2i64)] {
            let mut ns = NamespacedKernel::new(&mut store, db);
            ns.create_file("t");
            ns.execute(&Request::Insert {
                record: Record::from_pairs([("FILE", Value::str("t"))])
                    .with("t", Value::Int(v)),
            })
            .unwrap();
        }
        let mut ns_a = NamespacedKernel::new(&mut store, "a");
        let resp = ns_a.execute(&parse_request("RETRIEVE (FILE = t) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 1);
        assert_eq!(resp.records()[0].1.get("t"), Some(&Value::Int(1)));
        // The record comes back with the *unprefixed* file name.
        assert_eq!(resp.records()[0].1.file(), Some("t"));
        // Raw kernel view shows the prefixed files.
        assert!(store.file_names().any(|f| f == "a.t"));
        assert!(store.file_names().any(|f| f == "b.t"));
    }

    #[test]
    fn constraints_are_scoped() {
        let mut store = Store::new();
        {
            let mut ns = NamespacedKernel::new(&mut store, "a");
            ns.create_file("t");
            ns.add_unique_constraint("t", vec!["x".into()]);
            ns.execute(&parse_request("INSERT (<FILE, t>, <t, 1>, <x, 5>)").unwrap()).unwrap();
            let err =
                ns.execute(&parse_request("INSERT (<FILE, t>, <t, 2>, <x, 5>)").unwrap());
            assert!(err.is_err());
        }
        // Database b has no such constraint.
        let mut ns = NamespacedKernel::new(&mut store, "b");
        ns.create_file("t");
        ns.execute(&parse_request("INSERT (<FILE, t>, <t, 1>, <x, 5>)").unwrap()).unwrap();
        ns.execute(&parse_request("INSERT (<FILE, t>, <t, 2>, <x, 5>)").unwrap()).unwrap();
    }

    #[test]
    fn retrieve_common_maps_both_sides() {
        let mut store = Store::new();
        let mut ns = NamespacedKernel::new(&mut store, "db");
        ns.create_file("l");
        ns.create_file("r");
        ns.execute(&parse_request("INSERT (<FILE, l>, <l, 1>, <j, 7>, <a, 'x'>)").unwrap())
            .unwrap();
        ns.execute(&parse_request("INSERT (<FILE, r>, <r, 1>, <j, 7>, <b, 'y'>)").unwrap())
            .unwrap();
        let resp = ns
            .execute(
                &parse_request(
                    "RETRIEVE-COMMON ((FILE = l)) (j) COMMON ((FILE = r)) (j) (a, b)",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.records().len(), 1);
    }

    #[test]
    fn batch_maps_every_request_and_response() {
        let mut store = Store::new();
        let mut ns = NamespacedKernel::new(&mut store, "db");
        ns.create_file("t");
        let reqs = vec![
            parse_request("INSERT (<FILE, t>, <t, 1>)").unwrap(),
            parse_request("INSERT (<FILE, t>, <t, 2>)").unwrap(),
            parse_request("RETRIEVE (FILE = t) (*)").unwrap(),
        ];
        let results = ns.execute_batch(&reqs);
        assert_eq!(results.len(), 3);
        let recs = results[2].as_ref().unwrap().records().to_vec();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|(_, r)| r.file() == Some("t")), "prefix stripped on the way out");
        assert!(store.file_names().any(|f| f == "db.t"));
    }
}
