#![warn(missing_docs)]

//! # MLDS — the Multi-Lingual Database System
//!
//! "The language interface layer (LIL) supports user interaction with
//! the system via a user-selected data model (UDM) with transactions
//! written in a corresponding user data language (UDL). The user's
//! transaction is routed to the kernel mapping subsystem (KMS) by LIL
//! … KMS sends the KDL transaction to KCS, which in turn forwards the
//! KDL transaction to KDS for execution. When KDS has finished …, the
//! results … are routed to the kernel formatting subsystem (KFS). KFS
//! reformats the results into UDM format and displays them, via LIL, to
//! the user."
//!
//! This crate assembles the pipeline:
//!
//! * **LIL** — [`Mlds`]: database creation (network or functional DDL),
//!   the schema registry ("LIL … first searches the existing network
//!   schemas … If the desired database is not found …, the list of
//!   functional schemas is then searched"), session management, and —
//!   the thesis's contribution — the one-step schema transformation
//!   triggered when a CODASYL-DML user opens a *functional* database;
//! * **KMS** — `mlds-translator` (CODASYL-DML→ABDL) and the Daplex DML
//!   interpreter of `mlds-daplex`;
//! * **KC**  — request forwarding to the kernel: a single
//!   [`abdl::Store`] or the multi-backend [`mbds::Controller`] /
//!   [`mbds::SimCluster`], all behind [`abdl::Kernel`];
//! * **KFS** — [`kfs`]: result formatting back into the user's model.
//!
//! ## Quickstart
//!
//! ```
//! use mlds::Mlds;
//!
//! let mut mlds = Mlds::single_backend();
//! mlds.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
//! mlds.populate_university("university").unwrap();
//!
//! // A CODASYL-DML user opens the *functional* database: LIL finds it
//! // among the functional schemas and transforms it on the fly.
//! let mut session = mlds.connect_codasyl("user1", "university").unwrap();
//! let out = mlds
//!     .execute_codasyl(&mut session, "
//!         MOVE 'Advanced Database' TO title IN course
//!         FIND ANY course USING title IN course
//!         GET course
//!     ")
//!     .unwrap();
//! assert!(out.last().unwrap().display.contains("Advanced Database"));
//! ```

pub mod error;
pub mod kfs;
pub mod namespace;
pub mod service;
pub mod session;
pub mod system;

pub use error::{Error, Result};
pub use namespace::{kernel_file, Namespace, NamespacedKernel};
pub use service::{AdmissionEntry, MldsService, ServiceReport, ServiceSession, SessionStat};
pub use session::{CodasylSession, DaplexSession, HierSession, SqlSession, StatementOutput};
pub use system::Mlds;

// Re-export the layer crates so downstream users need only `mlds`.
pub use abdl;
pub use codasyl;
pub use daplex;
pub use dli;
pub use mbds;
pub use relational;
pub use transform;
pub use translator;
